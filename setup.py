"""Setup shim.

The execution environment has an older setuptools without the ``wheel``
package, so PEP 517 editable installs fail.  This file lets
``pip install -e . --no-build-isolation --no-use-pep517`` (legacy
``setup.py develop``) work offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Weakly-supervised Temporal Path Representation Learning with "
        "Contrastive Curriculum Learning (WSCCL) - ICDE 2022 reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
)
