"""Shared fixtures for the benchmark suite.

Every benchmark reproduces one table or figure from the paper's evaluation
section (§VII) at a reduced scale and prints the regenerated rows, so running
``pytest benchmarks/ --benchmark-only`` both times the harness and emits the
tables that EXPERIMENTS.md records.

pytest-benchmark is configured for a single round per benchmark: each
"iteration" is a full experiment (dataset build + model training +
evaluation), so repeating it would multiply minutes of work for no extra
statistical value.
"""

from __future__ import annotations

import pytest

from repro.evaluation import HarnessConfig


def pytest_collection_modifyitems(config, items):
    """Keep benchmarks in file order (tables are printed in paper order)."""
    items.sort(key=lambda item: str(item.fspath))


@pytest.fixture(scope="session")
def bench_config():
    """The scaled-down harness configuration shared by all table benches."""
    return HarnessConfig.benchmark()


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
