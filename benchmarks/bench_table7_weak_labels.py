"""Table VII — effect of different weak labels (POP vs TCI).

Trains WSCCL once with peak/off-peak weak labels and once with traffic
congestion index (four-level) weak labels on the Harbin-style dataset.  The
paper finds both work, with TCI marginally ahead; the bench asserts both
label types produce valid, comparable results.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table7_weak_labels


def test_table7_weak_label_types(bench_config, run_once):
    results = run_once(run_table7_weak_labels, bench_config, cities=("harbin",))
    print()
    print(format_nested_results(results, title="Table VII: POP vs TCI weak labels (scaled)"))

    rows = results["harbin"]
    assert set(rows) == {"WSCCL-TCI", "WSCCL-POP"}
    for variant in rows.values():
        for task in ("travel_time", "ranking"):
            for value in variant[task].values():
                assert np.isfinite(value)

    # Both weak label types must give usable models whose travel-time errors
    # are within a factor of each other (the paper reports near-identical
    # performance for POP and TCI).
    pop_mae = rows["WSCCL-POP"]["travel_time"]["MAE"]
    tci_mae = rows["WSCCL-TCI"]["travel_time"]["MAE"]
    assert 0.4 <= pop_mae / tci_mae <= 2.5
