"""Pretraining data-pipeline throughput: stage x impl.

Times the three stages that feed node2vec and the trip corpus — biased walk
generation, skip-gram corpus extraction (pairs + noise distribution), and
candidate trip pricing — and emits a run-table JSON in the experiment-runner
style.  Rows marked ``impl = "reference"`` run the original per-step Python
loops; ``impl = "vectorized"`` is the CSR lockstep walker, the
strided-window corpus and the batched continuous pricing; ``impl = "grid"``
(pricing only) gathers speeds from the per-edge x time-slot matrix.  Each
non-reference row's ``speedup`` is wall time against the reference row of
the same stage.

Run-table schema (``--out`` / stdout)::

    {
      "schema": "pretraining-pipeline-run-table/v1",
      "workload": {"temporal_nodes", "walks_per_node", "walk_length",
                   "window", "pricing_paths", "city"},
      "rows": [{"stage", "impl", "seconds", "items", "items_per_s",
                "peak_rss_mb", "rss_end_mb", "speedup"}]
    }

``--check`` additionally gates the PR's acceptance criteria on the 2016-node
temporal graph: vectorized walk generation >= 5x and corpus extraction >= 5x
the reference loops, SGNS embeddings bit-identical between corpus impls,
batched pricing exactly equal to the per-edge loop, and grid pricing within
2% of it.

Usage::

    PYTHONPATH=src python benchmarks/bench_pretraining_pipeline.py          # full grid
    PYTHONPATH=src python benchmarks/bench_pretraining_pipeline.py --smoke  # CI smoke
    PYTHONPATH=src python benchmarks/bench_pretraining_pipeline.py --check  # assert gates
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.datasets import DatasetScale, build_city_dataset
from repro.graph import RandomWalker, SkipGramTrainer
from repro.temporal import build_temporal_graph


def peak_rss_mb():
    """Peak resident set size of this process in MiB (monotonic)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak_kb /= 1024.0
    return peak_kb / 1024.0


def current_rss_mb():
    """Current resident set size in MiB (falls back to the peak off Linux)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return peak_rss_mb()


def make_row(stage, impl, seconds, items):
    return {
        "stage": stage,
        "impl": impl,
        "seconds": seconds,
        "items": items,
        "items_per_s": items / seconds if seconds > 0 else float("inf"),
        "peak_rss_mb": peak_rss_mb(),
        "rss_end_mb": current_rss_mb(),
    }


def bench_walks(graph, walks_per_node, walk_length, seed=0):
    """Walk generation, both impls; returns (rows, vectorized corpus)."""
    rows = []
    corpus = None
    for impl in ("reference", "vectorized"):
        walker = RandomWalker(graph.neighbors, graph.num_nodes, p=2.0, q=0.5,
                              seed=seed, impl=impl)
        started = time.perf_counter()
        walks = walker.generate_walks(walks_per_node, walk_length)
        seconds = time.perf_counter() - started
        rows.append(make_row("walks", impl, seconds, len(walks)))
        if impl == "vectorized":
            corpus = walks
    return rows, corpus


def bench_corpus(corpus, num_nodes, window, seed=0):
    """Pair extraction + noise distribution over one fixed walk corpus."""
    rows = []
    for impl in ("reference", "vectorized"):
        trainer = SkipGramTrainer(num_nodes=num_nodes, dim=8, window=window,
                                  seed=seed, impl=impl)
        started = time.perf_counter()
        if impl == "reference":
            pairs = trainer._reference_pairs(corpus)
            counts = trainer._reference_noise_counts(corpus)
        else:
            pairs = trainer._vectorized_pairs(corpus)
            counts = trainer._vectorized_noise_counts(corpus)
        seconds = time.perf_counter() - started
        del counts
        rows.append(make_row("corpus", impl, seconds, int(pairs.shape[0])))
    return rows


def build_pricing_workload(city_name, scale, seed=0):
    """A city plus a bank of real candidate paths and one departure time."""
    city = build_city_dataset(city_name, scale=scale, seed=seed)
    paths = []
    for trip in city.trips:
        paths.append(list(trip.path))
        paths.extend(list(alt) for alt in trip.alternatives)
    departure_time = city.trips[0].departure_time
    return city, paths, departure_time


def bench_pricing(city, paths, departure_time):
    rows = []
    model = city.speed_model
    model.slot_speed_matrix()  # build the grid outside the timed region

    started = time.perf_counter()
    looped = np.array([model.path_travel_time(path, departure_time)
                       for path in paths])
    rows.append(make_row("pricing", "reference",
                         time.perf_counter() - started, len(paths)))

    started = time.perf_counter()
    batched = model.path_travel_times(paths, departure_time)
    rows.append(make_row("pricing", "vectorized",
                         time.perf_counter() - started, len(paths)))

    started = time.perf_counter()
    grid = model.path_travel_times(paths, departure_time, grid=True)
    rows.append(make_row("pricing", "grid",
                         time.perf_counter() - started, len(paths)))
    return rows, looped, batched, grid


def attach_speedups(rows):
    baselines = {row["stage"]: row["seconds"] for row in rows
                 if row["impl"] == "reference"}
    for row in rows:
        if row["impl"] == "reference":
            row["speedup"] = None
        else:
            row["speedup"] = baselines[row["stage"]] / row["seconds"]
    return rows


def check_sgns_equivalence(corpus, num_nodes, window, seed=0):
    """Reference vs vectorized corpus must train bit-identical embeddings."""
    sample = corpus[:200]

    def train(impl):
        trainer = SkipGramTrainer(num_nodes=num_nodes, dim=8, window=window,
                                  negatives=3, seed=seed, impl=impl)
        return trainer.train(sample, epochs=1)

    reference = train("reference")
    vectorized = train("vectorized")
    if not np.array_equal(reference, vectorized):
        return ["SGNS embeddings differ between corpus impls"]
    print(f"  SGNS embeddings bit-identical over {len(sample)} walks")
    return []


def format_table(rows):
    header = (f"{'stage':>10} {'impl':>11} {'seconds':>9} {'items':>9} "
              f"{'items/s':>11} {'rss MB':>8} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = f"{row['speedup']:.2f}x" if row.get("speedup") else "(base)"
        lines.append(
            f"{row['stage']:>10} {row['impl']:>11} {row['seconds']:>9.3f} "
            f"{row['items']:>9} {row['items_per_s']:>11.0f} "
            f"{row['rss_end_mb']:>8.1f} {speedup:>8}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced temporal graph and corpus (CI smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the run-table JSON here (stdout otherwise)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless vectorized walks and corpus "
                             "reach 5x the reference on the 2016-node graph "
                             "and the equivalence gates hold")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        slots_per_day, walks_per_node, walk_length, window = 48, 1, 15, 4
        scale = DatasetScale.tiny()
    else:
        slots_per_day, walks_per_node, walk_length, window = 288, 2, 20, 5
        scale = DatasetScale.benchmark()
    if args.check and args.smoke:
        print("ERROR: --check needs the full 2016-node temporal graph "
              "(do not combine with --smoke)", file=sys.stderr)
        return 1

    graph = build_temporal_graph(slots_per_day=slots_per_day)
    print(f"temporal graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"{walks_per_node} walks/node x length {walk_length}", flush=True)

    rows, corpus = bench_walks(graph, walks_per_node, walk_length, seed=args.seed)
    corpus_rows = bench_corpus(corpus, graph.num_nodes, window, seed=args.seed)
    rows.extend(corpus_rows)

    city, paths, departure_time = build_pricing_workload(
        "aalborg", scale, seed=args.seed)
    print(f"pricing workload: {len(paths)} candidate paths over "
          f"{city.network.num_edges} edges ({city.name})", flush=True)
    pricing_rows, looped, batched, grid = bench_pricing(city, paths, departure_time)
    rows.extend(pricing_rows)

    attach_speedups(rows)

    table = {
        "schema": "pretraining-pipeline-run-table/v1",
        "workload": {
            "temporal_nodes": graph.num_nodes,
            "walks_per_node": walks_per_node,
            "walk_length": walk_length,
            "window": window,
            "pricing_paths": len(paths),
            "city": city.name,
        },
        "rows": rows,
    }

    print()
    print(format_table(rows))

    if args.out is not None:
        args.out.write_text(json.dumps(table, indent=2))
        print(f"run table written to {args.out}")
    else:
        print(json.dumps(table, indent=2))

    failures = []
    if not np.array_equal(batched, looped):
        failures.append("batched pricing differs from the per-edge loop")
    grid_rel = np.max(np.abs(grid - looped) / looped) if len(paths) else 0.0
    print(f"\ngrid pricing max relative error vs continuous: {grid_rel:.4f}")
    if grid_rel > 0.02:
        failures.append(f"grid pricing off by {grid_rel:.2%} (expected <= 2%)")

    for stage in ("walks", "corpus"):
        gated = [row for row in rows
                 if row["stage"] == stage and row["impl"] == "vectorized"]
        for row in gated:
            print(f"{stage}: vectorized {row['speedup']:.2f}x over the loop "
                  f"reference")
            if args.check and row["speedup"] < 5.0:
                failures.append(
                    f"vectorized {stage} reached only {row['speedup']:.2f}x "
                    f"(expected >= 5x)")

    if args.check:
        print("\nchecking SGNS corpus-impl equivalence...", flush=True)
        failures.extend(check_sgns_equivalence(corpus, graph.num_nodes, window,
                                               seed=args.seed))

    for failure in failures:
        print(f"WARNING: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
