"""Table XII — effect of the number of meta-sets N.

Sweeps the number of meta-sets / curriculum stages (N = M) used by the
curriculum.  The paper finds a sweet spot (N = 10 at full scale): too few
experts make difficulty scores unreliable, too many make meta-sets tiny.  At
this reduced scale we sweep {2, 4} and assert both configurations train and
evaluate successfully.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table12_metasets


def test_table12_meta_set_sweep(bench_config, run_once):
    counts = (2, 4)
    results = run_once(run_table12_metasets, bench_config,
                       city_name="aalborg", meta_set_counts=counts)
    print()
    print(format_nested_results(results, title="Table XII: meta-set sweep (scaled)"))

    rows = results["aalborg"]
    assert set(rows) == set(counts)
    for sweep_point in rows.values():
        for task in ("travel_time", "ranking"):
            for value in sweep_point[task].values():
                assert np.isfinite(value)
        assert -1.0 <= sweep_point["ranking"]["tau"] <= 1.0
