"""Table VI — effects of curriculum learning, global loss and local loss.

Ablates the three ingredients of WSCCL: "w/o CL" removes the curriculum,
"w/o Global" sets λ=0 (local loss only) and "w/o Local" sets λ=1 (global loss
only).  The paper's key finding is that removing the *global* loss hurts the
most; the bench asserts that ordering on travel-time MAE.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table6_ablation


def test_table6_loss_and_curriculum_ablation(bench_config, run_once):
    results = run_once(run_table6_ablation, bench_config, city_name="aalborg")
    print()
    print(format_nested_results(results, title="Table VI: ablation (scaled)"))

    rows = results["aalborg"]
    assert set(rows) == {"w/o CL", "w/o Global", "w/o Local", "WSCCL"}
    for variant in rows.values():
        for task in ("travel_time", "ranking"):
            for value in variant[task].values():
                assert np.isfinite(value)

    # Shape check (paper's main ablation finding): dropping the global WSC
    # loss should not *beat* the full model on ranking quality — the global
    # term is what separates paths from each other.
    assert rows["w/o Global"]["ranking"]["tau"] <= rows["WSCCL"]["ranking"]["tau"] + 0.25
