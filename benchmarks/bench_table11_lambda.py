"""Table XI — effect of the balancing factor λ.

Sweeps λ (the weight of the global WSC loss in Eq. 12) over {0, 0.4, 0.8, 1}
on the Aalborg dataset.  The paper finds λ=0.8 optimal, with λ=0 (no global
loss) clearly worst; at this scale the bench asserts that the λ=0 end of the
sweep does not win the ranking task.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table11_lambda


def test_table11_lambda_sweep(bench_config, run_once):
    lambdas = (0.0, 0.4, 0.8, 1.0)
    results = run_once(run_table11_lambda, bench_config,
                       city_name="aalborg", lambdas=lambdas)
    print()
    print(format_nested_results(results, title="Table XI: lambda sweep (scaled)"))

    rows = results["aalborg"]
    assert set(rows) == set(float(v) for v in lambdas)
    for sweep_point in rows.values():
        for task in ("travel_time", "ranking"):
            for value in sweep_point[task].values():
                assert np.isfinite(value)

    # Shape check: some λ > 0 setting should be at least as good as λ = 0 on
    # ranking correlation (the paper's "global loss matters" conclusion).
    best_nonzero_tau = max(rows[v]["ranking"]["tau"] for v in rows if v > 0.0)
    assert best_nonzero_tau >= rows[0.0]["ranking"]["tau"] - 0.05
