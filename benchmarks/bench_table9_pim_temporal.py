"""Table IX — comparison with the temporally enhanced unsupervised method.

PIM-Temporal bolts a frozen temporal slot embedding onto PIM's non-temporal
path representation; WSCCL learns the coupled spatio-temporal representation
end to end.  The paper shows the bolt-on approach is inferior — the temporal
vector only captures network-wide conditions, not per-path interactions.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table9_pim_temporal


def test_table9_wsccl_vs_pim_temporal(bench_config, run_once):
    results = run_once(run_table9_pim_temporal, bench_config, cities=("aalborg",))
    print()
    print(format_nested_results(results, title="Table IX: WSCCL vs PIM-Temporal (scaled)"))

    rows = results["aalborg"]
    assert set(rows) == {"PIM-Temporal", "WSCCL"}
    for variant in rows.values():
        for task in ("travel_time", "ranking"):
            for value in variant[task].values():
                assert np.isfinite(value)

    # Shape check: WSCCL learns a coupled spatio-temporal representation and
    # should not be dominated by the bolt-on temporal variant on ranking
    # correlation (the paper has it strictly better on every dataset).
    assert rows["WSCCL"]["ranking"]["tau"] >= rows["PIM-Temporal"]["ranking"]["tau"] - 0.15
