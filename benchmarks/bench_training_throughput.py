"""Training throughput benchmark: batch size x encoder x dtype x impl.

Times ``WSCTrainer.train_step`` over a synthetic workload and emits a
run-table JSON in the experiment-runner style: one row per configuration
with steps/s, paths/s, per-step latency and memory (``peak_rss_mb`` is the
process-wide monotonic peak; ``rss_end_mb`` is the current RSS after the
row, the one to compare across rows).  Rows marked
``impl = "reference"`` run the original Python-loop code paths (per-head
attention, per-query contrastive losses, O(n²) contrast sets) in float64;
``impl = "vectorized"`` rows run the fused/matrix fast path in the given
dtype.  Each vectorized row's ``speedup`` is measured against the
loop-reference float64 row with the same encoder and batch size — this is
the perf trajectory that accrues per PR.

Run-table schema (``--out`` / stdout)::

    {
      "schema": "training-throughput-run-table/v1",
      "workload": {"corpus_paths", "steps_timed", "warmup_steps",
                   "length_min", "length_mean", "length_max"},
      "rows": [{"encoder", "batch_size", "dtype", "impl", "steps_timed",
                "seconds", "steps_per_s", "paths_per_s", "step_ms",
                "final_loss", "peak_rss_mb", "rss_end_mb", "speedup"}]
    }

``speedup`` is null on reference rows (they are their own baseline).

Usage::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py          # full grid
    PYTHONPATH=src python benchmarks/bench_training_throughput.py --smoke  # CI smoke
    PYTHONPATH=src python benchmarks/bench_training_throughput.py --check  # assert >= 3x
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import nn
from repro.core import SharedResources, WSCCLConfig, WSCModel, WSCTrainer
from repro.datasets import DatasetScale, aalborg


def peak_rss_mb():
    """Peak resident set size of this process in MiB.

    Monotonic over the process lifetime: each row inherits the maximum of
    everything run before it, so it bounds memory but cannot compare rows.
    Use ``rss_end_mb`` (current RSS, which does shrink) for cross-row
    comparisons.
    """
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak_kb /= 1024.0
    return peak_kb / 1024.0


def current_rss_mb():
    """Current resident set size in MiB (falls back to the peak off Linux)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return peak_rss_mb()


def build_workload(seed=0):
    """The tiny synthetic Aalborg corpus plus shared frozen embeddings."""
    city = aalborg(scale=DatasetScale.tiny())
    config = WSCCLConfig.test_scale()
    resources = SharedResources(city.network, config)
    samples = list(city.unlabeled)
    rng = np.random.default_rng(seed)
    return city, config, resources, samples, rng


def make_batches(samples, batch_size, num_batches, rng):
    """Pre-drawn minibatches so every configuration times identical data.

    Batches always hold exactly ``batch_size`` samples (drawn with
    replacement when the corpus is smaller), so the reported per-row
    ``batch_size`` and ``paths_per_s`` are what was actually timed.
    """
    batches = []
    for _ in range(num_batches):
        chosen = rng.choice(len(samples), size=batch_size,
                            replace=len(samples) < batch_size)
        batches.append([samples[i] for i in chosen])
    return batches


def run_configuration(city, config, resources, batches, weak_labeler,
                      encoder, batch_size, dtype, impl, warmup=1):
    """Time ``train_step`` over the prepared batches; returns a table row."""
    with nn.default_dtype(dtype):
        model = WSCModel(city.network, config.with_overrides(batch_size=batch_size),
                         resources=resources, encoder_type=encoder)
        trainer = WSCTrainer(model, impl=impl)  # scopes attention impl per step

        for batch in batches[:warmup]:
            trainer.train_step(batch, weak_labeler)

        timed = batches[warmup:]
        started = time.perf_counter()
        loss = float("nan")
        for batch in timed:
            loss = trainer.train_step(batch, weak_labeler)
        seconds = time.perf_counter() - started

    steps_per_s = len(timed) / seconds
    return {
        "encoder": encoder,
        "batch_size": batch_size,
        "dtype": dtype,
        "impl": impl,
        "steps_timed": len(timed),
        "seconds": seconds,
        "steps_per_s": steps_per_s,
        "paths_per_s": steps_per_s * batch_size,
        "step_ms": 1000.0 * seconds / len(timed),
        "final_loss": loss,
        "peak_rss_mb": peak_rss_mb(),
        "rss_end_mb": current_rss_mb(),
    }


def format_table(rows):
    header = (f"{'encoder':>12} {'batch':>6} {'dtype':>8} {'impl':>11} "
              f"{'steps/s':>9} {'paths/s':>9} {'step ms':>9} {'rss MB':>8} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = f"{row['speedup']:.2f}x" if row["speedup"] is not None else "(base)"
        lines.append(
            f"{row['encoder']:>12} {row['batch_size']:>6} {row['dtype']:>8} "
            f"{row['impl']:>11} {row['steps_per_s']:>9.2f} {row['paths_per_s']:>9.1f} "
            f"{row['step_ms']:>9.2f} {row['rss_end_mb']:>8.1f} {speedup:>8}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid and step count (CI smoke)")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed train steps per configuration")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the run-table JSON here (stdout otherwise)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless vectorized float32 reaches 3x "
                             "the loop-reference float64 transformer at every "
                             "batch size >= 32")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    steps = args.steps or (3 if args.smoke else 8)
    warmup = 1
    batch_sizes = [32] if args.smoke else [16, 32, 64]
    encoders = ["lstm", "transformer"]

    print("building workload (tiny Aalborg corpus + frozen embeddings)...", flush=True)
    city, config, resources, samples, rng = build_workload(seed=args.seed)
    weak_labeler = city.unlabeled.weak_labeler
    lengths = [len(tp) for tp, _ in samples]

    rows = []
    baselines = {}
    for encoder in encoders:
        for batch_size in batch_sizes:
            batches = make_batches(samples, batch_size, steps + warmup, rng)
            configurations = [("float64", "reference"),
                              ("float64", "vectorized"),
                              ("float32", "vectorized")]
            for dtype, impl in configurations:
                row = run_configuration(
                    city, config, resources, batches, weak_labeler,
                    encoder, batch_size, dtype, impl, warmup=warmup)
                if impl == "reference":
                    baselines[(encoder, batch_size)] = row["steps_per_s"]
                    row["speedup"] = None
                else:
                    row["speedup"] = (row["steps_per_s"]
                                      / baselines[(encoder, batch_size)])
                rows.append(row)
                shown = f"{row['speedup']:.2f}x" if row["speedup"] else "baseline"
                print(f"  {encoder:>11} batch={batch_size:<3} {dtype} {impl:<10} "
                      f"-> {row['steps_per_s']:7.2f} steps/s ({shown})", flush=True)

    table = {
        "schema": "training-throughput-run-table/v1",
        "workload": {
            "corpus_paths": len(samples),
            "steps_timed": steps,
            "warmup_steps": warmup,
            "length_min": int(min(lengths)),
            "length_mean": float(np.mean(lengths)),
            "length_max": int(max(lengths)),
        },
        "rows": rows,
    }

    print()
    print(format_table(rows))

    fast = [row for row in rows
            if row["encoder"] == "transformer" and row["batch_size"] >= 32
            and row["impl"] == "vectorized" and row["dtype"] == "float32"]
    best = max(fast, key=lambda row: row["speedup"])
    worst = min(fast, key=lambda row: row["speedup"])
    print(f"\nbest transformer fast path: batch={best['batch_size']} float32 "
          f"-> {best['speedup']:.2f}x over loop-reference float64")

    if args.out is not None:
        args.out.write_text(json.dumps(table, indent=2))
        print(f"run table written to {args.out}")
    else:
        print(json.dumps(table, indent=2))

    if worst["speedup"] < 3.0:
        # Every batch >= 32 row must clear the bound, not just the best one.
        print(f"WARNING: vectorized float32 at batch={worst['batch_size']} "
              f"reached only {worst['speedup']:.2f}x (expected >= 3x)",
              file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
