"""Downstream evaluation throughput: task x n_estimators x impl.

Times gradient-boosting fit + full-matrix predict over synthetic workloads
sized like the paper's downstream evaluations and emits a run-table JSON in
the experiment-runner style.  Rows marked ``impl = "reference"`` run the
original Python loops (per-threshold split scan, per-row ``predict`` walk);
``impl = "exact"`` is the vectorized engine on the same midpoint thresholds
(bit-identical trees, used for the equivalence gates); ``impl =
"histogram"`` is the quantile-binned throughput mode.  Each non-reference
row's ``speedup`` is fit+predict time against the reference row with the
same task and ``n_estimators``.

Run-table schema (``--out`` / stdout)::

    {
      "schema": "downstream-throughput-run-table/v1",
      "workload": {"rows_train", "rows_predict", "num_features", "max_depth"},
      "rows": [{"task", "n_estimators", "impl", "fit_seconds",
                "predict_seconds", "fits_per_s", "rows_per_s_predicted",
                "metric", "metric_value", "peak_rss_mb", "rss_end_mb",
                "speedup"}]
    }

``--check`` additionally gates the PR's acceptance criteria: histogram
fit+predict >= 5x the reference at N >= 2000 rows / n_estimators >= 40, and
``run_table3_overall`` / ``run_table4_recommendation`` metric-equivalent
(<= 1e-9) between the reference and vectorized engines on exact splits.

Usage::

    PYTHONPATH=src python benchmarks/bench_downstream_throughput.py          # full grid
    PYTHONPATH=src python benchmarks/bench_downstream_throughput.py --smoke  # CI smoke
    PYTHONPATH=src python benchmarks/bench_downstream_throughput.py --check  # assert gates
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.downstream import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    accuracy,
    mae,
)

IMPLS = {
    # impl label -> (constructor impl, binning)
    "reference": ("reference", "exact"),
    "exact": ("vectorized", "exact"),
    "histogram": ("vectorized", "histogram"),
}


def peak_rss_mb():
    """Peak resident set size of this process in MiB (monotonic)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak_kb /= 1024.0
    return peak_kb / 1024.0


def current_rss_mb():
    """Current resident set size in MiB (falls back to the peak off Linux)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return peak_rss_mb()


def build_workload(rows_train, rows_predict, num_features, seed=0):
    """Synthetic embedding-shaped matrices with learnable regression and
    classification targets (mirrors the frozen-TPR -> label setup)."""
    rng = np.random.default_rng(seed)
    total = rows_train + rows_predict
    features = rng.normal(size=(total, num_features))
    signal = (2.0 * features[:, 0] + np.sin(features[:, 1])
              + 0.5 * features[:, 2 % num_features])
    targets = signal + rng.normal(scale=0.2, size=total)
    labels = (signal + rng.normal(scale=0.5, size=total) > 0).astype(np.int64)
    return {
        "train_x": features[:rows_train],
        "predict_x": features[rows_train:],
        "train_y": targets[:rows_train],
        "predict_y": targets[rows_train:],
        "train_labels": labels[:rows_train],
        "predict_labels": labels[rows_train:],
    }


def run_configuration(workload, task, n_estimators, impl_label, max_depth=3, seed=0):
    """Time one fit + one full predict; returns a run-table row."""
    impl, binning = IMPLS[impl_label]
    if task == "recommendation":
        model = GradientBoostingClassifier(
            n_estimators=n_estimators, max_depth=max_depth, seed=seed,
            impl=impl, binning=binning)
        train_y = workload["train_labels"]
    else:
        model = GradientBoostingRegressor(
            n_estimators=n_estimators, max_depth=max_depth, seed=seed,
            impl=impl, binning=binning)
        train_y = workload["train_y"]

    started = time.perf_counter()
    model.fit(workload["train_x"], train_y)
    fit_seconds = time.perf_counter() - started

    started = time.perf_counter()
    predictions = model.predict(workload["predict_x"])
    predict_seconds = time.perf_counter() - started

    if task == "recommendation":
        metric_name = "accuracy"
        metric_value = accuracy(workload["predict_labels"], predictions)
    else:
        metric_name = "mae"
        metric_value = mae(workload["predict_y"], predictions)

    return {
        "task": task,
        "n_estimators": n_estimators,
        "impl": impl_label,
        "fit_seconds": fit_seconds,
        "predict_seconds": predict_seconds,
        "fits_per_s": 1.0 / fit_seconds,
        "rows_per_s_predicted": len(predictions) / predict_seconds,
        "metric": metric_name,
        "metric_value": metric_value,
        "peak_rss_mb": peak_rss_mb(),
        "rss_end_mb": current_rss_mb(),
    }


def flatten_metrics(table, prefix=""):
    """Flatten a nested table-runner result into {dotted.key: float}."""
    flat = {}
    for key, value in table.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, path))
        else:
            flat[path] = float(value)
    return flat


def check_table_runner_equivalence(tolerance=1e-9):
    """run_table3_overall / run_table4_recommendation, reference vs
    vectorized engine on exact splits: every metric equal within tolerance.
    """
    from repro.evaluation.experiment import HarnessConfig
    from repro.evaluation.harness import run_table3_overall, run_table4_recommendation

    config = HarnessConfig()
    runners = (
        ("run_table3_overall",
         lambda impl: run_table3_overall(
             config, methods=("Node2vec",), include_supervised=False,
             include_edge_sum=False, impl=impl, binning="exact")),
        ("run_table4_recommendation",
         lambda impl: run_table4_recommendation(
             config, methods=("Node2vec",), impl=impl, binning="exact")),
    )
    failures = []
    for name, runner in runners:
        reference = flatten_metrics(runner("reference"))
        vectorized = flatten_metrics(runner("vectorized"))
        if set(reference) != set(vectorized):
            failures.append(f"{name}: metric keys differ")
            continue
        for key in sorted(reference):
            difference = abs(reference[key] - vectorized[key])
            if not difference <= tolerance:
                failures.append(f"{name}: {key} differs by {difference:.3e}")
        print(f"  {name}: {len(reference)} metrics equivalent within {tolerance:g}")
    return failures


def format_table(rows):
    header = (f"{'task':>15} {'n_est':>6} {'impl':>10} {'fit s':>8} "
              f"{'pred s':>8} {'rows/s':>11} {'metric':>10} {'rss MB':>8} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = f"{row['speedup']:.2f}x" if row.get("speedup") else "(base)"
        lines.append(
            f"{row['task']:>15} {row['n_estimators']:>6} {row['impl']:>10} "
            f"{row['fit_seconds']:>8.3f} {row['predict_seconds']:>8.3f} "
            f"{row['rows_per_s_predicted']:>11.0f} {row['metric_value']:>10.4f} "
            f"{row['rss_end_mb']:>8.1f} {speedup:>8}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced grid and row count (CI smoke)")
    parser.add_argument("--rows", type=int, default=None,
                        help="training rows per configuration")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the run-table JSON here (stdout otherwise)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless histogram fit+predict reaches "
                             "5x the reference at every n_estimators >= 40 and "
                             "the table runners are engine-equivalent to 1e-9")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows_train = args.rows or (400 if args.smoke else 2500)
    rows_predict = rows_train * 2
    num_features = 16
    estimator_grid = [10] if args.smoke else [10, 40]
    tasks = ["travel_time", "recommendation"] if args.smoke else \
        ["travel_time", "ranking", "recommendation"]

    print(f"building workload ({rows_train} train rows, {rows_predict} predict "
          f"rows, {num_features} features)...", flush=True)
    workload = build_workload(rows_train, rows_predict, num_features, seed=args.seed)

    rows = []
    baselines = {}
    for task in tasks:
        for n_estimators in estimator_grid:
            for impl_label in IMPLS:
                row = run_configuration(workload, task, n_estimators, impl_label,
                                        seed=args.seed)
                total = row["fit_seconds"] + row["predict_seconds"]
                if impl_label == "reference":
                    baselines[(task, n_estimators)] = total
                    row["speedup"] = None
                else:
                    row["speedup"] = baselines[(task, n_estimators)] / total
                rows.append(row)
                shown = f"{row['speedup']:.2f}x" if row["speedup"] else "baseline"
                print(f"  {task:>15} n_est={n_estimators:<3} {impl_label:<10} "
                      f"-> fit {row['fit_seconds']:6.3f}s "
                      f"predict {row['predict_seconds']:6.3f}s ({shown})", flush=True)

    table = {
        "schema": "downstream-throughput-run-table/v1",
        "workload": {
            "rows_train": rows_train,
            "rows_predict": rows_predict,
            "num_features": num_features,
            "max_depth": 3,
        },
        "rows": rows,
    }

    print()
    print(format_table(rows))

    if args.out is not None:
        args.out.write_text(json.dumps(table, indent=2))
        print(f"run table written to {args.out}")
    else:
        print(json.dumps(table, indent=2))

    failures = []
    gated = [row for row in rows
             if row["impl"] == "histogram" and row["n_estimators"] >= 40]
    for row in gated:
        if row["speedup"] < 5.0:
            failures.append(
                f"histogram {row['task']} n_est={row['n_estimators']} reached "
                f"only {row['speedup']:.2f}x (expected >= 5x)")
    if gated:
        worst = min(gated, key=lambda row: row["speedup"])
        print(f"\nworst gated histogram row: {worst['task']} "
              f"n_est={worst['n_estimators']} -> {worst['speedup']:.2f}x "
              f"over the loop reference")

    if args.check:
        if rows_train < 2000 or not gated:
            print("ERROR: --check needs >= 2000 training rows and an "
                  "n_estimators >= 40 grid (do not combine with --smoke/--rows "
                  "below 2000)", file=sys.stderr)
            return 1
        print("\nchecking table-runner engine equivalence "
              "(reference vs vectorized, exact splits)...", flush=True)
        failures.extend(check_table_runner_equivalence())

    for failure in failures:
        print(f"WARNING: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
