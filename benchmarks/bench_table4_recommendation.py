"""Table IV — overall performance on path recommendation.

WSCCL and the unsupervised baselines are compared on the path-recommendation
task (classification of whether a candidate path is the one the driver
actually chose), reported as accuracy and hit rate.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_metric_table, run_table4_recommendation


def test_table4_path_recommendation(bench_config, run_once):
    results = run_once(
        run_table4_recommendation, bench_config,
        cities=("aalborg",),
        methods=("Node2vec", "DGI", "GMI", "MB", "BERT", "InfoGraph", "PIM"),
    )
    rows = results["aalborg"]
    print()
    print(format_metric_table(rows, title="Table IV: path recommendation (scaled)"))

    assert "WSCCL" in rows
    for method, metrics in rows.items():
        assert 0.0 <= metrics["Acc"] <= 1.0
        assert 0.0 <= metrics["HR"] <= 1.0

    # Shape check: the recommendation task is imbalanced (1 positive per
    # candidate group), so any sensible model must beat a coin flip on
    # accuracy; WSCCL should be competitive with the baseline pool.
    assert rows["WSCCL"]["Acc"] >= 0.5
    baseline_accuracies = [metrics["Acc"] for name, metrics in rows.items() if name != "WSCCL"]
    assert rows["WSCCL"]["Acc"] >= float(np.median(baseline_accuracies)) - 0.2
