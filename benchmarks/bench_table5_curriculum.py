"""Table V — effect of the curriculum design strategy.

Compares the learned curriculum (expert-agreement difficulty scores) against
the heuristic curriculum that simply sorts paths by their number of edges.
The paper finds the learned curriculum better on all tasks; at this scale we
assert both variants train successfully and report the same metric set so the
ordering can be inspected in the printed table.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table5_curriculum_design


def test_table5_curriculum_design(bench_config, run_once):
    results = run_once(run_table5_curriculum_design, bench_config, city_name="aalborg")
    print()
    print(format_nested_results(results, title="Table V: learned vs heuristic curriculum (scaled)"))

    rows = results["aalborg"]
    assert set(rows) == {"Heuristic", "WSCCL"}
    for variant in rows.values():
        for task in ("travel_time", "ranking"):
            assert task in variant
            for value in variant[task].values():
                assert np.isfinite(value)

    # Both curricula must produce usable representations: ranking correlations
    # strictly inside the valid range and positive travel-time errors.
    for variant in rows.values():
        assert -1.0 <= variant["ranking"]["tau"] <= 1.0
        assert variant["travel_time"]["MAE"] > 0
