"""Table X — comparison with supervised methods across tasks.

Each supervised baseline (PathRank, HMTRL, DeepGTT) is trained on a primary
task and its frozen representation is transferred to the secondary task.
The paper's finding: supervised representations work much better on their
primary task than on the secondary one, while WSCCL is strong on both —
evidence that task-specific TPRs do not generalise.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table10_supervised_transfer


def test_table10_supervised_cross_task_transfer(bench_config, run_once):
    results = run_once(run_table10_supervised_transfer, bench_config,
                       city_name="aalborg", methods=("PathRank", "DeepGTT"))
    print()
    print(format_nested_results(results, title="Table X: supervised transfer (scaled)"))

    rows = results["aalborg"]
    # Two directions per supervised method plus WSCCL.
    assert "PathRank-PR" in rows and "PathRank-TTE" in rows
    assert "DeepGTT-PR" in rows and "DeepGTT-TTE" in rows
    assert "WSCCL" in rows

    for variant in rows.values():
        for task in ("travel_time", "ranking"):
            for value in variant[task].values():
                assert np.isfinite(value)

    # Shape check (on PathRank, the paper's canonical supervised PR model):
    # training on travel time (primary) must give travel-time errors no worse
    # than transferring a ranking-trained representation, within a margin.
    # DeepGTT is reported but not asserted — its inverse-Gaussian likelihood
    # is poorly conditioned at this reduced scale.
    primary = rows["PathRank-PR"]["travel_time"]["MAE"]
    transferred = rows["PathRank-TTE"]["travel_time"]["MAE"]
    assert primary <= transferred * 1.5
