"""Fig. 7 — using WSCCL as a pre-training method for PathRank.

Reproduces the pre-training curves: PathRank trained from scratch vs
PathRank whose temporal path encoder is initialised from a trained WSCCL
model, for several labelled-data budgets.  The paper's finding is that the
pre-trained variant reaches the same quality with fewer labels and is better
at the full label budget.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_fig7_series, run_fig7_pretraining


def test_fig7_wsccl_pretraining_for_pathrank(bench_config, run_once):
    fractions = (0.5, 1.0)
    results = run_once(run_fig7_pretraining, bench_config,
                       city_name="aalborg", label_fractions=fractions)
    print()
    print(format_fig7_series(results, title="Fig. 7: WSCCL pre-training for PathRank (scaled)"))

    series = results["aalborg"]
    assert set(series) == {"scratch", "pretrained"}
    for mode in series.values():
        assert set(mode) == set(float(f) for f in fractions)
        for point in mode.values():
            assert np.isfinite(point["travel_time"]["MAE"])
            assert np.isfinite(point["ranking"]["MAE"])

    # Shape check: with the full label budget the pre-trained PathRank should
    # not be substantially worse than training from scratch on travel time
    # (the paper has it strictly better).
    scratch_full = series["scratch"][1.0]["travel_time"]["MAE"]
    pretrained_full = series["pretrained"][1.0]["travel_time"]["MAE"]
    assert pretrained_full <= scratch_full * 1.4
