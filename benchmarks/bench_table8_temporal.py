"""Table VIII — effect of temporal information (WSCCL vs WSCCL-NT).

WSCCL-NT zeroes the temporal embedding so the encoder sees only spatial
features.  The paper finds the non-temporal variant consistently worse; here
we assert both train and that the temporal variant's representations actually
depend on the departure time while the NT variant's do not (the mechanism
behind the table), plus report the metric rows.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table8_temporal


def test_table8_effect_of_temporal_information(bench_config, run_once):
    results = run_once(run_table8_temporal, bench_config, cities=("aalborg",))
    print()
    print(format_nested_results(results, title="Table VIII: temporal information (scaled)"))

    rows = results["aalborg"]
    assert set(rows) == {"WSCCL", "WSCCL-NT"}
    for variant in rows.values():
        for task in ("travel_time", "ranking"):
            for value in variant[task].values():
                assert np.isfinite(value)

    # Shape check: the temporal variant should not be clearly dominated by the
    # non-temporal one across both tasks simultaneously.
    wsccl, wsccl_nt = rows["WSCCL"], rows["WSCCL-NT"]
    better_tt = wsccl["travel_time"]["MAE"] <= wsccl_nt["travel_time"]["MAE"] * 1.2
    better_rank = wsccl["ranking"]["tau"] >= wsccl_nt["ranking"]["tau"] - 0.15
    assert better_tt or better_rank
