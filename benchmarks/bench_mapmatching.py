"""Map-matching engine throughput: impl x trajectory bank.

Times HMM map matching (candidate generation + transition pricing + Viterbi
decoding, end to end) over a bank of noisy GPS trajectories and emits a
run-table JSON in the experiment-runner style.  The ``impl = "reference"``
row runs the original per-fix full scans and one fresh Dijkstra per
candidate pair per Viterbi step; ``impl = "vectorized"`` is the grid-pruned
batched candidate generation, the LRU multi-target Dijkstra transition
cache, and matrix-form Viterbi.  The vectorized row's ``speedup`` is wall
time against the reference row.

Run-table schema (``--out`` / stdout)::

    {
      "schema": "mapmatching-run-table/v1",
      "workload": {"num_nodes", "num_edges", "num_trajectories", "num_fixes",
                   "sample_interval", "noise_std"},
      "rows": [{"stage", "impl", "seconds", "items", "items_per_s",
                "peak_rss_mb", "rss_end_mb", "speedup"}]
    }

``--check`` additionally gates the PR's acceptance criteria on the
2016-node network: the vectorized matcher >= 5x over the reference loops,
decoded paths bit-identical across impls, and a ``paths_from="mapmatched"``
dataset building end-to-end through the existing pretraining pipeline.

Usage::

    PYTHONPATH=src python benchmarks/bench_mapmatching.py          # full bank
    PYTHONPATH=src python benchmarks/bench_mapmatching.py --smoke  # CI smoke
    PYTHONPATH=src python benchmarks/bench_mapmatching.py --check  # assert gates
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.datasets import DatasetScale, build_city_dataset
from repro.roadnet import CityConfig, generate_city_network, path_similarity, shortest_path
from repro.temporal import DepartureTime
from repro.trajectory import GPSSampler, HMMMapMatcher, SpeedModel


def peak_rss_mb():
    """Peak resident set size of this process in MiB (monotonic)."""
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak_kb /= 1024.0
    return peak_kb / 1024.0


def current_rss_mb():
    """Current resident set size in MiB (falls back to the peak off Linux)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except OSError:
        pass
    return peak_rss_mb()


def make_row(stage, impl, seconds, items):
    return {
        "stage": stage,
        "impl": impl,
        "seconds": seconds,
        "items": items,
        "items_per_s": items / seconds if seconds > 0 else float("inf"),
        "peak_rss_mb": peak_rss_mb(),
        "rss_end_mb": current_rss_mb(),
    }


def build_trajectory_bank(network, num_trajectories, sample_interval,
                          noise_std, seed=0):
    """Noisy GPS traces along shortest paths between sampled OD pairs."""
    rng = np.random.default_rng(seed)
    speed_model = SpeedModel(network, seed=seed, noise_std=0.0)
    sampler = GPSSampler(network, speed_model, sample_interval=sample_interval,
                         noise_std=noise_std, seed=seed)
    trajectories = []
    attempts = 0
    while len(trajectories) < num_trajectories and attempts < num_trajectories * 50:
        attempts += 1
        origin = int(rng.integers(0, network.num_nodes))
        destination = int(rng.integers(0, network.num_nodes))
        if origin == destination:
            continue
        path = shortest_path(network, origin, destination)
        if path is None or not 10 <= len(path) <= 30:
            continue
        day = int(rng.integers(0, 7))
        hour = float(rng.uniform(6.0, 22.0))
        trajectories.append(sampler.sample(path, DepartureTime.from_hour(day, hour)))
    return trajectories


def bench_matching(network, trajectories):
    """Match the bank with both impls; returns (rows, per-impl paths)."""
    rows = []
    decoded = {}
    num_fixes = sum(len(t) for t in trajectories)
    for impl in ("reference", "vectorized"):
        matcher = HMMMapMatcher(network, impl=impl)
        if impl == "vectorized":
            # Build the one-time spatial index and Dijkstra adjacency outside
            # the timed region (they amortise across whole corpora).
            matcher.grid_index
            matcher.dijkstra_cache
        started = time.perf_counter()
        decoded[impl] = matcher.match_batch(trajectories)
        seconds = time.perf_counter() - started
        rows.append(make_row("match", impl, seconds, num_fixes))
        if impl == "vectorized":
            cache = matcher.dijkstra_cache
            print(f"  dijkstra cache: {cache.hits} hits / {cache.misses} "
                  f"misses ({len(cache)} cached sources)")
    return rows, decoded


def attach_speedups(rows):
    baselines = {row["stage"]: row["seconds"] for row in rows
                 if row["impl"] == "reference"}
    for row in rows:
        if row["impl"] == "reference":
            row["speedup"] = None
        else:
            row["speedup"] = baselines[row["stage"]] / row["seconds"]
    return rows


def check_mapmatched_dataset(seed=0):
    """paths_from="mapmatched" must build end-to-end and feed pretraining."""
    city = build_city_dataset("aalborg", scale=DatasetScale.tiny(), seed=seed,
                              paths_from="mapmatched")
    failures = []
    if len(city.unlabeled) == 0:
        failures.append("mapmatched dataset produced an empty unlabeled corpus")
    if not city.tasks.travel_time:
        failures.append("mapmatched dataset produced no travel-time examples")
    disconnected = sum(
        1 for tp in city.unlabeled.temporal_paths
        if not city.network.is_connected_path(tp.path))
    if disconnected:
        failures.append(f"{disconnected} mapmatched corpus paths are not connected")
    # The corpus must flow through the pretraining pipeline unchanged: weak
    # labels resolved and contrastive minibatches drawable.
    batches = list(city.unlabeled.minibatches(batch_size=4,
                                              rng=np.random.default_rng(seed)))
    if not batches:
        failures.append("mapmatched corpus yields no contrastive minibatches")
    if not failures:
        print(f"  mapmatched aalborg (tiny): {len(city.unlabeled)} corpus paths, "
              f"{len(batches)} minibatches, all paths connected")
    return failures


def format_table(rows):
    header = (f"{'stage':>8} {'impl':>11} {'seconds':>9} {'items':>7} "
              f"{'items/s':>9} {'rss MB':>8} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        speedup = f"{row['speedup']:.2f}x" if row.get("speedup") else "(base)"
        lines.append(
            f"{row['stage']:>8} {row['impl']:>11} {row['seconds']:>9.3f} "
            f"{row['items']:>7} {row['items_per_s']:>9.0f} "
            f"{row['rss_end_mb']:>8.1f} {speedup:>8}")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small network and trajectory bank (CI smoke)")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the run-table JSON here (stdout otherwise)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the vectorized matcher "
                             "reaches 5x the reference on the 2016-node "
                             "network with bit-identical decoded paths and "
                             "the mapmatched dataset builds end-to-end")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.check and args.smoke:
        print("ERROR: --check needs the full 2016-node network "
              "(do not combine with --smoke)", file=sys.stderr)
        return 1

    if args.smoke:
        grid_rows, grid_cols, num_trajectories = 12, 12, 2
    else:
        # 42 x 48 grid without the orbital ring: exactly 2016 nodes.
        grid_rows, grid_cols, num_trajectories = 42, 48, 6
    sample_interval, noise_std = 15.0, 8.0

    network = generate_city_network(CityConfig(
        name="bench-grid", grid_rows=grid_rows, grid_cols=grid_cols,
        highway_ring=False, seed=5))
    trajectories = build_trajectory_bank(
        network, num_trajectories, sample_interval, noise_std, seed=args.seed)
    num_fixes = sum(len(t) for t in trajectories)
    print(f"network: {network.num_nodes} nodes, {network.num_edges} edges; "
          f"{len(trajectories)} trajectories, {num_fixes} fixes", flush=True)

    rows, decoded = bench_matching(network, trajectories)
    attach_speedups(rows)

    overlaps = [path_similarity(network, t.true_path, matched)
                for t, matched in zip(trajectories, decoded["vectorized"])]
    print(f"recovered-path similarity to truth: mean "
          f"{np.mean(overlaps):.3f}, min {np.min(overlaps):.3f}")

    table = {
        "schema": "mapmatching-run-table/v1",
        "workload": {
            "num_nodes": network.num_nodes,
            "num_edges": network.num_edges,
            "num_trajectories": len(trajectories),
            "num_fixes": num_fixes,
            "sample_interval": sample_interval,
            "noise_std": noise_std,
        },
        "rows": rows,
    }

    print()
    print(format_table(rows))

    if args.out is not None:
        args.out.write_text(json.dumps(table, indent=2))
        print(f"run table written to {args.out}")
    else:
        print(json.dumps(table, indent=2))

    failures = []
    if decoded["reference"] != decoded["vectorized"]:
        differing = sum(1 for a, b in zip(decoded["reference"],
                                          decoded["vectorized"]) if a != b)
        failures.append(f"decoded paths differ between impls "
                        f"({differing}/{len(trajectories)} trajectories)")
    else:
        print(f"\ndecoded paths bit-identical across impls "
              f"({len(trajectories)} trajectories)")

    for row in rows:
        if row["impl"] == "vectorized":
            print(f"match: vectorized {row['speedup']:.2f}x over the loop "
                  f"reference")
            if args.check and row["speedup"] < 5.0:
                failures.append(
                    f"vectorized matcher reached only {row['speedup']:.2f}x "
                    f"(expected >= 5x)")

    if args.check:
        print("\nchecking mapmatched dataset end-to-end...", flush=True)
        failures.extend(check_mapmatched_dataset(seed=args.seed))

    for failure in failures:
        print(f"WARNING: {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
