"""Serving throughput benchmark: batch size x bucket policy x cache on/off.

Measures the :class:`~repro.serving.PathEmbeddingService` against the
per-path baseline (one ``model.encode([tp])`` call per request path) on a
synthetic workload, and emits a run-table JSON in the experiment-runner
style: one row per serving configuration with throughput, latency
percentiles, cache hit rate, padding efficiency and speedup.

Run-table schema (``--out`` / stdout)::

    {
      "schema": "serving-throughput-run-table/v1",
      "workload": {"total_paths", "unique_paths", "num_requests",
                   "request_size", "length_min", "length_mean", "length_max"},
      "baseline": {"label", "seconds", "throughput_paths_per_s"},
      "rows": [{"bucket_policy", "batch_size", "cache", "seconds",
                "throughput_paths_per_s", "latency_p50_ms", "latency_p95_ms",
                "cache_hit_rate", "padding_efficiency", "speedup"}]
    }

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py          # full grid
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --quick  # CI smoke
    PYTHONPATH=src python benchmarks/bench_serving_throughput.py --out table.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import SharedResources, WSCCLConfig, WSCModel
from repro.datasets import DatasetScale, aalborg
from repro.serving import PathEmbeddingService


def build_workload(total_paths, seed=0):
    """A request stream over the tiny synthetic Aalborg corpus.

    Temporal paths are sampled with replacement, so the stream mixes path
    lengths and repeats requests the way real traffic does (the repeats are
    what the cache rows exercise).
    """
    city = aalborg(scale=DatasetScale.tiny())
    corpus = list(city.unlabeled.temporal_paths)
    rng = np.random.default_rng(seed)
    workload = [corpus[i] for i in rng.integers(0, len(corpus), size=total_paths)]
    model = WSCModel(
        city.network, WSCCLConfig.test_scale(),
        resources=SharedResources(city.network, WSCCLConfig.test_scale()))
    return model, workload


def run_baseline(model, workload):
    """Per-path encoding: the pre-serving behaviour every row is compared to."""
    started = time.perf_counter()
    for tp in workload:
        model.encode([tp])
    seconds = time.perf_counter() - started
    return {
        "label": "per-path model.encode",
        "seconds": seconds,
        "throughput_paths_per_s": len(workload) / seconds,
    }


def run_configuration(model, workload, policy, batch_size, cache, request_size):
    service = PathEmbeddingService(
        model, bucket_policy=policy, max_batch_size=batch_size,
        cache_enabled=cache, cache_capacity=max(64, len(workload)))
    started = time.perf_counter()
    for start in range(0, len(workload), request_size):
        service.embed(workload[start:start + request_size])
    seconds = time.perf_counter() - started
    scraped = service.scrape()
    return {
        "bucket_policy": policy,
        "batch_size": batch_size,
        "cache": cache,
        "seconds": seconds,
        "throughput_paths_per_s": len(workload) / seconds,
        "latency_p50_ms": scraped["latency_p50_ms"],
        "latency_p95_ms": scraped["latency_p95_ms"],
        "cache_hit_rate": scraped.get("cache_hit_rate", 0.0),
        "padding_efficiency": scraped["padding_efficiency"],
    }


def format_table(baseline, rows):
    header = (f"{'policy':>8} {'batch':>6} {'cache':>6} {'paths/s':>10} "
              f"{'p50 ms':>8} {'p95 ms':>8} {'hit%':>6} {'pad eff':>8} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    lines.append(f"{'(none)':>8} {'1':>6} {'off':>6} "
                 f"{baseline['throughput_paths_per_s']:>10.1f} "
                 f"{'':>8} {'':>8} {'':>6} {'':>8} {'1.00x':>8}  <- per-path baseline")
    for row in rows:
        lines.append(
            f"{row['bucket_policy']:>8} {row['batch_size']:>6} "
            f"{'on' if row['cache'] else 'off':>6} "
            f"{row['throughput_paths_per_s']:>10.1f} "
            f"{row['latency_p50_ms']:>8.2f} {row['latency_p95_ms']:>8.2f} "
            f"{100 * row['cache_hit_rate']:>5.1f}% "
            f"{row['padding_efficiency']:>8.3f} {row['speedup']:>7.2f}x")
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small workload and reduced grid (CI smoke)")
    parser.add_argument("--paths", type=int, default=None,
                        help="total request paths (overrides --quick default)")
    parser.add_argument("--request-size", type=int, default=50,
                        help="paths per service request")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the run-table JSON here (stdout otherwise)")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless bucketed serving reaches "
                             "2x the per-path baseline")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    total_paths = args.paths or (120 if args.quick else 600)
    if total_paths < 1 or args.request_size < 1:
        parser.error("--paths and --request-size must be >= 1")
    policies = ["none", "fixed"] if args.quick else ["none", "fixed", "pow2", "exact"]
    batch_sizes = [32] if args.quick else [16, 64]

    print(f"building workload ({total_paths} paths)...", flush=True)
    model, workload = build_workload(total_paths, seed=args.seed)
    lengths = [len(tp) for tp in workload]

    print("timing per-path baseline...", flush=True)
    baseline = run_baseline(model, workload)

    rows = []
    for policy in policies:
        for batch_size in batch_sizes:
            for cache in (False, True):
                row = run_configuration(model, workload, policy, batch_size,
                                        cache, args.request_size)
                row["speedup"] = (row["throughput_paths_per_s"]
                                  / baseline["throughput_paths_per_s"])
                rows.append(row)
                print(f"  {policy:>6} batch={batch_size:<3} "
                      f"cache={'on' if cache else 'off':<3} "
                      f"-> {row['throughput_paths_per_s']:8.1f} paths/s "
                      f"({row['speedup']:.2f}x)", flush=True)

    table = {
        "schema": "serving-throughput-run-table/v1",
        "workload": {
            "total_paths": total_paths,
            "unique_paths": len({(tp.path, tp.departure_time.slot_index)
                                 for tp in workload}),
            "num_requests": -(-total_paths // args.request_size),
            "request_size": args.request_size,
            "length_min": int(min(lengths)),
            "length_mean": float(np.mean(lengths)),
            "length_max": int(max(lengths)),
        },
        "baseline": baseline,
        "rows": rows,
    }

    print()
    print(format_table(baseline, rows))

    bucketed = [row for row in rows if row["bucket_policy"] != "none"]
    best = max(bucketed, key=lambda row: row["speedup"])
    print(f"\nbest bucketed configuration: {best['bucket_policy']} "
          f"batch={best['batch_size']} cache={'on' if best['cache'] else 'off'} "
          f"-> {best['speedup']:.2f}x over per-path encoding")

    if args.out is not None:
        args.out.write_text(json.dumps(table, indent=2))
        print(f"run table written to {args.out}")
    else:
        print(json.dumps(table, indent=2))

    if best["speedup"] < 2.0:
        print("WARNING: bucketed serving did not reach the expected 2x speedup",
              file=sys.stderr)
        if args.check:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
