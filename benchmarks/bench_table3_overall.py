"""Table III — overall accuracy on travel time estimation and path ranking.

Reproduces the paper's headline comparison: WSCCL against the unsupervised
baselines (Node2vec, DGI, GMI, MB, BERT, InfoGraph, PIM), the supervised
baselines (DeepGTT, HMTRL, PathRank) and the edge-sum baselines (GCN, STGCN)
on travel-time estimation and path-ranking, at reduced scale on the synthetic
Aalborg dataset.

Expected shape (not absolute values): WSCCL's travel-time MAE and ranking τ
should place it at or near the top of the table, and the purely structural
graph baselines (which ignore departure time) should not dominate it.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import format_nested_results, run_table3_overall


def test_table3_overall_accuracy(bench_config, run_once):
    results = run_once(
        run_table3_overall, bench_config,
        cities=("aalborg",),
        methods=("Node2vec", "DGI", "GMI", "MB", "BERT", "InfoGraph", "PIM"),
        include_supervised=True,
        include_edge_sum=True,
    )
    print()
    print(format_nested_results(results, title="Table III: travel time + path ranking (scaled)"))

    rows = results["aalborg"]
    # Every method produced finite metrics for the tasks it supports.
    for method, tasks in rows.items():
        for task, metrics in tasks.items():
            for value in metrics.values():
                assert np.isfinite(value), f"{method}/{task} produced a non-finite metric"

    # WSCCL appears alongside all 12 baselines.
    assert "WSCCL" in rows
    assert len(rows) == 13

    # Shape check: WSCCL's ranking correlation is at least as good as the
    # median non-temporal graph baseline (Node2vec/DGI/GMI), the methods the
    # paper singles out as unable to capture temporal correlation.
    graph_taus = [rows[m]["ranking"]["tau"] for m in ("Node2vec", "DGI", "GMI")]
    assert rows["WSCCL"]["ranking"]["tau"] >= float(np.median(graph_taus)) - 0.35

    # Travel-time MAE of WSCCL is within striking distance of the best method
    # (the paper has it winning; at this scale we assert it is not an outlier).
    tt_maes = {m: tasks["travel_time"]["MAE"] for m, tasks in rows.items()
               if "travel_time" in tasks}
    assert rows["WSCCL"]["travel_time"]["MAE"] <= 2.0 * min(tt_maes.values())
