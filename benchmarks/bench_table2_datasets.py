"""Table II — dataset statistics.

Regenerates the per-city statistics table (nodes, edges, unlabeled and
labelled path counts) for the three synthetic datasets that stand in for the
Aalborg, Harbin and Chengdu corpora.
"""

from __future__ import annotations

from repro.evaluation import format_metric_table, run_table2_dataset_statistics


def test_table2_dataset_statistics(bench_config, run_once):
    rows = run_once(run_table2_dataset_statistics, bench_config,
                    cities=("aalborg", "harbin", "chengdu"))

    printable = {
        name: {
            "#Nodes": stats["num_nodes"],
            "#Edges": stats["num_edges"],
            "Unlabeled": stats["unlabeled_paths"],
            "Labeled": stats["labeled_paths"],
        }
        for name, stats in rows.items()
    }
    print()
    print(format_metric_table(printable, title="Table II: dataset statistics (scaled)"))

    # Shape checks: all three cities built, non-trivial networks, and the
    # labelled subset is no larger than the unlabeled corpus (as in the paper).
    assert set(rows) == {"aalborg", "harbin", "chengdu"}
    for stats in rows.values():
        assert stats["num_nodes"] > 0
        assert stats["num_edges"] > stats["num_nodes"] // 2
        assert stats["labeled_paths"] <= stats["unlabeled_paths"]
    # Chengdu is the densest network (most edges per node), as in Table II.
    density = {name: stats["num_edges"] / stats["num_nodes"] for name, stats in rows.items()}
    assert density["chengdu"] >= density["aalborg"]
