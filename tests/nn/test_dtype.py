"""Tests for the configurable autograd dtype (training fast-path knob)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestDefaultDtype:
    def test_default_is_float64(self):
        assert nn.get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_set_default_dtype_round_trip(self):
        previous = nn.set_default_dtype("float32")
        try:
            assert previous == np.float64
            assert nn.get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).dtype == np.float32
        finally:
            nn.set_default_dtype(previous)
        assert nn.get_default_dtype() == np.float64

    def test_context_manager_restores_on_exit(self):
        with nn.default_dtype(np.float32):
            assert nn.get_default_dtype() == np.float32
        assert nn.get_default_dtype() == np.float64

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with nn.default_dtype("float32"):
                raise RuntimeError("boom")
        assert nn.get_default_dtype() == np.float64

    def test_rejects_unsupported_dtypes(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            nn.default_dtype("float16")


class TestPerTensorDtype:
    def test_explicit_dtype_argument(self):
        assert Tensor([1.0], dtype=np.float32).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float32), dtype="float64").dtype == np.float64

    def test_float_arrays_keep_their_dtype(self):
        """float32 arrays survive wrapping even under a float64 default."""
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float64

    def test_integer_input_cast_to_default(self):
        assert Tensor(np.arange(3)).dtype == np.float64
        with nn.default_dtype("float32"):
            assert Tensor(np.arange(3)).dtype == np.float32

    def test_astype_is_differentiable(self):
        x = Tensor(np.ones(4, dtype=np.float64), requires_grad=True)
        y = x.astype(np.float32)
        assert y.dtype == np.float32
        (y * 2.0).sum().backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, 2.0 * np.ones(4))

    def test_astype_same_dtype_is_identity(self):
        x = Tensor(np.ones(3))
        assert x.astype(np.float64) is x


class TestFloat32Graphs:
    def test_ops_and_gradients_stay_float32(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32),
                   requires_grad=True)
        out = ((x * 2.0 + 1.0).tanh() @ Tensor(np.ones((4, 2), dtype=np.float32))).sum()
        assert out.dtype == np.float32
        out.backward()
        assert x.grad.dtype == np.float32

    def test_scalar_constants_do_not_upcast(self):
        """Python-scalar operands adopt the tensor's dtype, even when the
        global default dtype differs."""
        x = Tensor(np.ones(3, dtype=np.float32))
        assert (x * 0.5).dtype == np.float32
        assert (x + 1.0).dtype == np.float32
        assert (1.0 - x).dtype == np.float32
        assert (x / 2.0).dtype == np.float32
        assert x.mean().dtype == np.float32

    def test_full_reduction_keeps_dtype(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32))
        assert x.sum().dtype == np.float32
        assert x.max().dtype == np.float32

    def test_parameters_follow_default_dtype(self):
        with nn.default_dtype("float32"):
            layer = nn.Linear(4, 2)
            norm = nn.LayerNorm(4)
        assert all(p.dtype == np.float32 for p in layer.parameters())
        assert all(p.dtype == np.float32 for p in norm.parameters())
        out = layer(np.ones((5, 4), dtype=np.float32))
        assert out.dtype == np.float32

    def test_load_state_dict_preserves_parameter_dtype(self):
        with nn.default_dtype("float32"):
            layer = nn.Linear(3, 3)
        state = {name: value.astype(np.float64)
                 for name, value in layer.state_dict().items()}
        layer.load_state_dict(state)
        assert all(p.dtype == np.float32 for p in layer.parameters())

    def test_backward_seed_gradient_cast_to_tensor_dtype(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        (x * 3.0).backward(np.ones((2, 2)))  # float64 seed
        assert x.grad.dtype == np.float32
