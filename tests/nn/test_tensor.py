"""Tests for the autograd engine: gradients checked against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, no_grad


def numerical_gradient(func, value, eps=1e-6):
    """Central finite-difference gradient of a scalar function of an array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = func(value)
        flat[index] = original - eps
        lower = func(value)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(build_scalar, shape, seed=0, tol=1e-4):
    """Compare autograd and numerical gradients for a scalar-valued graph."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape)

    tensor = Tensor(value.copy(), requires_grad=True)
    output = build_scalar(tensor)
    output.backward()
    analytic = tensor.grad

    numeric = numerical_gradient(lambda v: float(build_scalar(Tensor(v)).data), value)
    assert analytic is not None
    np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


class TestBasicOps:
    def test_add_forward(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_scalar_add_and_radd(self):
        out = 1.0 + Tensor([1.0, 2.0]) + 2.0
        np.testing.assert_allclose(out.data, [4.0, 5.0])

    def test_sub_and_rsub(self):
        out = 10.0 - Tensor([1.0, 2.0])
        np.testing.assert_allclose(out.data, [9.0, 8.0])

    def test_mul_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose((a * b).data, [[1, 2, 3], [1, 2, 3]])

    def test_div(self):
        out = Tensor([2.0, 4.0]) / Tensor([2.0, 2.0])
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose((a @ b).data, a.data)

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestGradients:
    def test_add_gradient(self):
        check_gradient(lambda t: (t + t * 2.0).sum(), (3, 4))

    def test_sub_gradient(self):
        check_gradient(lambda t: (t - t * 0.5).sum(), (2, 5))

    def test_mul_gradient(self):
        check_gradient(lambda t: (t * t).sum(), (4,))

    def test_div_gradient(self):
        check_gradient(lambda t: (t / (t * t + 2.0)).sum(), (3, 3))

    def test_matmul_gradient(self):
        fixed = np.random.default_rng(1).normal(size=(4, 2))
        check_gradient(lambda t: (t @ Tensor(fixed)).sum(), (3, 4))

    def test_exp_gradient(self):
        check_gradient(lambda t: t.exp().sum(), (3,))

    def test_log_gradient(self):
        check_gradient(lambda t: (t * t + 1.0).log().sum(), (4,))

    def test_tanh_gradient(self):
        check_gradient(lambda t: t.tanh().sum(), (5,))

    def test_sigmoid_gradient(self):
        check_gradient(lambda t: t.sigmoid().sum(), (5,))

    def test_relu_gradient(self):
        # Shift away from 0 to keep the function differentiable at test points.
        check_gradient(lambda t: (t + 5.0).relu().sum(), (6,))

    def test_sum_axis_gradient(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda t: (t.mean(axis=1) ** 2).sum(), (3, 4))

    def test_max_gradient(self):
        rng = np.random.default_rng(3)
        value = rng.normal(size=(4, 5))
        tensor = Tensor(value, requires_grad=True)
        out = tensor.max(axis=1).sum()
        out.backward()
        # Gradient is 1 at each row's argmax, 0 elsewhere.
        expected = np.zeros_like(value)
        expected[np.arange(4), value.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(tensor.grad, expected)

    def test_getitem_gradient(self):
        check_gradient(lambda t: (t[1:, :2] ** 2).sum(), (3, 4))

    def test_fancy_index_gradient(self):
        rows = np.array([0, 0, 2])
        check_gradient(lambda t: (t[rows] ** 2).sum(), (3, 4))

    def test_reshape_gradient(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), (2, 3))

    def test_transpose_gradient(self):
        check_gradient(lambda t: (t.transpose() @ Tensor(np.ones((2, 1)))).sum(), (2, 3))

    def test_concatenate_gradient(self):
        def build(t):
            return Tensor.concatenate([t, t * 2.0], axis=1).sum()
        check_gradient(build, (2, 3))

    def test_stack_gradient(self):
        def build(t):
            return (Tensor.stack([t, t * 3.0], axis=0) ** 2).sum()
        check_gradient(build, (2, 2))

    def test_broadcast_add_gradient(self):
        fixed = np.random.default_rng(2).normal(size=(4, 3))
        check_gradient(lambda t: (Tensor(fixed) + t).sum(), (3,))

    def test_clip_gradient_inside_range(self):
        check_gradient(lambda t: (t.clip(-100.0, 100.0) * 2.0).sum(), (4,))


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_gradient_accumulates_over_multiple_uses(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = (t * 2.0 + t * 3.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [5.0, 5.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_detach_cuts_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        detached = t.detach()
        assert not detached.requires_grad

    def test_no_grad_context(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_no_grad_nesting_restores_state(self):
        with no_grad():
            with no_grad():
                pass
            t = Tensor([1.0], requires_grad=True)
            assert not (t * 1.0).requires_grad
        t = Tensor([1.0], requires_grad=True)
        assert (t * 1.0).requires_grad

    def test_diamond_graph_gradient(self):
        # f(x) = (x*2) * (x*3) = 6x^2 -> df/dx = 12x
        t = Tensor([2.0], requires_grad=True)
        left = t * 2.0
        right = t * 3.0
        (left * right).sum().backward()
        np.testing.assert_allclose(t.grad, [24.0])

    def test_item_and_shape_helpers(self):
        t = Tensor([[1.0, 2.0]])
        assert t.shape == (1, 2)
        assert t.ndim == 2
        assert t.size == 2
        assert Tensor(3.5).item() == pytest.approx(3.5)
        assert len(Tensor([1.0, 2.0, 3.0])) == 3
