"""Tests for LSTM / GRU recurrent layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLSTMCell:
    def test_step_shapes(self):
        cell = nn.LSTMCell(5, 7, rng=np.random.default_rng(0))
        h, c = cell.initial_state(batch_size=3)
        h_new, c_new = cell(nn.Tensor(np.ones((3, 5))), (h, c))
        assert h_new.shape == (3, 7)
        assert c_new.shape == (3, 7)

    def test_state_changes_with_input(self, rng):
        cell = nn.LSTMCell(4, 4, rng=np.random.default_rng(0))
        state = cell.initial_state(2)
        h1, _ = cell(nn.Tensor(rng.normal(size=(2, 4))), state)
        h2, _ = cell(nn.Tensor(rng.normal(size=(2, 4))), state)
        assert not np.allclose(h1.data, h2.data)


class TestLSTM:
    def test_output_shapes(self, rng):
        lstm = nn.LSTM(input_size=6, hidden_size=8, num_layers=2, rng=np.random.default_rng(0))
        x = nn.Tensor(rng.normal(size=(3, 5, 6)))
        outputs, final = lstm(x)
        assert outputs.shape == (3, 5, 8)
        assert final.shape == (3, 8)

    def test_mask_freezes_state_on_padding(self, rng):
        lstm = nn.LSTM(input_size=3, hidden_size=4, rng=np.random.default_rng(0))
        x = rng.normal(size=(1, 4, 3))
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])
        outputs, _ = lstm(nn.Tensor(x), mask=mask)
        # Hidden state on padded steps equals the last valid hidden state.
        np.testing.assert_allclose(outputs.data[0, 2], outputs.data[0, 1])
        np.testing.assert_allclose(outputs.data[0, 3], outputs.data[0, 1])

    def test_variable_length_equivalence(self, rng):
        """A short sequence padded inside a batch gives the same final state
        as running it alone."""
        lstm = nn.LSTM(input_size=3, hidden_size=5, rng=np.random.default_rng(0))
        short = rng.normal(size=(1, 2, 3))
        padded = np.concatenate([short, np.zeros((1, 2, 3))], axis=1)
        mask = np.array([[1.0, 1.0, 0.0, 0.0]])

        alone_outputs, alone_final = lstm(nn.Tensor(short))
        padded_outputs, padded_final = lstm(nn.Tensor(padded), mask=mask)
        np.testing.assert_allclose(alone_final.data, padded_final.data, atol=1e-10)

    def test_gradients_reach_parameters(self, rng):
        lstm = nn.LSTM(input_size=2, hidden_size=3, rng=np.random.default_rng(0))
        x = nn.Tensor(rng.normal(size=(2, 4, 2)))
        outputs, final = lstm(x)
        final.sum().backward()
        grads = [p.grad for p in lstm.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            nn.LSTM(4, 4, num_layers=0)


class TestGRU:
    def test_output_shapes(self, rng):
        gru = nn.GRU(input_size=4, hidden_size=6, rng=np.random.default_rng(0))
        outputs, final = gru(nn.Tensor(rng.normal(size=(2, 3, 4))))
        assert outputs.shape == (2, 3, 6)
        assert final.shape == (2, 6)

    def test_mask_freezes_state(self, rng):
        gru = nn.GRU(input_size=3, hidden_size=4, rng=np.random.default_rng(0))
        x = rng.normal(size=(1, 3, 3))
        mask = np.array([[1.0, 0.0, 0.0]])
        outputs, final = gru(nn.Tensor(x), mask=mask)
        np.testing.assert_allclose(outputs.data[0, 2], outputs.data[0, 0])
        np.testing.assert_allclose(final.data[0], outputs.data[0, 0])

    def test_gradients_flow(self, rng):
        gru = nn.GRU(input_size=2, hidden_size=3, rng=np.random.default_rng(0))
        outputs, final = gru(nn.Tensor(rng.normal(size=(2, 3, 2))))
        final.sum().backward()
        assert all(p.grad is not None for p in gru.parameters())
