"""Tests for feed-forward layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_matches_manual_affine(self, rng):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(1))
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(nn.Tensor(x)).data, expected)

    def test_no_bias_option(self):
        layer = nn.Linear(4, 2, bias=False, rng=np.random.default_rng(0))
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_three_dimensional_input(self, rng):
        layer = nn.Linear(6, 2, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 2)

    def test_gradients_flow_to_weights(self):
        layer = nn.Linear(3, 1, rng=np.random.default_rng(0))
        out = layer(nn.Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [4.0])


class TestEmbedding:
    def test_lookup_shape(self):
        table = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        out = table(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_lookup_values_match_rows(self):
        table = nn.Embedding(5, 3, rng=np.random.default_rng(0))
        out = table(np.array([2]))
        np.testing.assert_allclose(out.data[0], table.weight.data[2])

    def test_out_of_range_raises(self):
        table = nn.Embedding(5, 3)
        with pytest.raises(IndexError):
            table(np.array([7]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_gradient_accumulates_for_repeated_indices(self):
        table = nn.Embedding(4, 2, rng=np.random.default_rng(0))
        out = table(np.array([1, 1, 1])).sum()
        out.backward()
        np.testing.assert_allclose(table.weight.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(table.weight.grad[0], [0.0, 0.0])


class TestActivationsAndDropout:
    def test_relu_layer(self):
        out = nn.ReLU()(nn.Tensor([-1.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_tanh_layer_range(self, rng):
        out = nn.Tanh()(nn.Tensor(rng.normal(size=(10,)) * 5))
        assert (np.abs(out.data) <= 1.0).all()

    def test_sigmoid_layer_range(self, rng):
        out = nn.Sigmoid()(nn.Tensor(rng.normal(size=(10,)) * 5))
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_dropout_eval_mode_is_identity(self, rng):
        layer = nn.Dropout(0.9)
        layer.eval()
        x = rng.normal(size=(5, 5))
        np.testing.assert_allclose(layer(nn.Tensor(x)).data, x)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestLayerNorm:
    def test_output_is_normalised(self, rng):
        layer = nn.LayerNorm(8)
        out = layer(nn.Tensor(rng.normal(size=(4, 8)) * 3 + 2))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_has_trainable_scale_and_shift(self):
        layer = nn.LayerNorm(4)
        assert len(list(layer.parameters())) == 2
