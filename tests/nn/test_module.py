"""Tests for Module / Parameter / Sequential."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TwoLayer(nn.Module):
    def __init__(self):
        super().__init__()
        self.first = nn.Linear(4, 8, rng=np.random.default_rng(0))
        self.second = nn.Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.second(self.first(x).relu())


class TestParameterRegistration:
    def test_parameters_are_collected_recursively(self):
        model = TwoLayer()
        params = list(model.parameters())
        # 2 weights + 2 biases
        assert len(params) == 4

    def test_named_parameters_have_dotted_paths(self):
        model = TwoLayer()
        names = dict(model.named_parameters()).keys()
        assert "first.weight" in names
        assert "second.bias" in names

    def test_num_parameters(self):
        model = nn.Linear(3, 5, rng=np.random.default_rng(0))
        assert model.num_parameters() == 3 * 5 + 5

    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        out = model(nn.Tensor(np.ones((2, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestTrainEval:
    def test_train_flag_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5), nn.Linear(2, 1))
        model.eval()
        assert all(not layer.training for layer in model)
        model.train()
        assert all(layer.training for layer in model)


class TestStateDict:
    def test_round_trip(self):
        model_a = TwoLayer()
        model_b = TwoLayer()
        # Make them differ first.
        for p in model_b.parameters():
            p.data = p.data + 1.0
        model_b.load_state_dict(model_a.state_dict())
        for (name_a, pa), (name_b, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][:] = 0.0
        assert not np.allclose(next(model.parameters()).data, 0.0)

    def test_missing_key_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["first.weight"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_clone_is_independent(self):
        model = TwoLayer()
        duplicate = model.clone()
        for p in duplicate.parameters():
            p.data = p.data + 5.0
        original = next(model.parameters()).data
        cloned = next(duplicate.parameters()).data
        assert not np.allclose(original, cloned)


class TestSequential:
    def test_applies_layers_in_order(self):
        model = nn.Sequential(nn.Linear(3, 4, rng=np.random.default_rng(0)), nn.ReLU())
        out = model(nn.Tensor(np.ones((2, 3))))
        assert out.shape == (2, 4)
        assert (out.data >= 0).all()

    def test_len_and_iter(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh(), nn.Sigmoid())
        assert len(model) == 3
        assert len(list(model)) == 3
