"""Tests for SGD / Adam optimisers and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


def quadratic_loss(parameter):
    """Simple convex objective ||p - 3||^2."""
    diff = parameter - 3.0
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        p = nn.Parameter(np.array([1.0]))
        optimizer = nn.SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        optimizer.step()
        # grad = 2*(1-3) = -4 -> p = 1 - 0.1*(-4) = 1.4
        np.testing.assert_allclose(p.data, [1.4])

    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.array([10.0, -5.0]))
        optimizer = nn.SGD([p], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(p).backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, [3.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        plain = nn.Parameter(np.array([10.0]))
        momentum = nn.Parameter(np.array([10.0]))
        opt_plain = nn.SGD([plain], lr=0.01)
        opt_momentum = nn.SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            for p, optimizer in ((plain, opt_plain), (momentum, opt_momentum)):
                optimizer.zero_grad()
                quadratic_loss(p).backward()
                optimizer.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks_parameters(self):
        p = nn.Parameter(np.array([1.0]))
        optimizer = nn.SGD([p], lr=0.1, weight_decay=0.5)
        # Zero-gradient step: only weight decay acts.
        p.grad = np.array([0.0])
        optimizer.step()
        assert p.data[0] < 1.0

    def test_rejects_empty_parameter_list(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_rejects_non_positive_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([nn.Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = nn.Parameter(np.array([10.0, -8.0]))
        optimizer = nn.Adam([p], lr=0.1)
        for _ in range(500):
            optimizer.zero_grad()
            quadratic_loss(p).backward()
            optimizer.step()
        np.testing.assert_allclose(p.data, [3.0, 3.0], atol=1e-2)

    def test_skips_parameters_without_grad(self):
        p = nn.Parameter(np.array([1.0]))
        q = nn.Parameter(np.array([2.0]))
        optimizer = nn.Adam([p, q], lr=0.1)
        p.grad = np.array([1.0])
        optimizer.step()
        np.testing.assert_allclose(q.data, [2.0])
        assert p.data[0] != 1.0

    def test_trains_a_linear_model(self, rng):
        """Adam should fit a small least-squares problem."""
        true_weights = np.array([2.0, -1.0, 0.5])
        x = rng.normal(size=(64, 3))
        y = x @ true_weights
        layer = nn.Linear(3, 1, rng=np.random.default_rng(0))
        optimizer = nn.Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            prediction = layer(nn.Tensor(x)).reshape(-1)
            loss = nn.functional.mse_loss(prediction, nn.Tensor(y))
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data.reshape(-1), true_weights, atol=0.05)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm_before = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm_before == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients_untouched(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        nn.clip_grad_norm([p], max_norm=5.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])

    def test_handles_missing_gradients(self):
        p = nn.Parameter(np.zeros(2))
        assert nn.clip_grad_norm([p], max_norm=1.0) == 0.0
