"""Tests for repro.nn.functional."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 7)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_invariant_to_constant_shift(self, rng):
        x = rng.normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_handles_large_values(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(2, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10)


class TestLogSumExp:
    def test_matches_scipy_definition(self, rng):
        x = rng.normal(size=(5,))
        expected = np.log(np.exp(x).sum())
        assert float(F.logsumexp(Tensor(x)).data) == pytest.approx(expected)

    def test_stable_for_large_inputs(self):
        value = float(F.logsumexp(Tensor([1000.0, 1000.0])).data)
        assert value == pytest.approx(1000.0 + np.log(2.0))

    def test_gradient_is_softmax(self):
        x = Tensor(np.array([0.5, 1.5, -0.3]), requires_grad=True)
        F.logsumexp(x).backward()
        np.testing.assert_allclose(x.grad, F.softmax(Tensor(x.data)).data, atol=1e-10)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = Tensor([[1.0, 2.0, 3.0]])
        assert float(F.cosine_similarity(v, v).data[0]) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        a = Tensor([[1.0, 0.0]])
        b = Tensor([[0.0, 1.0]])
        assert float(F.cosine_similarity(a, b).data[0]) == pytest.approx(0.0, abs=1e-9)

    def test_opposite_vectors(self):
        a = Tensor([[1.0, 1.0]])
        b = Tensor([[-1.0, -1.0]])
        assert float(F.cosine_similarity(a, b).data[0]) == pytest.approx(-1.0)

    def test_scale_invariance(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(3, 4))
        s1 = F.cosine_similarity(Tensor(a), Tensor(b)).data
        s2 = F.cosine_similarity(Tensor(a * 10.0), Tensor(b * 0.01)).data
        np.testing.assert_allclose(s1, s2, atol=1e-9)

    def test_normalize_produces_unit_vectors(self, rng):
        x = Tensor(rng.normal(size=(6, 5)))
        norms = np.linalg.norm(F.normalize(x).data, axis=-1)
        np.testing.assert_allclose(norms, np.ones(6), atol=1e-9)


class TestLosses:
    def test_mse_zero_for_equal_inputs(self):
        x = Tensor([1.0, 2.0, 3.0])
        assert float(F.mse_loss(x, Tensor(x.data.copy())).data) == pytest.approx(0.0)

    def test_mse_value(self):
        loss = F.mse_loss(Tensor([2.0, 2.0]), Tensor([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(4.0)

    def test_mae_value(self):
        loss = F.mae_loss(Tensor([3.0, -1.0]), Tensor([0.0, 0.0]))
        assert float(loss.data) == pytest.approx(2.0, rel=1e-5)

    def test_bce_with_logits_matches_manual(self):
        logits = np.array([0.3, -1.2, 2.0])
        targets = np.array([1.0, 0.0, 1.0])
        probs = 1.0 / (1.0 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probs) + (1 - targets) * np.log(1 - probs))
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), Tensor(targets))
        assert float(loss.data) == pytest.approx(expected, rel=1e-6)

    def test_bce_stable_for_extreme_logits(self):
        loss = F.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(float(loss.data))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_prefers_correct_class(self):
        good = F.cross_entropy(Tensor([[10.0, 0.0], [0.0, 10.0]]), [0, 1])
        bad = F.cross_entropy(Tensor([[10.0, 0.0], [0.0, 10.0]]), [1, 0])
        assert float(good.data) < float(bad.data)

    def test_losses_are_differentiable(self):
        prediction = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        F.mse_loss(prediction, Tensor([0.0, 0.0])).backward()
        assert prediction.grad is not None
        np.testing.assert_allclose(prediction.grad, [1.0, 2.0])


class TestDropout:
    def test_identity_when_not_training(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = F.dropout(x, rate=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_identity_when_rate_zero(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, rate=0.0, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_preserves_expectation(self, rng):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, rate=0.3, training=True, rng=rng)
        assert float(out.data.mean()) == pytest.approx(1.0, abs=0.1)

    def test_zeroes_some_entries(self, rng):
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, rate=0.5, training=True, rng=rng)
        assert (out.data == 0.0).sum() > 300


class TestMaskedSoftmax:
    def test_matches_softmax_when_no_bias(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(F.masked_softmax(x).data,
                                   F.softmax(x, axis=-1).data, atol=1e-12)

    def test_matches_softmax_of_biased_scores(self, rng):
        x = rng.normal(size=(2, 4, 4))
        bias = np.where(rng.random((2, 1, 4)) > 0.4, 0.0, -1e9)
        fused = F.masked_softmax(Tensor(x), mask_bias=bias)
        unfused = F.softmax(Tensor(x) + Tensor(bias), axis=-1)
        np.testing.assert_allclose(fused.data, unfused.data, atol=1e-12)

    def test_masked_positions_get_zero_weight(self, rng):
        x = Tensor(rng.normal(size=(1, 4)))
        bias = np.array([[0.0, 0.0, -1e9, -1e9]])
        out = F.masked_softmax(x, mask_bias=bias)
        np.testing.assert_allclose(out.data[0, 2:], 0.0)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0)

    def test_gradient_matches_composed_softmax(self, rng):
        x_data = rng.normal(size=(2, 3, 3))
        bias = np.where(rng.random((2, 1, 3)) > 0.3, 0.0, -1e9)

        fused_in = Tensor(x_data, requires_grad=True)
        (F.masked_softmax(fused_in, mask_bias=bias) * 3.0).sum().backward()
        composed_in = Tensor(x_data, requires_grad=True)
        (F.softmax(composed_in + Tensor(bias), axis=-1) * 3.0).sum().backward()
        np.testing.assert_allclose(fused_in.grad, composed_in.grad, atol=1e-9)

    def test_masked_positions_receive_zero_gradient(self, rng):
        x = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        bias = np.array([[0.0, 0.0, -1e9, -1e9]])
        (F.masked_softmax(x, mask_bias=bias)[0, :2]).sum().backward()
        np.testing.assert_allclose(x.grad[0, 2:], 0.0)

    def test_records_single_graph_node(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        out = F.masked_softmax(x, mask_bias=np.zeros((2, 3)))
        assert out._parents == (x,)
