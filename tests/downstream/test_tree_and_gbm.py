"""Tests for the decision tree and gradient boosting models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.downstream import (
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)


def regression_problem(rng, samples=200, noise=0.1):
    x = rng.uniform(-2, 2, size=(samples, 3))
    y = np.where(x[:, 0] > 0, 2.0, -1.0) + 0.5 * x[:, 1] + rng.normal(0, noise, samples)
    return x, y


class TestDecisionTree:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_fit_requires_2d_features(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones(5), np.ones(5))

    def test_fit_requires_aligned_lengths(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((5, 2)), np.ones(4))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_constant_target_gives_constant_prediction(self):
        x = np.random.default_rng(0).normal(size=(30, 4))
        y = np.full(30, 7.0)
        tree = DecisionTreeRegressor().fit(x, y)
        np.testing.assert_allclose(tree.predict(x), 7.0)

    def test_learns_simple_threshold(self, rng):
        x, y = regression_problem(rng, noise=0.0)
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=2).fit(x, y)
        predictions = tree.predict(x)
        # A depth-3 tree should explain most of the step function.
        residual = np.abs(predictions - y).mean()
        assert residual < 0.5

    def test_depth_one_uses_single_split(self, rng):
        x, y = regression_problem(rng, noise=0.0)
        stump = DecisionTreeRegressor(max_depth=1, min_samples_leaf=2).fit(x, y)
        assert len(np.unique(stump.predict(x))) <= 2

    def test_deeper_tree_fits_better(self, rng):
        x, y = regression_problem(rng)
        shallow = DecisionTreeRegressor(max_depth=1).fit(x, y).predict(x)
        deep = DecisionTreeRegressor(max_depth=5).fit(x, y).predict(x)
        assert np.abs(deep - y).mean() <= np.abs(shallow - y).mean()

    def test_engine_parameter_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(impl="numba")
        with pytest.raises(ValueError):
            DecisionTreeRegressor(binning="kmeans")
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_bins=1)
        # The loop oracle has no histogram path; don't silently run exact.
        with pytest.raises(ValueError):
            DecisionTreeRegressor(impl="reference", binning="histogram")
        with pytest.raises(ValueError):
            GradientBoostingRegressor(impl="reference", binning="histogram")

    def test_thresholds_are_deduplicated(self):
        # Regression: midpoints of near-adjacent unique values can round
        # onto each other in float arithmetic, so the same candidate
        # threshold was scanned twice per node.
        tree = DecisionTreeRegressor(max_thresholds=16)
        base = 1.0
        ulps = [base]
        for _ in range(6):
            ulps.append(np.nextafter(ulps[-1], 2.0))
        column = np.array(ulps + [2.0, 3.0])
        thresholds = tree._thresholds(column)
        assert thresholds is not None
        assert len(thresholds) == len(np.unique(thresholds))
        assert (np.diff(thresholds) > 0).all()
        # A column wide enough to trigger linspace subsampling still dedupes.
        wide = np.arange(40.0)
        thresholds = tree._thresholds(wide)
        assert len(thresholds) <= 16
        assert len(thresholds) == len(np.unique(thresholds))

    def test_histogram_binning_learns_step_function(self, rng):
        x, y = regression_problem(rng, samples=500, noise=0.0)
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=2,
                                     binning="histogram").fit(x, y)
        assert np.abs(tree.predict(x) - y).mean() < 0.5

    def test_reference_impl_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor(impl="reference").predict(np.ones((2, 2)))


class TestGradientBoostingRegressor:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_boosting_improves_over_single_tree(self, rng):
        x, y = regression_problem(rng)
        single = DecisionTreeRegressor(max_depth=2).fit(x, y).predict(x)
        boosted = GradientBoostingRegressor(n_estimators=40, max_depth=2,
                                            seed=0).fit(x, y).predict(x)
        assert np.abs(boosted - y).mean() < np.abs(single - y).mean()

    def test_more_estimators_fit_training_data_better(self, rng):
        x, y = regression_problem(rng)
        few = GradientBoostingRegressor(n_estimators=5, seed=0).fit(x, y).predict(x)
        many = GradientBoostingRegressor(n_estimators=60, seed=0).fit(x, y).predict(x)
        assert np.abs(many - y).mean() < np.abs(few - y).mean()

    def test_generalises_to_held_out_data(self, rng):
        x, y = regression_problem(rng, samples=400, noise=0.05)
        model = GradientBoostingRegressor(n_estimators=50, seed=0).fit(x[:300], y[:300])
        test_error = np.abs(model.predict(x[300:]) - y[300:]).mean()
        baseline_error = np.abs(y[300:] - y[:300].mean()).mean()
        assert test_error < baseline_error * 0.6

    def test_subsample_still_learns(self, rng):
        x, y = regression_problem(rng)
        model = GradientBoostingRegressor(n_estimators=40, subsample=0.5, seed=0).fit(x, y)
        assert np.abs(model.predict(x) - y).mean() < 1.0


class TestGradientBoostingClassifier:
    def classification_problem(self, rng, samples=300):
        x = rng.normal(size=(samples, 4))
        labels = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
        return x, labels

    def test_rejects_non_binary_labels(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(x, np.arange(10))

    def test_probabilities_in_unit_interval(self, rng):
        x, y = self.classification_problem(rng)
        model = GradientBoostingClassifier(n_estimators=20, seed=0).fit(x, y)
        probabilities = model.predict_proba(x)
        assert ((probabilities >= 0) & (probabilities <= 1)).all()

    def test_accuracy_beats_chance(self, rng):
        x, y = self.classification_problem(rng)
        model = GradientBoostingClassifier(n_estimators=40, seed=0).fit(x[:200], y[:200])
        predictions = model.predict(x[200:])
        accuracy = (predictions == y[200:]).mean()
        assert accuracy > 0.8

    def test_predict_threshold(self, rng):
        x, y = self.classification_problem(rng)
        model = GradientBoostingClassifier(n_estimators=10, seed=0).fit(x, y)
        strict = model.predict(x, threshold=0.9).sum()
        lenient = model.predict(x, threshold=0.1).sum()
        assert lenient >= strict
