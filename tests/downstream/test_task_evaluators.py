"""Tests for the downstream task evaluators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.downstream import (
    evaluate_all_tasks,
    evaluate_ranking,
    evaluate_recommendation,
    evaluate_travel_time,
)


class LengthModel:
    """A deterministic stand-in representation model: encodes path length,
    departure hour and total edge count — enough signal for the GBR to learn
    travel time reasonably well on the synthetic data."""

    def __init__(self, network):
        self.network = network

    def encode(self, temporal_paths):
        rows = []
        for tp in temporal_paths:
            length = self.network.path_length(list(tp.path))
            rows.append([
                length,
                len(tp),
                tp.departure_time.hour,
                float(tp.departure_time.is_weekday),
            ])
        return np.asarray(rows)


class RandomModel:
    """Pure-noise representations (no information about the path).

    Each path maps to a fixed random vector (seeded by the path identity), so
    the model is a pure function as the serving layer's cache contract
    requires, while still carrying no signal a GBR could generalise from.
    """

    def __init__(self, dim=4, seed=0):
        self.dim = dim
        self.seed = seed

    def encode(self, temporal_paths):
        rows = []
        for tp in temporal_paths:
            key = hash((self.seed, tp.path, tp.departure_time.slot_index))
            rng = np.random.default_rng(key % (2 ** 32))
            rows.append(rng.normal(size=self.dim))
        return np.asarray(rows)


class TestEvaluateTravelTime:
    def test_returns_finite_metrics(self, tiny_city):
        model = LengthModel(tiny_city.network)
        result = evaluate_travel_time(model, tiny_city.tasks.travel_time, n_estimators=20)
        assert np.isfinite(result.mae)
        assert np.isfinite(result.mare)
        assert np.isfinite(result.mape)
        assert result.mae > 0

    def test_informative_model_beats_noise(self, tiny_city):
        informative = evaluate_travel_time(
            LengthModel(tiny_city.network), tiny_city.tasks.travel_time, n_estimators=30)
        noise = evaluate_travel_time(
            RandomModel(), tiny_city.tasks.travel_time, n_estimators=30)
        assert informative.mae < noise.mae

    def test_as_row(self, tiny_city):
        result = evaluate_travel_time(
            LengthModel(tiny_city.network), tiny_city.tasks.travel_time, n_estimators=5)
        row = result.as_row()
        assert set(row) == {"MAE", "MARE", "MAPE"}


class TestEvaluateRanking:
    def test_returns_metrics_in_valid_ranges(self, tiny_city):
        result = evaluate_ranking(
            LengthModel(tiny_city.network), tiny_city.tasks.ranking, n_estimators=20)
        assert result.mae >= 0
        assert -1.0 <= result.kendall_tau <= 1.0
        assert -1.0 <= result.spearman_rho <= 1.0

    def test_as_row_keys(self, tiny_city):
        result = evaluate_ranking(
            LengthModel(tiny_city.network), tiny_city.tasks.ranking, n_estimators=5)
        assert set(result.as_row()) == {"MAE", "tau", "rho"}


class TestEvaluateRecommendation:
    def test_metrics_within_bounds(self, tiny_city):
        result = evaluate_recommendation(
            LengthModel(tiny_city.network), tiny_city.tasks.recommendation, n_estimators=20)
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.0 <= result.hit_rate <= 1.0


class TestEvaluateAllTasks:
    def test_bundles_all_three(self, tiny_city):
        results = evaluate_all_tasks(
            LengthModel(tiny_city.network), tiny_city.tasks, n_estimators=10)
        assert set(results) == {"travel_time", "ranking", "recommendation"}

    def test_malformed_model_rejected(self, tiny_city):
        class Broken:
            def encode(self, paths):
                return np.zeros((1, 2))   # wrong row count

        with pytest.raises(ValueError):
            evaluate_travel_time(Broken(), tiny_city.tasks.travel_time, n_estimators=5)
