"""Tests for the evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.downstream import (
    accuracy,
    grouped_rank_correlation,
    hit_rate,
    kendall_tau,
    mae,
    mape,
    mare,
    spearman_rho,
)


class TestRegressionMetrics:
    def test_mae(self):
        assert mae([1.0, 2.0, 3.0], [2.0, 2.0, 5.0]) == pytest.approx(1.0)

    def test_mae_zero_for_perfect_predictions(self):
        assert mae([5.0, 10.0], [5.0, 10.0]) == 0.0

    def test_mare(self):
        # sum|err| = 3, sum|truth| = 6 -> 0.5
        assert mare([1.0, 2.0, 3.0], [2.0, 3.0, 4.0]) == pytest.approx(0.5)

    def test_mare_rejects_all_zero_truth(self):
        with pytest.raises(ValueError):
            mare([0.0, 0.0], [1.0, 1.0])

    def test_mape_in_percent(self):
        assert mape([100.0, 200.0], [110.0, 180.0]) == pytest.approx(10.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae([], [])


class TestRankCorrelations:
    def test_kendall_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_kendall_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_kendall_matches_scipy(self, rng):
        truth = rng.normal(size=15)
        prediction = truth + rng.normal(scale=0.5, size=15)
        expected = stats.kendalltau(truth, prediction).correlation
        assert kendall_tau(truth, prediction) == pytest.approx(expected, abs=0.02)

    def test_spearman_perfect_agreement(self):
        assert spearman_rho([1, 2, 3], [5, 6, 7]) == pytest.approx(1.0)

    def test_spearman_matches_scipy(self, rng):
        truth = rng.normal(size=20)
        prediction = truth + rng.normal(scale=0.3, size=20)
        expected = stats.spearmanr(truth, prediction).correlation
        assert spearman_rho(truth, prediction) == pytest.approx(expected, abs=0.02)

    def test_short_inputs_return_zero(self):
        assert kendall_tau([1.0], [1.0]) == 0.0
        assert spearman_rho([1.0], [1.0]) == 0.0

    def test_spearman_tie_handling_is_pearson_on_ranks(self):
        # Regression: the historical 1 - 6*sum(d^2)/(n*(n^2-1)) shortcut is
        # only valid without ties; it returned 0.85 here.  Pearson on the
        # average ranks (scipy's definition) gives 5/6.
        truth = [1, 1, 2, 3]
        prediction = [1, 2, 2, 3]
        expected = stats.spearmanr(truth, prediction).correlation
        assert expected == pytest.approx(5.0 / 6.0)
        assert spearman_rho(truth, prediction) == pytest.approx(expected, abs=1e-12)
        assert spearman_rho(truth, prediction) != pytest.approx(0.85, abs=1e-6)

    def test_spearman_matches_scipy_under_heavy_ties(self, rng):
        truth = rng.integers(0, 3, size=25).astype(float)
        prediction = rng.integers(0, 3, size=25).astype(float)
        expected = stats.spearmanr(truth, prediction).correlation
        assert spearman_rho(truth, prediction) == pytest.approx(expected, abs=1e-12)

    def test_spearman_constant_input_returns_zero(self):
        # Correlation is undefined for constant inputs (scipy returns NaN);
        # the harness convention is 0.0, never NaN.
        assert spearman_rho([2.0, 2.0, 2.0], [1.0, 2.0, 3.0]) == 0.0

    def test_kendall_ties_match_pair_counting(self):
        from repro.downstream.metrics import _reference_kendall_tau

        truth = [1, 1, 2, 3]
        prediction = [1, 2, 2, 3]
        assert kendall_tau(truth, prediction) == \
            _reference_kendall_tau(truth, prediction)

    def test_grouped_rank_correlation_averages_groups(self):
        truth = [1, 2, 3, 3, 2, 1]
        prediction = [1, 2, 3, 1, 2, 3]   # group 0 perfect, group 1 reversed
        groups = [0, 0, 0, 1, 1, 1]
        value = grouped_rank_correlation(truth, prediction, groups, "kendall")
        assert value == pytest.approx(0.0)

    def test_grouped_skips_singleton_groups(self):
        value = grouped_rank_correlation([1, 2, 3], [1, 2, 3], [0, 0, 1], "spearman")
        assert value == pytest.approx(1.0)

    def test_grouped_single_group(self):
        truth = [1.0, 2.0, 3.0, 4.0]
        prediction = [1.0, 3.0, 2.0, 4.0]
        groups = [7, 7, 7, 7]
        assert grouped_rank_correlation(truth, prediction, groups, "kendall") == \
            pytest.approx(kendall_tau(truth, prediction))
        assert grouped_rank_correlation(truth, prediction, groups, "spearman") == \
            pytest.approx(spearman_rho(truth, prediction))

    def test_grouped_tie_heavy_groups(self, rng):
        truth = rng.integers(0, 2, size=40).astype(float)
        prediction = rng.integers(0, 2, size=40).astype(float)
        groups = rng.integers(0, 5, size=40)
        expected = np.mean([
            kendall_tau(truth[groups == g], prediction[groups == g])
            for g in np.unique(groups) if (groups == g).sum() >= 2])
        value = grouped_rank_correlation(truth, prediction, groups, "kendall")
        assert value == pytest.approx(float(expected), abs=1e-12)

    def test_grouped_all_singletons_returns_zero(self):
        assert grouped_rank_correlation([1, 2], [2, 1], [0, 1]) == 0.0

    def test_grouped_rejects_unknown_statistic(self):
        with pytest.raises(ValueError):
            grouped_rank_correlation([1, 2], [1, 2], [0, 0], "pearson")

    def test_grouped_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            grouped_rank_correlation([1, 2, 3], [1, 2, 3], [0, 0])


class TestClassificationMetrics:
    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == pytest.approx(0.75)

    def test_hit_rate_is_positive_recall(self):
        truth = [1, 1, 0, 0, 1]
        prediction = [1, 0, 0, 1, 1]
        assert hit_rate(truth, prediction) == pytest.approx(2 / 3)

    def test_hit_rate_no_positives(self):
        assert hit_rate([0, 0], [1, 0]) == 0.0

    def test_accuracy_rejects_empty(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_accuracy_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1, 0, 1], [1, 0])

    def test_hit_rate_rejects_shape_mismatch(self):
        # Regression: mismatched lengths used to raise an opaque IndexError
        # or silently broadcast instead of the regression metrics' ValueError.
        with pytest.raises(ValueError):
            hit_rate([1, 0, 1], [1, 0])
        with pytest.raises(ValueError):
            hit_rate([1, 0, 1], [1])

    def test_hit_rate_rejects_empty(self):
        with pytest.raises(ValueError):
            hit_rate([], [])
