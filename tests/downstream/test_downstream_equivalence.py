"""Equivalence suites: vectorized downstream engine vs the ``_reference_*`` oracles.

Three layers, matching the engine:

* metrics — vectorized Kendall/ranks/grouped exactly equal the loop oracles;
  Spearman agrees with the no-ties shortcut on tie-free inputs and with
  Pearson-on-ranks everywhere.
* trees — vectorized exact binning reproduces the reference tree bit for
  bit (flattened-vs-node ``predict`` agrees to 1e-12), including the
  ``max_features`` RNG draws; histogram binning stays statistically
  equivalent on task metrics.
* GBM — identical predictions for identical seeds on exact splits, for both
  the regressor and the classifier.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.downstream import (
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)
from repro.downstream.metrics import (
    _ranks,
    _reference_grouped_rank_correlation,
    _reference_kendall_tau,
    _reference_ranks,
    _reference_spearman_rho,
    grouped_rank_correlation,
    kendall_tau,
    spearman_rho,
)

# Tie-heavy by construction: few distinct values over up-to-60 entries.
tied_vectors = st.integers(min_value=2, max_value=60).flatmap(
    lambda n: st.tuples(
        hnp.arrays(dtype=np.float64, shape=n,
                   elements=st.integers(min_value=-4, max_value=4).map(float)),
        hnp.arrays(dtype=np.float64, shape=n,
                   elements=st.integers(min_value=-4, max_value=4).map(float)),
    ))

continuous_vectors = st.integers(min_value=2, max_value=60).flatmap(
    lambda n: st.tuples(
        hnp.arrays(dtype=np.float64, shape=n,
                   elements=st.floats(min_value=-1e3, max_value=1e3,
                                      allow_nan=False, allow_infinity=False)),
        hnp.arrays(dtype=np.float64, shape=n,
                   elements=st.floats(min_value=-1e3, max_value=1e3,
                                      allow_nan=False, allow_infinity=False)),
    ))


class TestMetricEquivalence:
    @given(tied_vectors)
    @settings(max_examples=80, deadline=None)
    def test_kendall_exactly_matches_pair_loop_under_ties(self, pair):
        truth, prediction = pair
        assert kendall_tau(truth, prediction) == _reference_kendall_tau(truth, prediction)

    @given(continuous_vectors)
    @settings(max_examples=60, deadline=None)
    def test_kendall_exactly_matches_pair_loop_continuous(self, pair):
        truth, prediction = pair
        assert kendall_tau(truth, prediction) == _reference_kendall_tau(truth, prediction)

    @given(tied_vectors)
    @settings(max_examples=80, deadline=None)
    def test_ranks_match_rescan_loop(self, pair):
        values, _ = pair
        np.testing.assert_array_equal(_ranks(values), _reference_ranks(values))

    @given(continuous_vectors)
    @settings(max_examples=60, deadline=None)
    def test_spearman_matches_shortcut_when_tie_free(self, pair):
        truth, prediction = pair
        if (len(np.unique(truth)) < len(truth)
                or len(np.unique(prediction)) < len(prediction)):
            return
        assert spearman_rho(truth, prediction) == pytest.approx(
            _reference_spearman_rho(truth, prediction), abs=1e-12)

    @given(tied_vectors)
    @settings(max_examples=80, deadline=None)
    def test_spearman_is_pearson_on_ranks(self, pair):
        truth, prediction = pair
        rank_truth = _ranks(truth)
        rank_prediction = _ranks(prediction)
        centered_t = rank_truth - rank_truth.mean()
        centered_p = rank_prediction - rank_prediction.mean()
        denominator = np.sqrt((centered_t ** 2).sum() * (centered_p ** 2).sum())
        expected = 0.0 if denominator == 0 else float(
            (centered_t * centered_p).sum() / denominator)
        assert spearman_rho(truth, prediction) == pytest.approx(expected, abs=1e-12)

    @given(tied_vectors,
           st.sampled_from(["kendall", "spearman"]))
    @settings(max_examples=60, deadline=None)
    def test_grouped_matches_mask_loop(self, pair, statistic):
        truth, prediction = pair
        rng = np.random.default_rng(len(truth))
        groups = rng.integers(0, max(1, len(truth) // 3), size=len(truth))
        assert grouped_rank_correlation(truth, prediction, groups, statistic) == \
            pytest.approx(_reference_grouped_rank_correlation(
                truth, prediction, groups, statistic), abs=1e-12)


# Feature matrices with deliberate value collisions (rounded normals).
tree_problems = st.tuples(
    st.integers(min_value=12, max_value=120),   # samples
    st.integers(min_value=1, max_value=6),      # features
    st.integers(min_value=1, max_value=5),      # max depth
    st.integers(min_value=1, max_value=5),      # min samples leaf
    st.integers(min_value=2, max_value=20),     # max thresholds
    st.integers(min_value=0, max_value=10_000), # seed
    st.booleans(),                              # restrict max_features
)


def make_problem(num_samples, num_features, seed):
    rng = np.random.default_rng(seed)
    features = np.round(rng.normal(size=(num_samples, num_features)), 1)
    targets = features[:, 0] + rng.normal(scale=0.3, size=num_samples)
    queries = np.round(rng.normal(size=(50, num_features)), 2)
    return features, targets, queries


class TestTreeEquivalence:
    @given(tree_problems)
    @settings(max_examples=60, deadline=None)
    def test_flattened_predict_matches_node_walk_exactly(self, problem):
        samples, features, depth, leaf, thresholds, seed, restrict = problem
        x, y, queries = make_problem(samples, features, seed)
        max_features = max(1, features - 1) if restrict else None
        kwargs = dict(max_depth=depth, min_samples_leaf=leaf,
                      max_thresholds=thresholds, max_features=max_features,
                      seed=seed)
        reference = DecisionTreeRegressor(impl="reference", **kwargs).fit(x, y)
        vectorized = DecisionTreeRegressor(impl="vectorized", **kwargs).fit(x, y)
        for matrix in (x, queries):
            node_walk = reference.predict(matrix)
            flattened = vectorized.predict(matrix)
            np.testing.assert_allclose(flattened, node_walk, atol=1e-12, rtol=0)
            # The exact engine scans the same thresholds: bit-identical.
            np.testing.assert_array_equal(flattened, node_walk)

    def test_histogram_tree_statistically_equivalent(self):
        x, y, _ = make_problem(2000, 5, seed=7)
        exact = DecisionTreeRegressor(max_depth=4, binning="exact").fit(x, y)
        histogram = DecisionTreeRegressor(max_depth=4, binning="histogram").fit(x, y)
        exact_mae = np.abs(exact.predict(x) - y).mean()
        histogram_mae = np.abs(histogram.predict(x) - y).mean()
        assert histogram_mae <= exact_mae * 1.25 + 0.05

    def test_prebinned_fit_matches_self_binned(self):
        from repro.downstream import HistogramBins

        x, y, queries = make_problem(500, 4, seed=3)
        bins = HistogramBins(x)
        self_binned = DecisionTreeRegressor(binning="histogram").fit(x, y)
        prebinned = DecisionTreeRegressor(binning="histogram").fit(x, y, binned=bins)
        np.testing.assert_array_equal(
            self_binned.predict(queries), prebinned.predict(queries))

    def test_prebinned_shape_mismatch_rejected(self):
        from repro.downstream import HistogramBins

        x, y, _ = make_problem(100, 4, seed=3)
        bins = HistogramBins(x[:50])
        with pytest.raises(ValueError):
            DecisionTreeRegressor(binning="histogram").fit(x, y, binned=bins)


gbm_problems = st.tuples(
    st.integers(min_value=30, max_value=150),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=12),     # n_estimators
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from([1.0, 0.7]),                # subsample
)


class TestGBMEquivalence:
    @given(gbm_problems)
    @settings(max_examples=25, deadline=None)
    def test_regressor_identical_predictions_given_identical_seeds(self, problem):
        samples, features, estimators, seed, subsample = problem
        x, y, queries = make_problem(samples, features, seed)
        kwargs = dict(n_estimators=estimators, subsample=subsample, seed=seed)
        reference = GradientBoostingRegressor(impl="reference", **kwargs).fit(x, y)
        vectorized = GradientBoostingRegressor(impl="vectorized", **kwargs).fit(x, y)
        np.testing.assert_array_equal(
            reference.predict(queries), vectorized.predict(queries))

    @given(gbm_problems)
    @settings(max_examples=15, deadline=None)
    def test_classifier_identical_probabilities_given_identical_seeds(self, problem):
        samples, features, estimators, seed, subsample = problem
        x, _, queries = make_problem(samples, features, seed)
        labels = (x[:, 0] > 0).astype(np.int64)
        if len(np.unique(labels)) < 2:
            return
        kwargs = dict(n_estimators=estimators, subsample=subsample, seed=seed)
        reference = GradientBoostingClassifier(impl="reference", **kwargs).fit(x, labels)
        vectorized = GradientBoostingClassifier(impl="vectorized", **kwargs).fit(x, labels)
        np.testing.assert_array_equal(
            reference.predict_proba(queries), vectorized.predict_proba(queries))

    def test_histogram_gbm_statistically_equivalent(self):
        x, y, _ = make_problem(2000, 5, seed=11)
        exact = GradientBoostingRegressor(n_estimators=30, seed=0,
                                          binning="exact").fit(x, y)
        histogram = GradientBoostingRegressor(n_estimators=30, seed=0,
                                              binning="histogram").fit(x, y)
        exact_mae = np.abs(exact.predict(x) - y).mean()
        histogram_mae = np.abs(histogram.predict(x) - y).mean()
        assert histogram_mae <= exact_mae * 1.25 + 0.05


class TestEvaluatorEngineEquivalence:
    class LengthModel:
        """Deterministic stand-in representation model (path-shape features)."""

        def __init__(self, network):
            self.network = network

        def encode(self, temporal_paths):
            rows = []
            for tp in temporal_paths:
                rows.append([
                    self.network.path_length(list(tp.path)),
                    len(tp),
                    tp.departure_time.hour,
                    float(tp.departure_time.is_weekday),
                ])
            return np.asarray(rows)

    def test_travel_time_engine_equivalent(self, tiny_city):
        from repro.downstream import evaluate_travel_time

        model = self.LengthModel(tiny_city.network)
        reference = evaluate_travel_time(
            model, tiny_city.tasks.travel_time, n_estimators=10, impl="reference")
        vectorized = evaluate_travel_time(
            model, tiny_city.tasks.travel_time, n_estimators=10, impl="vectorized")
        assert vectorized.mae == pytest.approx(reference.mae, abs=1e-9)
        assert vectorized.mare == pytest.approx(reference.mare, abs=1e-9)
        assert vectorized.mape == pytest.approx(reference.mape, abs=1e-9)
