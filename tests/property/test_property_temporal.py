"""Property-based tests for time-slot arithmetic and weak labels."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal import (
    TOTAL_SLOTS,
    CongestionIndexLabeler,
    DepartureTime,
    PeakOffPeakLabeler,
)
from repro.trajectory import CongestionProfile


departure_times = st.builds(
    DepartureTime.from_hour,
    st.integers(min_value=0, max_value=6),
    st.floats(min_value=0.0, max_value=23.999, allow_nan=False),
)


@given(departure_times)
@settings(max_examples=100, deadline=None)
def test_slot_index_in_range(departure):
    assert 0 <= departure.slot_index < TOTAL_SLOTS


@given(st.integers(min_value=0, max_value=TOTAL_SLOTS - 1))
@settings(max_examples=100, deadline=None)
def test_slot_index_round_trip(slot_index):
    assert DepartureTime.from_slot_index(slot_index).slot_index == slot_index


@given(departure_times, st.floats(min_value=-7 * 86400, max_value=7 * 86400,
                                  allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_shift_always_produces_valid_time(departure, shift)    :
    shifted = departure.shift(shift)
    assert 0 <= shifted.day_of_week < 7
    assert 0.0 <= shifted.seconds < 86400


@given(departure_times, st.floats(min_value=0, max_value=86400, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_shift_forward_then_back_is_identity(departure, shift):
    round_trip = departure.shift(shift).shift(-shift)
    # Compare in week-seconds with wrap-around tolerance: floating point can
    # land an exact-midnight time a hair before the day boundary.
    week = 7 * 86400
    original = departure.day_of_week * 86400 + departure.seconds
    result = round_trip.day_of_week * 86400 + round_trip.seconds
    difference = abs(original - result) % week
    assert min(difference, week - difference) < 1e-3


@given(departure_times)
@settings(max_examples=100, deadline=None)
def test_pop_labels_always_valid(departure):
    labeler = PeakOffPeakLabeler()
    assert 0 <= labeler(departure) < labeler.num_labels


@given(departure_times)
@settings(max_examples=100, deadline=None)
def test_weekend_never_peak(departure):
    labeler = PeakOffPeakLabeler()
    if not departure.is_weekday:
        assert labeler(departure) == 2


@given(departure_times)
@settings(max_examples=100, deadline=None)
def test_tci_labels_always_valid(departure):
    labeler = CongestionIndexLabeler(CongestionProfile())
    assert 0 <= labeler(departure) < labeler.num_labels


@given(departure_times)
@settings(max_examples=100, deadline=None)
def test_congestion_profile_bounded(departure):
    profile = CongestionProfile()
    assert 0.0 <= profile.level(departure) <= 1.0
