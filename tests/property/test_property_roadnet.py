"""Property-based tests for road-network invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet import (
    CityConfig,
    generate_city_network,
    k_shortest_paths,
    path_similarity,
    shortest_path,
)


city_configs = st.builds(
    CityConfig,
    name=st.just("prop-city"),
    grid_rows=st.integers(min_value=3, max_value=6),
    grid_cols=st.integers(min_value=3, max_value=6),
    arterial_every=st.integers(min_value=2, max_value=4),
    highway_ring=st.booleans(),
    one_way_fraction=st.floats(min_value=0.0, max_value=0.4),
    signal_fraction=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=50),
)


@given(city_configs)
@settings(max_examples=15, deadline=None)
def test_generated_network_edges_reference_valid_nodes(config):
    network = generate_city_network(config)
    for edge in range(network.num_edges):
        source, target = network.edge_endpoints(edge)
        assert 0 <= source < network.num_nodes
        assert 0 <= target < network.num_nodes
        assert source != target
        assert network.edge_length(edge) > 0


@given(city_configs, st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=15, deadline=None)
def test_shortest_path_is_connected_and_reaches_target(config, od_seed):
    network = generate_city_network(config)
    rng = np.random.default_rng(od_seed)
    source = int(rng.integers(0, network.num_nodes))
    target = int(rng.integers(0, network.num_nodes))
    path = shortest_path(network, source, target, edge_cost=network.edge_length)
    if source == target:
        assert path == []
        return
    if path is None:
        return
    assert network.is_connected_path(path)
    nodes = network.path_nodes(path)
    assert nodes[0] == source
    assert nodes[-1] == target


@given(city_configs)
@settings(max_examples=10, deadline=None)
def test_k_shortest_paths_costs_sorted_and_unique(config):
    network = generate_city_network(config)
    source, target = 0, network.num_nodes - 1
    paths = k_shortest_paths(network, source, target, k=3, edge_cost=network.edge_length)
    costs = [sum(network.edge_length(e) for e in p) for p in paths]
    assert costs == sorted(costs)
    assert len({tuple(p) for p in paths}) == len(paths)


@given(city_configs)
@settings(max_examples=10, deadline=None)
def test_path_similarity_is_bounded_symmetric(config):
    network = generate_city_network(config)
    source, target = 0, network.num_nodes - 1
    paths = k_shortest_paths(network, source, target, k=2, edge_cost=network.edge_length)
    if len(paths) < 2:
        return
    a, b = paths[0], paths[1]
    forward = path_similarity(network, a, b)
    backward = path_similarity(network, b, a)
    assert 0.0 <= forward <= 1.0
    assert np.isclose(forward, backward)
    assert path_similarity(network, a, a) == 1.0
