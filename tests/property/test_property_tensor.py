"""Property-based tests for the autograd engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor
from repro.nn import functional as F


finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
    elements=st.floats(min_value=-10.0, max_value=10.0,
                       allow_nan=False, allow_infinity=False),
)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_addition_is_commutative(values):
    a = Tensor(values)
    b = Tensor(values * 0.5 + 1.0)
    np.testing.assert_allclose((a + b).data, (b + a).data)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_multiplication_by_one_is_identity(values):
    tensor = Tensor(values)
    np.testing.assert_allclose((tensor * 1.0).data, values)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_exp_log_round_trip(values):
    tensor = Tensor(values)
    round_trip = tensor.exp().log()
    np.testing.assert_allclose(round_trip.data, values, atol=1e-8)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_sum_of_parts_equals_total(values):
    tensor = Tensor(values)
    total = float(tensor.sum().data)
    assert np.isclose(total, values.sum())


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_softmax_is_a_probability_distribution(values):
    if values.ndim == 1:
        values = values.reshape(1, -1)
    out = F.softmax(Tensor(values), axis=-1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[0]), atol=1e-9)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_gradient_of_sum_is_all_ones(values):
    tensor = Tensor(values, requires_grad=True)
    tensor.sum().backward()
    np.testing.assert_allclose(tensor.grad, np.ones_like(values))


@given(finite_arrays, st.floats(min_value=0.1, max_value=5.0))
@settings(max_examples=50, deadline=None)
def test_scaling_scales_gradient(values, scale):
    tensor = Tensor(values, requires_grad=True)
    (tensor * scale).sum().backward()
    np.testing.assert_allclose(tensor.grad, np.full_like(values, scale))


@given(hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(2, 6), st.integers(2, 6)),
                  elements=st.floats(min_value=-5, max_value=5,
                                     allow_nan=False, allow_infinity=False)))
@settings(max_examples=50, deadline=None)
def test_cosine_similarity_bounded(matrix):
    a = Tensor(matrix)
    b = Tensor(np.roll(matrix, 1, axis=0))
    sims = F.cosine_similarity(a, b).data
    assert (sims <= 1.0 + 1e-9).all()
    assert (sims >= -1.0 - 1e-9).all()
