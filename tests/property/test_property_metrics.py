"""Property-based tests for the downstream metrics."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.downstream import accuracy, hit_rate, kendall_tau, mae, mape, mare, spearman_rho


vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=30),
    elements=st.floats(min_value=-1e3, max_value=1e3,
                       allow_nan=False, allow_infinity=False),
)

positive_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=30),
    elements=st.floats(min_value=1.0, max_value=1e3,
                       allow_nan=False, allow_infinity=False),
)


@given(vectors)
@settings(max_examples=60, deadline=None)
def test_mae_zero_iff_identical(values):
    assert mae(values, values.copy()) == 0.0


@given(positive_vectors, st.floats(min_value=-50, max_value=50, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_mae_nonnegative_and_symmetric(values, shift):
    prediction = values + shift
    assert mae(values, prediction) >= 0.0
    assert np.isclose(mae(values, prediction), mae(prediction, values))


@given(positive_vectors)
@settings(max_examples=60, deadline=None)
def test_mare_and_mape_zero_for_perfect_predictions(values):
    assert mare(values, values.copy()) == 0.0
    assert mape(values, values.copy()) == 0.0


@given(vectors)
@settings(max_examples=60, deadline=None)
def test_rank_correlations_bounded(values):
    noisy = values + np.random.default_rng(0).normal(size=len(values))
    for metric in (kendall_tau, spearman_rho):
        value = metric(values, noisy)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@given(vectors)
@settings(max_examples=60, deadline=None)
def test_rank_correlation_of_identity_is_maximal(values):
    # Strictly increasing transformation preserves ranks exactly.  Ties cap
    # Kendall's tau-a below 1, so only tie-free vectors are checked.
    transformed = values * 3.0 + 7.0
    # Skip inputs where ties exist before or after the transformation (adding
    # 7.0 can absorb sub-epsilon differences).
    if len(np.unique(values)) < len(values) or len(np.unique(transformed)) < len(values):
        return
    assert kendall_tau(values, transformed) == 1.0
    assert np.isclose(spearman_rho(values, transformed), 1.0)


@given(vectors)
@settings(max_examples=60, deadline=None)
def test_negating_predictions_flips_kendall_sign(values):
    if len(np.unique(values)) < 2:
        return
    forward = kendall_tau(values, values)
    backward = kendall_tau(values, -values)
    assert np.isclose(forward, -backward)


@given(hnp.arrays(dtype=np.int64, shape=st.integers(2, 40),
                  elements=st.integers(min_value=0, max_value=1)))
@settings(max_examples=60, deadline=None)
def test_accuracy_and_hit_rate_bounds(labels):
    rng = np.random.default_rng(1)
    predictions = rng.integers(0, 2, size=len(labels))
    assert 0.0 <= accuracy(labels, predictions) <= 1.0
    assert 0.0 <= hit_rate(labels, predictions) <= 1.0
    assert accuracy(labels, labels.copy()) == 1.0
