"""Tests for train/test splitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import grouped_train_test_split, train_test_split


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(list(range(100)), test_fraction=0.2, seed=0)
        assert len(test) == 20
        assert len(train) == 80

    def test_disjoint_and_complete(self):
        items = list(range(50))
        train, test = train_test_split(items, test_fraction=0.3, seed=1)
        assert set(train) | set(test) == set(items)
        assert not set(train) & set(test)

    def test_deterministic_given_seed(self):
        a = train_test_split(list(range(30)), seed=5)
        b = train_test_split(list(range(30)), seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = train_test_split(list(range(100)), seed=1)[1]
        b = train_test_split(list(range(100)), seed=2)[1]
        assert a != b

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], test_fraction=1.0)


class TestGroupedSplit:
    def test_groups_do_not_straddle(self):
        items = list(range(40))
        groups = [i // 4 for i in items]
        train, test = grouped_train_test_split(items, groups, test_fraction=0.25, seed=0)
        train_groups = {i // 4 for i in train}
        test_groups = {i // 4 for i in test}
        assert not train_groups & test_groups

    def test_all_items_preserved(self):
        items = list(range(30))
        groups = [i % 6 for i in items]
        train, test = grouped_train_test_split(items, groups, seed=3)
        assert sorted(train + test) == items

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            grouped_train_test_split([1, 2, 3], [0, 1])
