"""Tests for TemporalPath and TemporalPathDataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import TemporalPath, TemporalPathDataset
from repro.temporal import DepartureTime, PeakOffPeakLabeler


def make_paths(count=10, length=4):
    rng = np.random.default_rng(0)
    paths = []
    for i in range(count):
        edges = rng.integers(0, 20, size=length + (i % 3)).tolist()
        departure = DepartureTime.from_hour(int(rng.integers(0, 7)),
                                            float(rng.uniform(0, 23.9)))
        paths.append(TemporalPath(path=edges, departure_time=departure))
    return paths


class TestTemporalPath:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            TemporalPath(path=[], departure_time=DepartureTime.from_hour(0, 8.0))

    def test_length_and_tuple_conversion(self):
        tp = TemporalPath(path=[3, 4, 5], departure_time=DepartureTime.from_hour(0, 8.0))
        assert len(tp) == 3
        assert tp.num_edges == 3
        assert tp.path == (3, 4, 5)

    def test_hashable_and_frozen(self):
        tp = TemporalPath(path=[1, 2], departure_time=DepartureTime.from_hour(0, 8.0))
        assert tp == TemporalPath(path=[1, 2], departure_time=tp.departure_time)


class TestTemporalPathDataset:
    @pytest.fixture()
    def dataset(self):
        return TemporalPathDataset(make_paths(12), PeakOffPeakLabeler())

    def test_len_getitem_iter(self, dataset):
        assert len(dataset) == 12
        tp, label = dataset[0]
        assert isinstance(label, int)
        assert len(list(dataset)) == 12

    def test_weak_labels_match_labeler(self, dataset):
        labeler = PeakOffPeakLabeler()
        for tp, label in dataset:
            assert label == labeler(tp.departure_time)

    def test_path_lengths(self, dataset):
        lengths = dataset.path_lengths()
        assert lengths.shape == (12,)
        assert (lengths >= 4).all()

    def test_subset_preserves_labeler(self, dataset):
        subset = dataset.subset([0, 2, 4])
        assert len(subset) == 3
        assert subset.weak_labeler is dataset.weak_labeler

    def test_relabel(self, dataset):
        class ConstantLabeler(PeakOffPeakLabeler):
            def label(self, departure_time):
                return 0

        relabeled = dataset.relabel(ConstantLabeler())
        assert set(relabeled.weak_labels.tolist()) == {0}
        assert len(relabeled) == len(dataset)

    def test_label_distribution_sums_to_size(self, dataset):
        distribution = dataset.label_distribution()
        assert sum(distribution.values()) == len(dataset)

    def test_minibatches_cover_dataset(self, dataset):
        rng = np.random.default_rng(0)
        seen = 0
        for batch in dataset.minibatches(4, rng=rng):
            assert 2 <= len(batch) <= 4
            seen += len(batch)
        assert seen == len(dataset)

    def test_minibatch_requires_size_two(self, dataset):
        with pytest.raises(ValueError):
            list(dataset.minibatches(1))

    def test_minibatches_without_shuffle_are_deterministic(self, dataset):
        a = [tp.path for batch in dataset.minibatches(4, shuffle=False) for tp, _ in batch]
        b = [tp.path for batch in dataset.minibatches(4, shuffle=False) for tp, _ in batch]
        assert a == b
