"""Tests for the synthetic city dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DatasetScale, build_city_dataset
from repro.temporal import PeakOffPeakLabeler


class TestDatasetScale:
    def test_presets_increase_in_size(self):
        tiny, small, medium = DatasetScale.tiny(), DatasetScale.small(), DatasetScale.medium()
        assert tiny.num_trips < small.num_trips < medium.num_trips
        assert tiny.grid_rows <= small.grid_rows <= medium.grid_rows


class TestBuildCityDataset:
    def test_unknown_city_rejected(self):
        with pytest.raises(KeyError):
            build_city_dataset("atlantis")

    def test_tiny_city_contents(self, tiny_city):
        assert tiny_city.name == "aalborg"
        assert tiny_city.network.num_nodes > 0
        assert len(tiny_city.trips) == len(tiny_city.unlabeled)
        assert len(tiny_city.tasks.travel_time) <= len(tiny_city.trips)

    def test_paths_live_on_the_network(self, tiny_city):
        for tp in tiny_city.unlabeled.temporal_paths:
            assert max(tp.path) < tiny_city.network.num_edges
            assert tiny_city.network.is_connected_path(list(tp.path))

    def test_weak_label_distribution_nondegenerate(self, tiny_city):
        distribution = tiny_city.unlabeled.label_distribution()
        # The corpus must contain at least peak and off-peak paths for
        # contrastive learning to have signal.
        assert len(distribution) >= 2

    def test_statistics_table_fields(self, tiny_city):
        stats = tiny_city.statistics()
        for key in ("name", "num_nodes", "num_edges", "unlabeled_paths", "labeled_paths"):
            assert key in stats

    def test_pop_and_tci_labelers_attached(self, tiny_city):
        assert isinstance(tiny_city.pop_labeler, PeakOffPeakLabeler)
        assert tiny_city.tci_labeler.num_labels == 4

    def test_cities_differ_in_structure(self, tiny_city, tiny_city_harbin):
        assert tiny_city.network.num_edges != tiny_city_harbin.network.num_edges or \
            len(tiny_city.trips) != len(tiny_city_harbin.trips) or \
            tiny_city.name != tiny_city_harbin.name

    def test_deterministic_rebuild(self):
        a = build_city_dataset("aalborg", scale=DatasetScale.tiny())
        b = build_city_dataset("aalborg", scale=DatasetScale.tiny())
        assert a.network.num_edges == b.network.num_edges
        assert len(a.trips) == len(b.trips)
        np.testing.assert_allclose(
            [t.travel_time for t in a.trips], [t.travel_time for t in b.trips])


class TestMapMatchedPaths:
    @pytest.fixture(scope="class")
    def mapmatched_city(self):
        return build_city_dataset("aalborg", scale=DatasetScale.tiny(),
                                  paths_from="mapmatched")

    def test_invalid_paths_from_rejected(self):
        with pytest.raises(ValueError, match="paths_from"):
            build_city_dataset("aalborg", scale=DatasetScale.tiny(),
                               paths_from="oracle")

    def test_corpus_sizes_match_simulator_build(self, mapmatched_city, tiny_city):
        assert len(mapmatched_city.trips) == len(tiny_city.trips)
        assert len(mapmatched_city.unlabeled) == len(tiny_city.unlabeled)
        assert (len(mapmatched_city.tasks.travel_time)
                == len(tiny_city.tasks.travel_time))

    def test_recovered_paths_live_on_the_network(self, mapmatched_city):
        for tp in mapmatched_city.unlabeled.temporal_paths:
            assert len(tp.path) >= 1
            assert max(tp.path) < mapmatched_city.network.num_edges
            assert mapmatched_city.network.is_connected_path(list(tp.path))

    def test_gps_noise_actually_flows_into_the_corpus(self, mapmatched_city,
                                                      tiny_city):
        """Map matching noisy GPS must change at least some corpus paths."""
        differing = sum(
            1 for matched, truth in zip(mapmatched_city.trips, tiny_city.trips)
            if list(matched.path) != list(truth.path))
        assert differing > 0

    def test_departure_times_and_labels_preserved(self, mapmatched_city,
                                                  tiny_city):
        for matched, truth in zip(mapmatched_city.trips, tiny_city.trips):
            assert matched.departure_time == truth.departure_time
            assert matched.travel_time == truth.travel_time
            assert (matched.origin, matched.destination) == (truth.origin,
                                                             truth.destination)

    def test_deterministic_rebuild(self, mapmatched_city):
        rebuilt = build_city_dataset("aalborg", scale=DatasetScale.tiny(),
                                     paths_from="mapmatched")
        assert ([list(t.path) for t in rebuilt.trips]
                == [list(t.path) for t in mapmatched_city.trips])
