"""Tests for the labelled task dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import build_task_datasets
from repro.datasets.tasks import ranking_arrays, recommendation_arrays, travel_time_arrays


class TestBuildTaskDatasets:
    @pytest.fixture(scope="class")
    def tasks(self, tiny_city):
        return tiny_city.tasks

    def test_travel_time_examples_positive(self, tasks):
        assert tasks.travel_time
        for example in tasks.travel_time:
            assert example.travel_time > 0
            assert len(example.temporal_path) >= 1

    def test_ranking_scores_in_unit_interval(self, tasks):
        for example in tasks.ranking:
            assert 0.0 <= example.score <= 1.0

    def test_each_group_has_a_top_ranked_path(self, tasks):
        groups = {}
        for example in tasks.ranking:
            groups.setdefault(example.group, []).append(example.score)
        for scores in groups.values():
            assert max(scores) == pytest.approx(1.0)

    def test_recommendation_labels_binary_with_one_positive_per_group(self, tasks):
        groups = {}
        for example in tasks.recommendation:
            assert example.chosen in (0, 1)
            groups.setdefault(example.group, []).append(example.chosen)
        for labels in groups.values():
            assert sum(labels) == 1

    def test_max_labeled_caps_groups(self, tiny_city):
        capped = build_task_datasets(tiny_city.network, tiny_city.trips, max_labeled=5)
        assert len(capped.travel_time) == 5
        assert max(e.group for e in capped.ranking) <= 4

    def test_array_helpers(self, tasks):
        paths, targets = travel_time_arrays(tasks.travel_time)
        assert len(paths) == len(targets)
        paths, scores, groups = ranking_arrays(tasks.ranking)
        assert len(paths) == len(scores) == len(groups)
        paths, labels, groups = recommendation_arrays(tasks.recommendation)
        assert set(np.unique(labels)) <= {0, 1}
