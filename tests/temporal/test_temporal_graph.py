"""Tests for the temporal graph construction (paper §IV-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.temporal import SLOTS_PER_DAY, TOTAL_SLOTS, TemporalGraph, build_temporal_graph


class TestTemporalGraphContainer:
    def test_add_edge_and_neighbors(self):
        graph = TemporalGraph(num_nodes=5)
        graph.add_edge(0, 1)
        graph.add_edge(1, 3)
        assert graph.neighbors(1) == [0, 3]
        assert graph.num_edges == 2
        assert graph.degree(1) == 2

    def test_self_loops_ignored(self):
        graph = TemporalGraph(num_nodes=3)
        graph.add_edge(1, 1)
        assert graph.num_edges == 0

    def test_out_of_range_rejected(self):
        graph = TemporalGraph(num_nodes=3)
        with pytest.raises(KeyError):
            graph.add_edge(0, 5)

    def test_initial_node_features_shape_and_content(self):
        graph = TemporalGraph(num_nodes=TOTAL_SLOTS)
        features = graph.initial_node_features()
        assert features.shape == (TOTAL_SLOTS, SLOTS_PER_DAY + 7)
        # The paper's example: 00:06 Monday -> slot one-hot at position 1,
        # day one-hot at the first day position.
        row = features[1]
        assert row[1] == 1.0
        assert row[SLOTS_PER_DAY + 0] == 1.0
        assert row.sum() == pytest.approx(2.0)


class TestBuildTemporalGraph:
    @pytest.fixture(scope="class")
    def small_graph(self):
        return build_temporal_graph(slots_per_day=24, days=7)

    def test_node_count(self, small_graph):
        assert small_graph.num_nodes == 24 * 7

    def test_full_size_graph_matches_paper(self):
        graph = build_temporal_graph()
        assert graph.num_nodes == 2016

    def test_adjacent_slots_connected(self, small_graph):
        # Slot 5 and slot 6 of day 0.
        assert 6 in small_graph.neighbors(5)

    def test_same_slot_neighbouring_days_connected(self, small_graph):
        # Slot 5 of day 0 and slot 5 of day 1.
        assert (1 * 24 + 5) in small_graph.neighbors(5)

    def test_sunday_monday_wraparound(self, small_graph):
        sunday_slot = 6 * 24 + 3
        monday_slot = 3
        assert monday_slot in small_graph.neighbors(sunday_slot)

    def test_end_of_day_connects_to_next_day_start(self, small_graph):
        last_slot_day0 = 23
        first_slot_day1 = 24
        assert first_slot_day1 in small_graph.neighbors(last_slot_day0)

    def test_every_node_has_neighbors(self, small_graph):
        degrees = [small_graph.degree(n) for n in range(small_graph.num_nodes)]
        assert min(degrees) >= 2

    def test_graph_is_connected(self, small_graph):
        """BFS from node 0 should reach every node (needed for node2vec walks)."""
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for neighbour in small_graph.neighbors(node):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        assert len(seen) == small_graph.num_nodes
