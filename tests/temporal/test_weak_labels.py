"""Tests for the POP and TCI weak labelers."""

from __future__ import annotations

import pytest

from repro.temporal import (
    POP_AFTERNOON_PEAK,
    POP_MORNING_PEAK,
    POP_OFF_PEAK,
    CongestionIndexLabeler,
    DepartureTime,
    PeakOffPeakLabeler,
)
from repro.trajectory import CongestionProfile


class TestPeakOffPeakLabeler:
    @pytest.fixture()
    def labeler(self):
        return PeakOffPeakLabeler()

    def test_morning_peak_weekday(self, labeler):
        assert labeler(DepartureTime.from_hour(0, 8.0)) == POP_MORNING_PEAK

    def test_afternoon_peak_weekday(self, labeler):
        assert labeler(DepartureTime.from_hour(3, 17.0)) == POP_AFTERNOON_PEAK

    def test_off_peak_midday(self, labeler):
        assert labeler(DepartureTime.from_hour(2, 12.0)) == POP_OFF_PEAK

    def test_weekend_is_always_off_peak(self, labeler):
        assert labeler(DepartureTime.from_hour(5, 8.0)) == POP_OFF_PEAK
        assert labeler(DepartureTime.from_hour(6, 17.0)) == POP_OFF_PEAK

    def test_boundaries_are_half_open(self, labeler):
        assert labeler(DepartureTime.from_hour(1, 7.0)) == POP_MORNING_PEAK
        assert labeler(DepartureTime.from_hour(1, 9.0)) == POP_OFF_PEAK

    def test_label_names(self, labeler):
        assert labeler.label_name(POP_MORNING_PEAK) == "morning-peak"
        assert labeler.num_labels == 3

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            PeakOffPeakLabeler(morning=(9.0, 7.0))


class TestCongestionIndexLabeler:
    @pytest.fixture()
    def labeler(self):
        return CongestionIndexLabeler(CongestionProfile())

    def test_four_labels(self, labeler):
        assert labeler.num_labels == 4

    def test_peak_is_more_congested_than_night(self, labeler):
        peak = labeler(DepartureTime.from_hour(1, 8.0))
        night = labeler(DepartureTime.from_hour(1, 3.0))
        assert peak > night

    def test_labels_within_range(self, labeler):
        for day in range(7):
            for hour in range(0, 24, 3):
                label = labeler(DepartureTime.from_hour(day, hour))
                assert 0 <= label < 4

    def test_custom_profile_callable(self):
        labeler = CongestionIndexLabeler(lambda t: 0.9)
        assert labeler(DepartureTime.from_hour(0, 12.0)) == 3

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CongestionIndexLabeler(lambda t: 0.0, thresholds=(0.5, 0.2, 0.8))

    def test_label_names(self, labeler):
        assert labeler.label_name(0) == "smooth"
        assert labeler.label_name(3) == "heavily-congested"


class TestCongestionThresholdValidation:
    """Thresholds must be strictly increasing: duplicates silently made one
    of the four TCI labels unreachable before the fix."""

    def _profile(self):
        return lambda departure_time: 0.5

    def test_duplicate_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CongestionIndexLabeler(self._profile(), thresholds=(0.5, 0.5, 0.75))

    def test_decreasing_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CongestionIndexLabeler(self._profile(), thresholds=(0.75, 0.5, 0.25))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            CongestionIndexLabeler(self._profile(), thresholds=(0.25, 0.5))
        with pytest.raises(ValueError):
            CongestionIndexLabeler(self._profile(), thresholds=(0.1, 0.2, 0.3, 0.4))

    def test_strictly_increasing_accepted_and_all_labels_reachable(self):
        labeler = CongestionIndexLabeler(self._profile(),
                                         thresholds=(0.2, 0.4, 0.6))
        levels = {0.1: 0, 0.3: 1, 0.5: 2, 0.9: 3}
        for level, expected in levels.items():
            labeler.congestion_profile = lambda t, level=level: level
            assert labeler.label(None) == expected
