"""Tests for departure-time slot arithmetic."""

from __future__ import annotations

import pytest

from repro.temporal import (
    DAYS_PER_WEEK,
    SLOTS_PER_DAY,
    TOTAL_SLOTS,
    DepartureTime,
)


class TestConstants:
    def test_paper_constants(self):
        assert SLOTS_PER_DAY == 288
        assert DAYS_PER_WEEK == 7
        assert TOTAL_SLOTS == 2016


class TestDepartureTime:
    def test_validation(self):
        with pytest.raises(ValueError):
            DepartureTime(day_of_week=7, seconds=0.0)
        with pytest.raises(ValueError):
            DepartureTime(day_of_week=0, seconds=86400.0)
        with pytest.raises(ValueError):
            DepartureTime(day_of_week=-1, seconds=0.0)

    def test_paper_example_slot(self):
        # The paper's example: 00:06 on Monday is the second slot of the day.
        t = DepartureTime(day_of_week=0, seconds=6 * 60)
        assert t.slot_of_day == 1
        assert t.slot_index == 1

    def test_slot_index_for_other_days(self):
        t = DepartureTime.from_hour(2, 0.0)  # Wednesday midnight
        assert t.slot_index == 2 * SLOTS_PER_DAY

    def test_from_hour(self):
        t = DepartureTime.from_hour(4, 8.5)
        assert t.hour == pytest.approx(8.5)
        assert t.day_of_week == 4

    def test_from_slot_index_round_trip(self):
        for index in (0, 1, 287, 288, 2015):
            t = DepartureTime.from_slot_index(index)
            assert t.slot_index == index

    def test_from_slot_index_bounds(self):
        with pytest.raises(ValueError):
            DepartureTime.from_slot_index(TOTAL_SLOTS)
        with pytest.raises(ValueError):
            DepartureTime.from_slot_index(-1)

    def test_weekday_flag(self):
        assert DepartureTime.from_hour(0, 10).is_weekday
        assert DepartureTime.from_hour(4, 10).is_weekday
        assert not DepartureTime.from_hour(5, 10).is_weekday
        assert not DepartureTime.from_hour(6, 10).is_weekday

    def test_shift_within_day(self):
        t = DepartureTime.from_hour(1, 8.0).shift(3600)
        assert t.day_of_week == 1
        assert t.hour == pytest.approx(9.0)

    def test_shift_across_midnight(self):
        t = DepartureTime.from_hour(1, 23.5).shift(3600)
        assert t.day_of_week == 2
        assert t.hour == pytest.approx(0.5)

    def test_shift_wraps_week(self):
        t = DepartureTime.from_hour(6, 23.5).shift(3600)
        assert t.day_of_week == 0
        assert t.hour == pytest.approx(0.5)

    def test_shift_negative(self):
        t = DepartureTime.from_hour(0, 0.5).shift(-3600)
        assert t.day_of_week == 6
        assert t.hour == pytest.approx(23.5)

    def test_immutability(self):
        t = DepartureTime.from_hour(0, 8.0)
        with pytest.raises(AttributeError):
            t.seconds = 0.0
