"""Tests for the supervised baseline models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DeepGTTModel,
    GCNTravelTimeModel,
    HMTRLModel,
    PathRankModel,
    STGCNTravelTimeModel,
)
from repro.core import WSCCL


SEQUENCE_SUPERVISED = [DeepGTTModel, HMTRLModel, PathRankModel]


class TestSupervisedSequenceModels:
    @pytest.mark.parametrize("model_cls", SEQUENCE_SUPERVISED)
    def test_travel_time_training_and_prediction(self, model_cls, tiny_city, tiny_config):
        model = model_cls(config=tiny_config, epochs=1, seed=0)
        model.fit_supervised(tiny_city.tasks.travel_time, "travel_time",
                             city=tiny_city, max_batches=3)
        paths = [e.temporal_path for e in tiny_city.tasks.travel_time[:5]]
        predictions = model.predict(paths)
        assert predictions.shape == (5,)
        assert np.isfinite(predictions).all()

    @pytest.mark.parametrize("model_cls", SEQUENCE_SUPERVISED)
    def test_ranking_training(self, model_cls, tiny_city, tiny_config):
        model = model_cls(config=tiny_config, epochs=1, seed=0)
        model.fit_supervised(tiny_city.tasks.ranking, "ranking",
                             city=tiny_city, max_batches=3)
        predictions = model.predict([e.temporal_path for e in tiny_city.tasks.ranking[:4]])
        assert np.isfinite(predictions).all()

    @pytest.mark.parametrize("model_cls", SEQUENCE_SUPERVISED)
    def test_encode_produces_representations(self, model_cls, tiny_city, tiny_config):
        model = model_cls(config=tiny_config, epochs=1, seed=0)
        model.fit_supervised(tiny_city.tasks.travel_time, "travel_time",
                             city=tiny_city, max_batches=2)
        reps = model.encode([e.temporal_path for e in tiny_city.tasks.travel_time[:4]])
        assert reps.shape[0] == 4
        assert np.isfinite(reps).all()

    def test_predict_before_training_raises(self, tiny_city, tiny_config):
        model = PathRankModel(config=tiny_config)
        with pytest.raises(RuntimeError):
            model.predict(tiny_city.unlabeled.temporal_paths[:2])

    def test_fit_supervised_without_city_or_encoder_raises(self, tiny_city, tiny_config):
        model = HMTRLModel(config=tiny_config)
        with pytest.raises(ValueError):
            model.fit_supervised(tiny_city.tasks.travel_time, "travel_time")

    def test_unknown_task_rejected(self, tiny_city, tiny_config):
        model = PathRankModel(config=tiny_config)
        with pytest.raises(ValueError):
            model.fit_supervised(tiny_city.tasks.travel_time, "recommendation",
                                 city=tiny_city)

    def test_deepgtt_predictions_positive_for_travel_time(self, tiny_city, tiny_config):
        model = DeepGTTModel(config=tiny_config, epochs=1, seed=0)
        model.fit_supervised(tiny_city.tasks.travel_time, "travel_time",
                             city=tiny_city, max_batches=3)
        predictions = model.predict([e.temporal_path for e in tiny_city.tasks.travel_time[:6]])
        assert (predictions > 0).all()


class TestPathRankPretraining:
    def test_pretrained_state_is_loaded(self, tiny_city, tiny_config, shared_resources):
        wsccl = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        wsccl.fit_without_curriculum(tiny_city.unlabeled, batches_per_epoch=1)
        state = wsccl.encoder_state_dict()

        pretrained = PathRankModel(config=tiny_config, pretrained_state=state, seed=0)
        pretrained.build_encoder(tiny_city, resources=shared_resources)
        loaded_state = pretrained._encoder.encoder.state_dict()
        for name, value in state.items():
            np.testing.assert_allclose(loaded_state[name], value)

    def test_scratch_and_pretrained_start_from_different_weights(
            self, tiny_city, tiny_config, shared_resources):
        wsccl = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        wsccl.fit_without_curriculum(tiny_city.unlabeled, batches_per_epoch=1)
        state = wsccl.encoder_state_dict()

        scratch = PathRankModel(config=tiny_config, seed=0)
        scratch.build_encoder(tiny_city, resources=shared_resources)
        pretrained = PathRankModel(config=tiny_config, pretrained_state=state, seed=0)
        pretrained.build_encoder(tiny_city, resources=shared_resources)

        scratch_state = scratch._encoder.encoder.state_dict()
        pretrained_state = pretrained._encoder.encoder.state_dict()
        assert any(not np.allclose(scratch_state[k], pretrained_state[k])
                   for k in scratch_state)

    def test_load_pretrained_after_building(self, tiny_city, tiny_config, shared_resources):
        wsccl = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        state = wsccl.encoder_state_dict()
        model = PathRankModel(config=tiny_config, seed=0)
        model.build_encoder(tiny_city, resources=shared_resources)
        model.load_pretrained(state)
        loaded = model._encoder.encoder.state_dict()
        for name, value in state.items():
            np.testing.assert_allclose(loaded[name], value)


class TestEdgeSumBaselines:
    @pytest.mark.parametrize("model_cls", [GCNTravelTimeModel, STGCNTravelTimeModel])
    def test_travel_time_training(self, model_cls, tiny_city):
        model = model_cls(hidden_dim=8, epochs=3, seed=0)
        model.fit_supervised(tiny_city.tasks.travel_time, "travel_time",
                             city=tiny_city, max_batches=3)
        predictions = model.predict([e.temporal_path for e in tiny_city.tasks.travel_time[:5]])
        assert predictions.shape == (5,)
        assert (predictions > 0).all()

    @pytest.mark.parametrize("model_cls", [GCNTravelTimeModel, STGCNTravelTimeModel])
    def test_ranking_task_rejected(self, model_cls, tiny_city):
        model = model_cls(hidden_dim=8, seed=0)
        with pytest.raises(ValueError):
            model.fit_supervised(tiny_city.tasks.ranking, "ranking", city=tiny_city)

    def test_longer_paths_predicted_slower(self, tiny_city):
        """Edge-sum models must produce times that grow with path length."""
        model = GCNTravelTimeModel(hidden_dim=8, epochs=5, seed=0)
        model.fit_supervised(tiny_city.tasks.travel_time, "travel_time",
                             city=tiny_city, max_batches=5)
        examples = sorted(tiny_city.tasks.travel_time, key=lambda e: len(e.temporal_path))
        short = examples[0].temporal_path
        long = examples[-1].temporal_path
        if len(long) <= len(short):
            pytest.skip("corpus has uniform path lengths")
        predictions = model.predict([short, long])
        assert predictions[1] > predictions[0]

    def test_training_reduces_error(self, tiny_city):
        untrained = GCNTravelTimeModel(hidden_dim=8, epochs=0, seed=0)
        untrained.fit(tiny_city)
        trained = GCNTravelTimeModel(hidden_dim=8, epochs=8, seed=0)
        trained.fit_supervised(tiny_city.tasks.travel_time, "travel_time",
                               city=tiny_city)
        paths = [e.temporal_path for e in tiny_city.tasks.travel_time]
        truth = np.array([e.travel_time for e in tiny_city.tasks.travel_time])
        untrained_error = np.abs(untrained.predict(paths) - truth).mean()
        trained_error = np.abs(trained.predict(paths) - truth).mean()
        assert trained_error < untrained_error
