"""Tests for the unsupervised baseline models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    BERTPathModel,
    DGIPathModel,
    GMIPathModel,
    InfoGraphModel,
    MemoryBankModel,
    Node2vecPathModel,
    PIMModel,
    PIMTemporalModel,
    SpatialSequenceEncoder,
)
from repro.datasets import TemporalPath
from repro.temporal import DepartureTime


UNSUPERVISED_CLASSES = [
    Node2vecPathModel,
    DGIPathModel,
    GMIPathModel,
]

SEQUENCE_CLASSES = [
    MemoryBankModel,
    BERTPathModel,
    InfoGraphModel,
    PIMModel,
]


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        expected = {"Node2vec", "DGI", "GMI", "MB", "BERT", "InfoGraph", "PIM",
                    "PIM-Temporal", "DeepGTT", "HMTRL", "PathRank", "GCN", "STGCN"}
        assert expected <= set(BASELINE_REGISTRY)

    def test_registered_names_match_class_attribute(self):
        for name, cls in BASELINE_REGISTRY.items():
            assert cls.name == name


class TestGraphEmbeddingBaselines:
    @pytest.mark.parametrize("model_cls", UNSUPERVISED_CLASSES)
    def test_fit_encode_shapes(self, model_cls, tiny_city):
        model = model_cls(dim=8, seed=0) if model_cls is Node2vecPathModel else \
            model_cls(dim=8, epochs=3, seed=0)
        model.fit(tiny_city)
        paths = tiny_city.unlabeled.temporal_paths[:5]
        reps = model.encode(paths)
        assert reps.shape[0] == 5
        assert np.isfinite(reps).all()

    @pytest.mark.parametrize("model_cls", UNSUPERVISED_CLASSES)
    def test_encode_before_fit_raises(self, model_cls, tiny_city):
        model = model_cls()
        with pytest.raises(RuntimeError):
            model.encode(tiny_city.unlabeled.temporal_paths[:2])

    def test_representations_ignore_departure_time(self, tiny_city):
        """Non-temporal baselines must produce identical representations for
        the same path at different departure times — that is their documented
        weakness vs. WSCCL."""
        model = Node2vecPathModel(dim=8, seed=0).fit(tiny_city)
        base = tiny_city.unlabeled.temporal_paths[0]
        morning = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 8.0))
        night = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 3.0))
        reps = model.encode([morning, night])
        np.testing.assert_allclose(reps[0], reps[1])

    def test_represent_single(self, tiny_city):
        model = Node2vecPathModel(dim=8, seed=0).fit(tiny_city)
        vector = model.represent(tiny_city.unlabeled.temporal_paths[0])
        assert vector.ndim == 1


class TestSequenceBaselines:
    @pytest.mark.parametrize("model_cls", SEQUENCE_CLASSES)
    def test_fit_and_encode(self, model_cls, tiny_city):
        model = model_cls(dim=8, epochs=1, seed=0)
        model.fit(tiny_city, max_batches=2)
        reps = model.encode(tiny_city.unlabeled.temporal_paths[:4])
        assert reps.shape == (4, 8)
        assert np.isfinite(reps).all()

    def test_pim_temporal_appends_temporal_features(self, tiny_city):
        model = PIMTemporalModel(dim=8, temporal_dim=4, epochs=1, seed=0)
        model.fit(tiny_city, max_batches=2)
        reps = model.encode(tiny_city.unlabeled.temporal_paths[:3])
        assert reps.shape == (3, 12)

    def test_pim_temporal_representation_depends_on_time(self, tiny_city):
        model = PIMTemporalModel(dim=8, temporal_dim=4, epochs=1, seed=0)
        model.fit(tiny_city, max_batches=2)
        base = tiny_city.unlabeled.temporal_paths[0]
        morning = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 8.0))
        night = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 3.0))
        reps = model.encode([morning, night])
        assert not np.allclose(reps[0], reps[1])

    def test_mb_training_changes_encoder(self, tiny_city):
        model = MemoryBankModel(dim=8, epochs=1, seed=0)
        encoder_before = SpatialSequenceEncoder(tiny_city.network, hidden_dim=8, seed=0)
        before_state = encoder_before.state_dict()
        model.fit(tiny_city, max_batches=3)
        after_state = model._encoder.state_dict()
        changed = any(not np.allclose(before_state[k], after_state[k])
                      for k in before_state if k in after_state)
        assert changed

    def test_pim_curriculum_negative_perturbs_path(self, tiny_city, rng):
        model = PIMModel(dim=8, seed=0)
        base = tiny_city.unlabeled.temporal_paths[0]
        negative = model._curriculum_negative(base, tiny_city.network, rng, difficulty=0.0)
        assert negative.path != base.path
        assert len(negative.path) == len(base.path)


class TestSpatialSequenceEncoder:
    def test_forward_shapes(self, tiny_city):
        encoder = SpatialSequenceEncoder(tiny_city.network, hidden_dim=8, seed=0)
        paths = tiny_city.unlabeled.temporal_paths[:3]
        pooled, outputs, mask = encoder(paths)
        max_len = max(len(p) for p in paths)
        assert pooled.shape == (3, 8)
        assert outputs.shape == (3, max_len, 8)
        assert mask.shape == (3, max_len)

    def test_encode_empty(self, tiny_city):
        encoder = SpatialSequenceEncoder(tiny_city.network, hidden_dim=8, seed=0)
        assert encoder.encode([]).shape == (0, 8)
