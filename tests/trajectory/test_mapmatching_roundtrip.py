"""GPS round-trip property suite: sample -> match -> recover the path.

For each city's noise-and-rate regime (Aalborg ~1 Hz precise, Harbin 1/30 Hz
noisy, Chengdu in between, scaled to the synthetic networks), sampling a GPS
trace along a known path and map-matching it must recover the true path or a
close approximation of it.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet import CityConfig, generate_city_network, path_similarity
from repro.temporal import DepartureTime
from repro.trajectory import GPSSampler, HMMMapMatcher, SpeedModel

#: Scaled-down counterparts of the paper's three sampling regimes, with a
#: conservative floor on the length-weighted similarity between the true and
#: the recovered path (empirically the mean sits above 0.8 for all three).
CITY_GPS_REGIMES = {
    "aalborg": {"sample_interval": 5.0, "noise_std": 5.0, "min_similarity": 0.2},
    "harbin": {"sample_interval": 30.0, "noise_std": 12.0, "min_similarity": 0.2},
    "chengdu": {"sample_interval": 10.0, "noise_std": 8.0, "min_similarity": 0.2},
}


@lru_cache(maxsize=1)
def roundtrip_network():
    return generate_city_network(
        CityConfig(name="roundtrip-grid", grid_rows=5, grid_cols=5, seed=3))


@lru_cache(maxsize=1)
def roundtrip_matcher():
    return HMMMapMatcher(roundtrip_network())


def random_path(network, start, hops, rng):
    """A connected random walk avoiding immediate U-turns when possible."""
    path, node = [], start
    for _ in range(hops):
        edges = list(network.out_edges(node))
        if not edges:
            break
        choice = edges[int(rng.integers(0, len(edges)))]
        if path and len(edges) > 1:
            previous_source = network.edge_endpoints(path[-1])[0]
            forward = [e for e in edges
                       if network.edge_endpoints(e)[1] != previous_source]
            if forward and network.edge_endpoints(choice)[1] == previous_source:
                choice = forward[0]
        path.append(choice)
        node = network.edge_endpoints(choice)[1]
    return path


class TestGPSRoundTrip:
    @pytest.mark.parametrize("city", sorted(CITY_GPS_REGIMES))
    @given(seed=st.integers(min_value=0, max_value=50_000),
           hops=st.integers(min_value=3, max_value=8))
    # Derandomized: the similarity floor is a statistical property of a
    # heuristic matcher, so keep the example set reproducible across CI runs.
    @settings(max_examples=20, deadline=None, derandomize=True)
    def test_recovered_path_near_equals_truth(self, city, seed, hops):
        regime = CITY_GPS_REGIMES[city]
        network = roundtrip_network()
        rng = np.random.default_rng(seed)
        path = random_path(network, int(rng.integers(0, network.num_nodes)),
                           hops, rng)
        if not path:
            return
        speed_model = SpeedModel(network, seed=0, noise_std=0.0)
        sampler = GPSSampler(network, speed_model,
                             sample_interval=regime["sample_interval"],
                             noise_std=regime["noise_std"], seed=seed)
        departure = DepartureTime.from_hour(int(rng.integers(0, 7)),
                                            6.0 + float(rng.uniform(0.0, 16.0)))
        trajectory = sampler.sample(path, departure)

        matched = roundtrip_matcher().match(trajectory)
        assert matched, "matching a sampled trace must never come back empty"
        assert network.is_connected_path(matched)
        similarity = path_similarity(network, path, matched)
        assert similarity >= regime["min_similarity"]

    def test_dense_noise_free_trace_recovers_exactly(self):
        network = roundtrip_network()
        rng = np.random.default_rng(123)
        path = random_path(network, 0, 6, rng)
        speed_model = SpeedModel(network, seed=0, noise_std=0.0)
        sampler = GPSSampler(network, speed_model, sample_interval=2.0,
                             noise_std=0.5, seed=0)
        trajectory = sampler.sample(path, DepartureTime.from_hour(0, 9.0))
        matched = roundtrip_matcher().match(trajectory)
        assert path_similarity(network, path, matched) >= 0.9

    def test_mean_similarity_is_high_across_regimes(self):
        """Aggregate quality: the average recovery is close to the truth."""
        network = roundtrip_network()
        speed_model = SpeedModel(network, seed=0, noise_std=0.0)
        matcher = roundtrip_matcher()
        for city, regime in CITY_GPS_REGIMES.items():
            similarities = []
            for seed in range(20):
                rng = np.random.default_rng(seed)
                path = random_path(network,
                                   int(rng.integers(0, network.num_nodes)),
                                   int(rng.integers(3, 9)), rng)
                if not path:
                    continue
                sampler = GPSSampler(network, speed_model,
                                     sample_interval=regime["sample_interval"],
                                     noise_std=regime["noise_std"], seed=seed)
                trajectory = sampler.sample(
                    path, DepartureTime.from_hour(0, 9.0))
                similarities.append(
                    path_similarity(network, path, matcher.match(trajectory)))
            assert np.mean(similarities) >= 0.6, city
