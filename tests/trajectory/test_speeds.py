"""Tests for the congestion profile and time-dependent speed model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.temporal import DepartureTime
from repro.trajectory import CongestionProfile, SpeedModel


class TestCongestionProfile:
    @pytest.fixture()
    def profile(self):
        return CongestionProfile()

    def test_levels_in_unit_interval(self, profile):
        for day in range(7):
            for hour in np.linspace(0, 23.9, 30):
                level = profile.level(DepartureTime.from_hour(day, float(hour)))
                assert 0.0 <= level <= 1.0

    def test_weekday_morning_peak_above_night(self, profile):
        peak = profile.level(DepartureTime.from_hour(1, 8.0))
        night = profile.level(DepartureTime.from_hour(1, 3.0))
        assert peak > night + 0.2

    def test_weekday_afternoon_peak_above_midday(self, profile):
        afternoon = profile.level(DepartureTime.from_hour(2, 17.5))
        midday = profile.level(DepartureTime.from_hour(2, 12.0))
        assert afternoon > midday

    def test_weekend_calmer_than_weekday_peak(self, profile):
        weekday_peak = profile.level(DepartureTime.from_hour(0, 8.0))
        weekend_same_time = profile.level(DepartureTime.from_hour(6, 8.0))
        assert weekend_same_time < weekday_peak

    def test_profile_is_callable(self, profile):
        t = DepartureTime.from_hour(0, 8.0)
        assert profile(t) == profile.level(t)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            CongestionProfile(peak_width_hours=0.0)


class TestSpeedModel:
    @pytest.fixture(scope="class")
    def model(self, tiny_network):
        return SpeedModel(tiny_network, seed=0)

    def test_speed_positive_and_below_limit(self, model, tiny_network):
        t = DepartureTime.from_hour(0, 8.0)
        for edge in range(tiny_network.num_edges):
            speed = model.edge_speed(edge, t)
            assert 0 < speed <= tiny_network.edge_features(edge).speed_limit

    def test_peak_slower_than_offpeak(self, model, tiny_network):
        peak = DepartureTime.from_hour(0, 8.0)
        off = DepartureTime.from_hour(0, 3.0)
        slower = sum(
            model.edge_speed(e, peak) < model.edge_speed(e, off)
            for e in range(tiny_network.num_edges)
        )
        assert slower == tiny_network.num_edges

    def test_travel_time_consistent_with_speed(self, model, tiny_network):
        t = DepartureTime.from_hour(2, 10.0)
        edge = 0
        expected = tiny_network.edge_length(edge) / (model.edge_speed(edge, t) / 3.6)
        assert model.edge_travel_time(edge, t) == pytest.approx(expected)

    def test_path_travel_time_additive_and_positive(self, model, tiny_network):
        t = DepartureTime.from_hour(1, 9.0)
        path = list(tiny_network.out_edges(0))[:1]
        next_edges = tiny_network.out_edges(tiny_network.edge_endpoints(path[0])[1])
        path.append(next_edges[0])
        total = model.path_travel_time(path, t)
        assert total > 0
        assert total >= model.edge_travel_time(path[0], t) * 0.5

    def test_path_peak_travel_time_longer(self, model, tiny_network):
        """The same path takes longer at 8am than at 3am - the paper's Fig. 1."""
        path = []
        node = 0
        for _ in range(4):
            edges = tiny_network.out_edges(node)
            if not edges:
                break
            path.append(edges[0])
            node = tiny_network.edge_endpoints(edges[0])[1]
        peak = model.path_travel_time(path, DepartureTime.from_hour(1, 8.0))
        night = model.path_travel_time(path, DepartureTime.from_hour(1, 3.0))
        assert peak > night

    def test_noise_reproducible_with_rng(self, model, tiny_network):
        t = DepartureTime.from_hour(0, 12.0)
        a = model.edge_travel_time(0, t, rng=np.random.default_rng(5))
        b = model.edge_travel_time(0, t, rng=np.random.default_rng(5))
        assert a == pytest.approx(b)

    def test_congestion_level_exposed(self, model):
        level = model.congestion_level(DepartureTime.from_hour(0, 8.0))
        assert 0.0 <= level <= 1.0


class _StubFeatures:
    def __init__(self, road_type, speed_limit=50.0):
        self.road_type = road_type
        self.speed_limit = speed_limit


class _StubNetwork:
    """Minimal network exposing an out-of-vocabulary road type."""

    num_edges = 2

    def __init__(self):
        self._features = [_StubFeatures("residential"), _StubFeatures("footway")]

    def edge_features(self, edge_id):
        return self._features[edge_id]

    def edge_length(self, edge_id):
        return 100.0


class TestUnknownRoadTypeFallback:
    """SpeedModel must not raise a bare KeyError on unseen road types."""

    def test_unknown_road_type_uses_default_sensitivity(self):
        from repro.trajectory import DEFAULT_CONGESTION_SENSITIVITY

        model = SpeedModel(_StubNetwork(), seed=0)
        # The jitter multiplier is in [0.85, 1.15], so the fallback edge's
        # sensitivity must sit in the corresponding band around the default.
        sensitivity = model._sensitivity[1]
        assert DEFAULT_CONGESTION_SENSITIVITY * 0.85 <= sensitivity
        assert sensitivity <= DEFAULT_CONGESTION_SENSITIVITY * 1.15

    def test_unknown_road_type_prices_normally(self):
        model = SpeedModel(_StubNetwork(), seed=0)
        t = DepartureTime.from_hour(0, 8.0)
        speed = model.edge_speed(1, t)
        assert 0 < speed <= 50.0
        assert model.edge_travel_time(1, t) > 0
