"""Tests for the trip simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.temporal import DepartureTime, PeakOffPeakLabeler
from repro.trajectory import SpeedModel, TripSimulator


class TestTripSimulator:
    @pytest.fixture(scope="class")
    def simulator(self, tiny_network):
        return TripSimulator(tiny_network, speed_model=SpeedModel(tiny_network, seed=0),
                             seed=0, min_trip_edges=2, max_trip_edges=30)

    def test_departure_times_valid(self, simulator):
        for _ in range(50):
            t = simulator.sample_departure_time()
            assert 0 <= t.day_of_week < 7
            assert 0 <= t.seconds < 86400

    def test_departure_times_cover_peaks_and_offpeak(self, simulator):
        labeler = PeakOffPeakLabeler()
        labels = {labeler(simulator.sample_departure_time()) for _ in range(300)}
        assert len(labels) == 3

    def test_simulated_trip_is_valid(self, simulator, tiny_network):
        trip = simulator.simulate_trip()
        assert trip is not None
        assert tiny_network.is_connected_path(trip.path)
        assert trip.travel_time > 0
        assert trip.origin != trip.destination

    def test_trip_path_connects_origin_to_destination(self, simulator, tiny_network):
        trip = simulator.simulate_trip()
        nodes = tiny_network.path_nodes(trip.path)
        assert nodes[0] == trip.origin
        assert nodes[-1] == trip.destination

    def test_alternatives_share_endpoints(self, simulator, tiny_network):
        trip = simulator.simulate_trip()
        for alternative in trip.alternatives:
            nodes = tiny_network.path_nodes(alternative)
            assert nodes[0] == trip.origin
            assert nodes[-1] == trip.destination

    def test_simulate_produces_requested_count(self, simulator):
        trips = simulator.simulate(10)
        assert len(trips) == 10

    def test_travel_time_roughly_scales_with_length(self, simulator, tiny_network):
        trips = simulator.simulate(25)
        lengths = np.array([tiny_network.path_length(t.path) for t in trips])
        times = np.array([t.travel_time for t in trips])
        correlation = np.corrcoef(lengths, times)[0, 1]
        assert correlation > 0.5

    def test_invalid_impl(self, tiny_network):
        with pytest.raises(ValueError):
            TripSimulator(tiny_network, impl="turbo")

    def test_peak_travel_slower_for_fixed_od(self, tiny_network):
        """Same OD pair takes longer in the peak (what weak labels capture)."""
        simulator = TripSimulator(tiny_network,
                                  speed_model=SpeedModel(tiny_network, seed=1, noise_std=0.0),
                                  seed=1, min_trip_edges=2)
        origin, destination = 0, tiny_network.num_nodes - 1
        peak = simulator.simulate_trip(
            departure_time=DepartureTime.from_hour(1, 8.0),
            origin=origin, destination=destination)
        night = simulator.simulate_trip(
            departure_time=DepartureTime.from_hour(1, 3.0),
            origin=origin, destination=destination)
        assert peak is not None and night is not None
        assert peak.travel_time > night.travel_time


class _ScriptedRNG:
    """Stand-in rng whose ``integers`` draws pop from a scripted sequence."""

    def __init__(self, values):
        self._values = list(values)

    def integers(self, low, high):
        return self._values.pop(0)


class TestSampleODPairRegression:
    """The distance-heuristic fallback must never emit origin == destination."""

    def test_degenerate_last_draw_falls_back_to_distinct_pair(self, tiny_network):
        simulator = TripSimulator(tiny_network, seed=0, min_trip_edges=4,
                                  max_trip_edges=40)
        # 49 degenerate draws, then one distinct-but-too-close pair that fails
        # the distance check, then... the budget is exhausted.  Before the
        # fix the final degenerate draw leaked out whenever the 50th attempt
        # sampled origin == destination.
        script = [0, 0] * 48 + [0, 1] + [2, 2]
        simulator.rng = _ScriptedRNG(script)
        origin, destination = simulator._sample_od_pair()
        assert (origin, destination) == (0, 1)

    def test_all_degenerate_draws_raise(self, tiny_network):
        simulator = TripSimulator(tiny_network, seed=0)
        simulator.rng = _ScriptedRNG([3, 3] * 50)
        with pytest.raises(RuntimeError):
            simulator._sample_od_pair()

    def test_last_draw_distinct_is_returned_as_before(self, tiny_network):
        """Non-degenerate exhaustion keeps the pre-fix result (last draw)."""
        simulator = TripSimulator(tiny_network, seed=0, min_trip_edges=100)
        # Distance check can never pass (needs >= 100 * 125 m); all draws
        # distinct, so the last one is returned.
        simulator.rng = _ScriptedRNG([0, 1] * 49 + [2, 3])
        assert simulator._sample_od_pair() == (2, 3)

    def test_sampled_pairs_always_distinct(self, tiny_network):
        simulator = TripSimulator(tiny_network, seed=123, min_trip_edges=2)
        for _ in range(200):
            origin, destination = simulator._sample_od_pair()
            assert origin != destination
