"""Tests for the HMM map matcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.temporal import DepartureTime
from repro.trajectory import GPSSampler, HMMMapMatcher, SpeedModel


def build_path(network, start_node=0, hops=5):
    path = []
    node = start_node
    for _ in range(hops):
        edges = network.out_edges(node)
        if not edges:
            break
        path.append(edges[0])
        node = network.edge_endpoints(edges[0])[1]
    return path


class TestHMMMapMatcher:
    @pytest.fixture(scope="class")
    def matcher(self, tiny_network):
        return HMMMapMatcher(tiny_network, emission_sigma=10.0, candidate_radius=150.0)

    def test_parameter_validation(self, tiny_network):
        with pytest.raises(ValueError):
            HMMMapMatcher(tiny_network, emission_sigma=0.0)
        with pytest.raises(ValueError):
            HMMMapMatcher(tiny_network, transition_beta=-1.0)

    def test_empty_trajectory(self, matcher, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        sampler = GPSSampler(tiny_network, speed_model, seed=0)
        trajectory = sampler.sample(build_path(tiny_network, hops=2),
                                    DepartureTime.from_hour(0, 8.0))
        trajectory.points = []
        assert matcher.match(trajectory) == []

    def test_matched_path_is_connected(self, matcher, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=8.0,
                             noise_std=5.0, seed=1)
        trajectory = sampler.sample(build_path(tiny_network, hops=5),
                                    DepartureTime.from_hour(0, 9.0))
        matched = matcher.match(trajectory)
        assert matched
        assert tiny_network.is_connected_path(matched)

    def test_low_noise_recovers_most_of_true_path(self, tiny_network):
        """With small GPS noise the matcher should recover most true edges."""
        speed_model = SpeedModel(tiny_network, seed=0, noise_std=0.0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=5.0,
                             noise_std=3.0, seed=2)
        matcher = HMMMapMatcher(tiny_network, emission_sigma=10.0,
                                candidate_radius=120.0)
        true_path = build_path(tiny_network, hops=6)
        trajectory = sampler.sample(true_path, DepartureTime.from_hour(0, 10.0))
        matched = matcher.match(trajectory)
        overlap = len(set(true_path) & set(matched)) / len(set(true_path))
        assert overlap >= 0.5

    def test_point_to_edge_distances_nonnegative(self, matcher, tiny_network):
        distances = matcher._point_to_edges_distance((10.0, 20.0))
        assert distances.shape == (tiny_network.num_edges,)
        assert (distances >= 0).all()

    def test_candidates_always_nonempty(self, matcher):
        candidates, _ = matcher._candidates((1e6, 1e6))
        assert len(candidates) >= 1
