"""Tests for the HMM map matcher (reference and vectorized engines)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet import EdgeFeatures, RoadNetwork
from repro.temporal import DepartureTime
from repro.trajectory import GPSPoint, GPSSampler, GPSTrajectory, HMMMapMatcher, SpeedModel


def build_path(network, start_node=0, hops=5):
    path = []
    node = start_node
    for _ in range(hops):
        edges = network.out_edges(node)
        if not edges:
            break
        path.append(edges[0])
        node = network.edge_endpoints(edges[0])[1]
    return path


def features(length):
    return EdgeFeatures(road_type="residential", lanes=1, one_way=False,
                        traffic_signals=False, length=length, speed_limit=36.0)


def make_trajectory(points):
    """A GPSTrajectory from raw (x, y) pairs with 10 s spacing."""
    gps_points = [GPSPoint(x=float(x), y=float(y), timestamp=10.0 * i)
                  for i, (x, y) in enumerate(points)]
    return GPSTrajectory(gps_points, true_path=None, departure_time=None)


@pytest.fixture(scope="module")
def single_edge_network():
    """One long directed edge from (0, 0) to (1000, 0)."""
    network = RoadNetwork()
    network.add_node(0.0, 0.0)
    network.add_node(1000.0, 0.0)
    network.add_edge(0, 1, features(1000.0))
    return network


@pytest.fixture(scope="module")
def disconnected_network():
    """Two chains of two edges each, 10 km apart, with no connection."""
    network = RoadNetwork()
    for x in (0.0, 100.0, 200.0):
        network.add_node(x, 0.0)
    for x in (10000.0, 10100.0, 10200.0):
        network.add_node(x, 0.0)
    network.add_edge(0, 1, features(100.0))   # 0
    network.add_edge(1, 2, features(100.0))   # 1
    network.add_edge(3, 4, features(100.0))   # 2
    network.add_edge(4, 5, features(100.0))   # 3
    return network


class TestHMMMapMatcher:
    @pytest.fixture(scope="class")
    def matcher(self, tiny_network):
        return HMMMapMatcher(tiny_network, emission_sigma=10.0, candidate_radius=150.0)

    def test_parameter_validation(self, tiny_network):
        with pytest.raises(ValueError):
            HMMMapMatcher(tiny_network, emission_sigma=0.0)
        with pytest.raises(ValueError):
            HMMMapMatcher(tiny_network, transition_beta=-1.0)
        with pytest.raises(ValueError):
            HMMMapMatcher(tiny_network, impl="gpu")

    def test_empty_trajectory(self, matcher, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        sampler = GPSSampler(tiny_network, speed_model, seed=0)
        trajectory = sampler.sample(build_path(tiny_network, hops=2),
                                    DepartureTime.from_hour(0, 8.0))
        trajectory.points = []
        assert matcher.match(trajectory) == []
        assert matcher.match_segments(trajectory) == []

    def test_matched_path_is_connected(self, matcher, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=8.0,
                             noise_std=5.0, seed=1)
        trajectory = sampler.sample(build_path(tiny_network, hops=5),
                                    DepartureTime.from_hour(0, 9.0))
        matched = matcher.match(trajectory)
        assert matched
        assert tiny_network.is_connected_path(matched)

    def test_low_noise_recovers_most_of_true_path(self, tiny_network):
        """With small GPS noise the matcher should recover most true edges."""
        speed_model = SpeedModel(tiny_network, seed=0, noise_std=0.0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=5.0,
                             noise_std=3.0, seed=2)
        matcher = HMMMapMatcher(tiny_network, emission_sigma=10.0,
                                candidate_radius=120.0)
        true_path = build_path(tiny_network, hops=6)
        trajectory = sampler.sample(true_path, DepartureTime.from_hour(0, 10.0))
        matched = matcher.match(trajectory)
        overlap = len(set(true_path) & set(matched)) / len(set(true_path))
        assert overlap >= 0.5

    def test_point_to_edge_distances_nonnegative(self, matcher, tiny_network):
        distances = matcher._point_to_edges_distance((10.0, 20.0))
        assert distances.shape == (tiny_network.num_edges,)
        assert (distances >= 0).all()

    def test_candidates_always_nonempty(self, matcher):
        edges, distances, fractions = matcher._reference_candidates((1e6, 1e6))
        assert len(edges) >= 1
        assert len(edges) == len(distances) == len(fractions)

    def test_match_batch_matches_individual_calls(self, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=8.0,
                             noise_std=4.0, seed=5)
        trajectories = [
            sampler.sample(build_path(tiny_network, start_node=node, hops=5),
                           DepartureTime.from_hour(0, 9.0))
            for node in (0, 3, 7)
        ]
        matcher = HMMMapMatcher(tiny_network)
        batch = matcher.match_batch(trajectories)
        assert batch == [matcher.match(t) for t in trajectories]


class TestTransitionModel:
    """The corrected projection-point transition model (was: adjacency = 0 m)."""

    def test_crawl_along_one_edge_is_not_stationary(self, single_edge_network):
        matcher = HMMMapMatcher(single_edge_network, impl="reference",
                                transition_beta=30.0)
        # Two fixes 500 m apart along the same 1000 m edge: the driving
        # distance is (0.6 - 0.1) * 1000 = 500 m, matching the straight-line
        # separation, so the transition is now a perfect score ...
        log_prob = matcher._reference_transition_log_prob(0, 0.1, 0, 0.6, 500.0)
        assert log_prob == pytest.approx(0.0)
        # ... where the old edge_a == edge_b -> 0 m shortcut scored the same
        # move as a wildly implausible -500/beta.
        assert log_prob != pytest.approx(-500.0 / 30.0)

    def test_backwards_crawl_needs_a_return_route(self, single_edge_network):
        matcher = HMMMapMatcher(single_edge_network, impl="reference")
        # Moving backwards along a one-way edge requires a route from the
        # edge head back to its tail; none exists here.
        assert matcher._reference_transition_log_prob(0, 0.6, 0, 0.1, 500.0) == -np.inf

    def test_adjacent_edges_use_projection_distance(self, tiny_network):
        matcher = HMMMapMatcher(tiny_network, impl="reference",
                                transition_beta=30.0)
        edge_a = tiny_network.out_edges(0)[0]
        target = tiny_network.edge_endpoints(edge_a)[1]
        edge_b = tiny_network.out_edges(target)[0]
        length_a = tiny_network.edge_length(edge_a)
        length_b = tiny_network.edge_length(edge_b)
        expected_distance = (1.0 - 0.75) * length_a + 0.0 + 0.25 * length_b
        log_prob = matcher._reference_transition_log_prob(
            edge_a, 0.75, edge_b, 0.25, 0.0)
        assert log_prob == pytest.approx(-expected_distance / 30.0)
        # The old model scored adjacent edges as zero network distance.
        assert expected_distance > 0.0

    def test_vectorized_transitions_match_reference(self, single_edge_network,
                                                    tiny_network):
        for network in (single_edge_network, tiny_network):
            matcher = HMMMapMatcher(network)
            rng = np.random.default_rng(7)
            edges = rng.integers(0, network.num_edges, size=4)
            fractions = rng.uniform(0.0, 1.0, size=4)
            straight = 120.0
            matrix = matcher._vectorized_transitions(
                edges[:2], fractions[:2], edges[2:], fractions[2:], straight)
            for i in range(2):
                for j in range(2):
                    reference = matcher._reference_transition_log_prob(
                        edges[i], fractions[i], edges[2 + j], fractions[2 + j],
                        straight)
                    assert matrix[i, j] == reference


class TestHMMBreak:
    """All-(-inf) Viterbi steps restart decoding (Newson & Krumm's HMM break)."""

    def test_disconnected_trajectory_splits_into_segments(self, disconnected_network):
        trajectory = make_trajectory(
            [(50.0, 1.0), (150.0, 1.0), (10050.0, 1.0), (10150.0, 1.0)])
        for impl in ("reference", "vectorized"):
            matcher = HMMMapMatcher(disconnected_network, impl=impl)
            segments = matcher.match_segments(trajectory)
            assert segments == [[0, 1], [2, 3]]

    def test_match_keeps_connected_prefix_without_garbage(self, disconnected_network):
        trajectory = make_trajectory(
            [(50.0, 1.0), (150.0, 1.0), (10050.0, 1.0), (10150.0, 1.0)])
        matcher = HMMMapMatcher(disconnected_network)
        matched = matcher.match(trajectory)
        # No connector exists across the break, so match() keeps the first
        # component's edges instead of stitching disconnected garbage.
        assert matched == [0, 1]
        assert disconnected_network.is_connected_path(matched)

    def test_connected_trajectory_is_one_segment(self, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=8.0,
                             noise_std=4.0, seed=3)
        trajectory = sampler.sample(build_path(tiny_network, hops=5),
                                    DepartureTime.from_hour(0, 9.0))
        matcher = HMMMapMatcher(tiny_network)
        segments = matcher.match_segments(trajectory)
        assert len(segments) == 1
        assert segments[0] == matcher.match(trajectory)


class TestImplEquivalence:
    """Reference and vectorized engines decode bit-identical paths."""

    @pytest.fixture(scope="class")
    def matchers(self, tiny_network):
        return (HMMMapMatcher(tiny_network, impl="reference"),
                HMMMapMatcher(tiny_network, impl="vectorized"))

    def test_fixed_seed_trajectories_decode_identically(self, matchers, tiny_network):
        reference, vectorized = matchers
        speed_model = SpeedModel(tiny_network, seed=0)
        for seed in range(6):
            sampler = GPSSampler(tiny_network, speed_model, sample_interval=7.0,
                                 noise_std=6.0, seed=seed)
            start = seed % tiny_network.num_nodes
            path = build_path(tiny_network, start_node=start, hops=4 + seed)
            if not path:
                continue
            trajectory = sampler.sample(path, DepartureTime.from_hour(seed % 7, 9.0))
            assert reference.match(trajectory) == vectorized.match(trajectory)
            assert (reference.match_segments(trajectory)
                    == vectorized.match_segments(trajectory))

    def test_candidate_sets_identical(self, matchers, tiny_network):
        reference, vectorized = matchers
        rng = np.random.default_rng(11)
        positions = rng.uniform(-100.0, 900.0, size=(12, 2))
        ref_sets = reference._reference_candidate_sets(positions)
        vec_sets = vectorized._vectorized_candidate_sets(positions)
        for ref_arrays, vec_arrays in zip(ref_sets, vec_sets):
            for ref_value, vec_value in zip(ref_arrays, vec_arrays):
                assert np.array_equal(ref_value, vec_value)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           hops=st.integers(min_value=2, max_value=8),
           noise=st.floats(min_value=0.0, max_value=15.0),
           interval=st.sampled_from([4.0, 10.0, 25.0]))
    @settings(max_examples=25, deadline=None)
    def test_decode_equivalence_property(self, matchers, tiny_network,
                                         seed, hops, noise, interval):
        reference, vectorized = matchers
        speed_model = SpeedModel(tiny_network, seed=0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=interval,
                             noise_std=noise, seed=seed)
        start = seed % tiny_network.num_nodes
        path = build_path(tiny_network, start_node=start, hops=hops)
        if not path:
            return
        trajectory = sampler.sample(
            path, DepartureTime.from_hour(seed % 7, 6.0 + (seed % 16)))
        assert reference.match(trajectory) == vectorized.match(trajectory)
