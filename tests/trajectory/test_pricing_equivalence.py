"""Equivalence suites: batched trip pricing vs the per-edge reference loops.

* ``level_batch`` / ``edge_speeds`` / ``edge_travel_time_vector`` /
  ``path_travel_times(grid=False)`` are elementwise the same IEEE operations
  as the scalar reference, so equality is exact (``==``, not approx).
* ``grid=True`` quantises congestion to time slots; it must stay within a
  small relative band of the continuous model.
* The ``impl="vectorized"`` simulator must produce bit-identical trips to
  the reference simulator under one seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal import DepartureTime
from repro.trajectory import CongestionProfile, SpeedModel, TripSimulator

departure_times = st.tuples(
    st.integers(min_value=0, max_value=6),
    st.floats(min_value=0.0, max_value=23.99, allow_nan=False),
).map(lambda pair: DepartureTime.from_hour(*pair))


def random_paths(network, rng, count, max_edges):
    """Connected random paths over the network (graph-walk construction)."""
    paths = []
    for _ in range(count):
        node = int(rng.integers(0, network.num_nodes))
        path = []
        for _ in range(max_edges):
            edges = network.out_edges(node)
            if not edges:
                break
            edge = int(edges[rng.integers(0, len(edges))])
            path.append(edge)
            node = network.edge_endpoints(edge)[1]
        if path:
            paths.append(path)
    return paths


class TestExactEquivalence:
    @given(departure_times)
    @settings(max_examples=60, deadline=None)
    def test_level_batch_matches_scalar(self, departure_time):
        profile = CongestionProfile()
        batch = profile.level_batch(
            np.array([departure_time.day_of_week]),
            np.array([departure_time.seconds]))
        assert float(batch[0]) == profile.level(departure_time)

    def test_level_batch_matches_scalar_pow_ulp_regression(self):
        """Regression: CPython float ** 2.0 (libm pow) could land one ulp
        away from numpy's array squaring inside ``_bump``, breaking exact
        scalar-vs-batch equality at this Hypothesis-found departure time."""
        profile = CongestionProfile()
        departure_time = DepartureTime.from_hour(5, 4.363320136857637)
        batch = profile.level_batch(
            np.array([departure_time.day_of_week]),
            np.array([departure_time.seconds]))
        assert float(batch[0]) == profile.level(departure_time)

    @given(departure_times)
    @settings(max_examples=30, deadline=None)
    def test_edge_vectors_match_scalar_loop(self, tiny_network, departure_time):
        model = SpeedModel(tiny_network, seed=0)
        speeds = model.edge_speeds(departure_time)
        times = model.edge_travel_time_vector(departure_time)
        for edge in range(tiny_network.num_edges):
            assert float(speeds[edge]) == model.edge_speed(edge, departure_time)
            assert float(times[edge]) == model.edge_travel_time(edge, departure_time)

    @given(departure_times, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_batched_path_pricing_matches_loop(self, tiny_network, departure_time,
                                               seed):
        model = SpeedModel(tiny_network, seed=0)
        rng = np.random.default_rng(seed)
        paths = random_paths(tiny_network, rng, count=6, max_edges=12)
        batched = model.path_travel_times(paths, departure_time)
        looped = np.array([model.path_travel_time(path, departure_time)
                           for path in paths])
        np.testing.assert_array_equal(batched, looped)

    def test_empty_batch(self, tiny_network):
        model = SpeedModel(tiny_network, seed=0)
        assert model.path_travel_times([], DepartureTime.from_hour(0, 8.0)).shape == (0,)


class TestGridPricing:
    def test_slot_matrix_shape_and_cache(self, tiny_network):
        model = SpeedModel(tiny_network, seed=0)
        matrix = model.slot_speed_matrix(slots_per_day=48)
        assert matrix.shape == (tiny_network.num_edges, 7 * 48)
        assert model.slot_speed_matrix(slots_per_day=48) is matrix
        assert (matrix >= SpeedModel.MIN_SPEED_KMH).all()

    def test_slot_matrix_columns_match_slot_start_speeds(self, tiny_network):
        model = SpeedModel(tiny_network, seed=0)
        matrix = model.slot_speed_matrix(slots_per_day=24)
        departure = DepartureTime.from_hour(2, 17.0)  # start of slot 17, day 2
        column = 2 * 24 + 17
        np.testing.assert_array_equal(matrix[:, column],
                                      model.edge_speeds(departure))

    @given(departure_times, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_grid_pricing_close_to_continuous(self, tiny_network, departure_time,
                                              seed):
        model = SpeedModel(tiny_network, seed=0)
        rng = np.random.default_rng(seed)
        paths = random_paths(tiny_network, rng, count=5, max_edges=10)
        exact = model.path_travel_times(paths, departure_time)
        grid = model.path_travel_times(paths, departure_time, grid=True)
        # Quantisation error compounds along a path and is amplified on
        # near-floor speeds during peak ramps; adversarial random walks stay
        # within 15% (realistic candidate corpora stay within 2% — gated by
        # bench_pretraining_pipeline --check).
        np.testing.assert_allclose(grid, exact, rtol=0.15)


class TestSimulatorImplEquivalence:
    def test_vectorized_simulator_bit_identical(self, tiny_network):
        def run(impl):
            simulator = TripSimulator(
                tiny_network, speed_model=SpeedModel(tiny_network, seed=0),
                seed=9, min_trip_edges=2, impl=impl)
            return simulator.simulate(12)

        reference = run("reference")
        vectorized = run("vectorized")
        assert len(reference) == len(vectorized) == 12
        for ref_trip, vec_trip in zip(reference, vectorized):
            assert ref_trip.path == vec_trip.path
            assert ref_trip.travel_time == vec_trip.travel_time
            assert ref_trip.departure_time == vec_trip.departure_time
            assert ref_trip.alternatives == vec_trip.alternatives
            assert (ref_trip.origin, ref_trip.destination) == (
                vec_trip.origin, vec_trip.destination)
