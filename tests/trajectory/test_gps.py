"""Tests for GPS trajectory synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.temporal import DepartureTime
from repro.trajectory import GPSSampler, SpeedModel


def build_path(network, hops=4):
    path = []
    node = 0
    for _ in range(hops):
        edges = network.out_edges(node)
        if not edges:
            break
        path.append(edges[0])
        node = network.edge_endpoints(edges[0])[1]
    return path


class TestGPSSampler:
    @pytest.fixture(scope="class")
    def sampler(self, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        return GPSSampler(tiny_network, speed_model, sample_interval=10.0,
                          noise_std=5.0, seed=0)

    def test_trajectory_has_points_and_truth(self, sampler, tiny_network):
        path = build_path(tiny_network)
        trajectory = sampler.sample(path, DepartureTime.from_hour(0, 9.0))
        assert len(trajectory) >= 2
        assert trajectory.true_path == path

    def test_timestamps_monotonic(self, sampler, tiny_network):
        path = build_path(tiny_network)
        trajectory = sampler.sample(path, DepartureTime.from_hour(0, 10.0))
        timestamps = [p.timestamp for p in trajectory]
        assert all(b >= a for a, b in zip(timestamps, timestamps[1:]))

    def test_duration_close_to_travel_time(self, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0, noise_std=0.0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=5.0,
                             noise_std=0.0, seed=0)
        path = build_path(tiny_network)
        departure = DepartureTime.from_hour(0, 7.0)
        trajectory = sampler.sample(path, departure)
        expected = speed_model.path_travel_time(path, departure)
        assert trajectory.duration == pytest.approx(expected, rel=0.05)

    def test_points_near_path_geometry(self, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0, noise_std=0.0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=5.0,
                             noise_std=0.0, seed=0)
        path = build_path(tiny_network)
        trajectory = sampler.sample(path, DepartureTime.from_hour(0, 7.0))
        positions = trajectory.positions()
        # Without noise, every point must lie within the bounding box of the
        # path's node coordinates (straight-line edges).
        nodes = tiny_network.path_nodes(path)
        coords = np.array([tiny_network.node_coordinates(n) for n in nodes])
        margin = 1.0
        assert (positions[:, 0] >= coords[:, 0].min() - margin).all()
        assert (positions[:, 0] <= coords[:, 0].max() + margin).all()

    def test_sampling_rate_controls_point_count(self, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0)
        dense = GPSSampler(tiny_network, speed_model, sample_interval=2.0, seed=0)
        sparse = GPSSampler(tiny_network, speed_model, sample_interval=30.0, seed=0)
        path = build_path(tiny_network)
        departure = DepartureTime.from_hour(0, 9.0)
        assert len(dense.sample(path, departure)) > len(sparse.sample(path, departure))

    def test_invalid_parameters(self, tiny_network):
        speed_model = SpeedModel(tiny_network)
        with pytest.raises(ValueError):
            GPSSampler(tiny_network, speed_model, sample_interval=0.0)
        with pytest.raises(ValueError):
            GPSSampler(tiny_network, speed_model, noise_std=-1.0)

    def test_empty_path_raises_value_error(self, sampler):
        with pytest.raises(ValueError, match="empty path"):
            sampler.sample([], DepartureTime.from_hour(0, 9.0))

    def test_no_duplicate_fix_when_duration_is_exact_multiple(self, tiny_network):
        """total_time % sample_interval == 0 must not emit two final fixes."""

        class ConstantSpeedModel:
            def edge_travel_time(self, edge, clock, rng=None):
                return 10.0

        sampler = GPSSampler(tiny_network, ConstantSpeedModel(),
                             sample_interval=10.0, noise_std=0.0, seed=0)
        path = build_path(tiny_network, hops=3)
        trajectory = sampler.sample(path, DepartureTime.from_hour(0, 9.0))
        timestamps = [p.timestamp for p in trajectory]
        # 3 edges x 10 s at a 10 s interval: fixes at 0, 10, 20 plus the
        # final fix at 30 — not a duplicated pair at t = 30.
        assert timestamps == [0.0, 10.0, 20.0, 30.0]
        assert all(b > a for a, b in zip(timestamps, timestamps[1:]))

    def test_final_fix_still_appended_for_short_paths(self, tiny_network):
        speed_model = SpeedModel(tiny_network, seed=0, noise_std=0.0)
        sampler = GPSSampler(tiny_network, speed_model, sample_interval=1e6,
                             noise_std=0.0, seed=0)
        path = build_path(tiny_network, hops=1)
        trajectory = sampler.sample(path, DepartureTime.from_hour(0, 9.0))
        assert len(trajectory) == 2
        assert trajectory.points[0].timestamp == 0.0
        assert trajectory.points[-1].timestamp == trajectory.duration
