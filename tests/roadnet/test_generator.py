"""Tests for the synthetic city generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet import CityConfig, ROAD_TYPES, generate_city_network


class TestCityConfig:
    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            CityConfig(name="x", grid_rows=1, grid_cols=5)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            CityConfig(name="x", grid_rows=4, grid_cols=4, one_way_fraction=1.5)
        with pytest.raises(ValueError):
            CityConfig(name="x", grid_rows=4, grid_cols=4, signal_fraction=-0.1)

    def test_rejects_bad_arterial_spacing(self):
        with pytest.raises(ValueError):
            CityConfig(name="x", grid_rows=4, grid_cols=4, arterial_every=1)


class TestGeneratedNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        return generate_city_network(
            CityConfig(name="gen-test", grid_rows=6, grid_cols=5, seed=3))

    def test_node_count_includes_ring(self, network):
        # 6x5 grid plus 4 motorway ring corners.
        assert network.num_nodes == 6 * 5 + 4

    def test_edges_exist_and_features_valid(self, network):
        assert network.num_edges > 0
        for edge in range(network.num_edges):
            features = network.edge_features(edge)
            assert features.road_type in ROAD_TYPES
            assert features.length > 0

    def test_contains_multiple_road_types(self, network):
        types = {network.edge_features(e).road_type for e in range(network.num_edges)}
        assert "motorway" in types
        assert "residential" in types or "tertiary" in types
        assert len(types) >= 3

    def test_deterministic_given_seed(self):
        config = CityConfig(name="det", grid_rows=4, grid_cols=4, seed=9)
        a = generate_city_network(config)
        b = generate_city_network(config)
        assert a.num_nodes == b.num_nodes
        assert a.num_edges == b.num_edges
        lengths_a = [a.edge_length(e) for e in range(a.num_edges)]
        lengths_b = [b.edge_length(e) for e in range(b.num_edges)]
        np.testing.assert_allclose(lengths_a, lengths_b)

    def test_different_seeds_differ(self):
        a = generate_city_network(CityConfig(name="s1", grid_rows=4, grid_cols=4, seed=1))
        b = generate_city_network(CityConfig(name="s2", grid_rows=4, grid_cols=4, seed=2))
        lengths_a = [a.edge_length(e) for e in range(min(a.num_edges, b.num_edges))]
        lengths_b = [b.edge_length(e) for e in range(min(a.num_edges, b.num_edges))]
        assert not np.allclose(lengths_a, lengths_b)

    def test_no_highway_ring_option(self):
        network = generate_city_network(
            CityConfig(name="no-ring", grid_rows=4, grid_cols=4, highway_ring=False, seed=0))
        assert network.num_nodes == 16
        types = {network.edge_features(e).road_type for e in range(network.num_edges)}
        assert "motorway" not in types

    def test_grid_is_strongly_connected_enough(self, network):
        """Every grid node should reach at least one neighbour and be reachable."""
        dead_out = [n for n in range(network.num_nodes) if not network.out_edges(n)]
        dead_in = [n for n in range(network.num_nodes) if not network.in_edges(n)]
        assert not dead_out
        assert not dead_in

    def test_one_way_fraction_respected_roughly(self):
        heavy = generate_city_network(CityConfig(
            name="ow", grid_rows=8, grid_cols=8, one_way_fraction=0.9, seed=5))
        light = generate_city_network(CityConfig(
            name="ow2", grid_rows=8, grid_cols=8, one_way_fraction=0.0, seed=5))
        one_way_heavy = sum(heavy.edge_features(e).one_way for e in range(heavy.num_edges))
        one_way_light = sum(light.edge_features(e).one_way for e in range(light.num_edges))
        assert one_way_light == 0
        assert one_way_heavy > 0
