"""Tests for the segment grid index used by map-matching candidate search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet import SegmentGridIndex


def segment_arrays(network):
    starts = np.zeros((network.num_edges, 2))
    ends = np.zeros((network.num_edges, 2))
    for edge in range(network.num_edges):
        source, target = network.edge_endpoints(edge)
        starts[edge] = network.node_coordinates(source)
        ends[edge] = network.node_coordinates(target)
    return starts, ends


def segment_distances(starts, ends, point):
    point = np.asarray(point, dtype=np.float64)
    direction = ends - starts
    length_sq = np.maximum((direction ** 2).sum(axis=1), 1e-9)
    t = np.clip(((point - starts) * direction).sum(axis=1) / length_sq, 0.0, 1.0)
    projection = starts + t[:, None] * direction
    return np.sqrt(((projection - point) ** 2).sum(axis=1))


class TestSegmentGridIndex:
    @pytest.fixture(scope="class")
    def indexed(self, tiny_network):
        starts, ends = segment_arrays(tiny_network)
        return SegmentGridIndex(starts, ends, cell_size=120.0), starts, ends

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SegmentGridIndex(np.zeros((2, 2)), np.ones((2, 2)), cell_size=0.0)
        with pytest.raises(ValueError):
            SegmentGridIndex(np.zeros((2, 3)), np.ones((2, 3)), cell_size=50.0)
        with pytest.raises(ValueError):
            SegmentGridIndex(np.zeros((2, 2)), np.ones((3, 2)), cell_size=50.0)

    def test_query_is_sorted_and_unique(self, indexed):
        index, _, _ = indexed
        edges = index.query((400.0, 400.0), 150.0)
        assert len(edges)
        assert np.array_equal(edges, np.unique(edges))

    def test_query_superset_of_radius_neighbourhood(self, indexed):
        """Every edge within the radius must be returned (may include more)."""
        index, starts, ends = indexed
        rng = np.random.default_rng(9)
        for _ in range(25):
            point = rng.uniform(-300.0, 1200.0, size=2)
            radius = float(rng.uniform(10.0, 300.0))
            returned = set(int(e) for e in index.query(point, radius))
            within = set(np.flatnonzero(
                segment_distances(starts, ends, point) <= radius).tolist())
            assert within <= returned

    def test_far_away_point_returns_empty(self, indexed):
        index, _, _ = indexed
        assert index.query((1e7, 1e7), 50.0).size == 0

    def test_negative_radius_rejected(self, indexed):
        index, _, _ = indexed
        with pytest.raises(ValueError):
            index.query((0.0, 0.0), -1.0)

    def test_empty_index(self):
        index = SegmentGridIndex(np.zeros((0, 2)), np.zeros((0, 2)),
                                 cell_size=100.0)
        assert index.query((0.0, 0.0), 100.0).size == 0
