"""Tests for the RoadNetwork graph model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet import EdgeFeatures, Path, RoadNetwork


def simple_features(length=100.0):
    return EdgeFeatures(road_type="residential", lanes=1, one_way=False,
                        traffic_signals=False, length=length, speed_limit=36.0)


@pytest.fixture()
def triangle_network():
    """Three nodes connected in a directed cycle 0 -> 1 -> 2 -> 0."""
    network = RoadNetwork(name="triangle")
    for i in range(3):
        network.add_node(i * 100.0, 0.0)
    network.add_edge(0, 1, simple_features(100.0))
    network.add_edge(1, 2, simple_features(200.0))
    network.add_edge(2, 0, simple_features(300.0))
    return network


class TestConstruction:
    def test_node_and_edge_counts(self, triangle_network):
        assert triangle_network.num_nodes == 3
        assert triangle_network.num_edges == 3

    def test_self_loop_rejected(self, triangle_network):
        with pytest.raises(ValueError):
            triangle_network.add_edge(0, 0, simple_features())

    def test_unknown_node_rejected(self, triangle_network):
        with pytest.raises(KeyError):
            triangle_network.add_edge(0, 99, simple_features())

    def test_wrong_feature_type_rejected(self, triangle_network):
        with pytest.raises(TypeError):
            triangle_network.add_edge(0, 2, {"length": 10})

    def test_edge_lookup(self, triangle_network):
        assert triangle_network.edge_id(0, 1) == 0
        assert triangle_network.edge_id(1, 0) is None

    def test_adjacency(self, triangle_network):
        assert triangle_network.out_edges(0) == (0,)
        assert triangle_network.in_edges(0) == (2,)


class TestGeometry:
    def test_edge_midpoint(self, triangle_network):
        x, y = triangle_network.edge_midpoint(0)
        assert x == pytest.approx(50.0)
        assert y == pytest.approx(0.0)

    def test_point_along_edge_clamps_fraction(self, triangle_network):
        start = triangle_network.point_along_edge(0, -1.0)
        end = triangle_network.point_along_edge(0, 2.0)
        assert start == triangle_network.node_coordinates(0)
        assert end == triangle_network.node_coordinates(1)


class TestPaths:
    def test_connected_path_detection(self, triangle_network):
        assert triangle_network.is_connected_path([0, 1, 2])
        assert not triangle_network.is_connected_path([0, 2])
        assert not triangle_network.is_connected_path([])

    def test_path_length_and_time(self, triangle_network):
        assert triangle_network.path_length([0, 1]) == pytest.approx(300.0)
        # 36 km/h = 10 m/s -> 30 seconds.
        assert triangle_network.path_free_flow_time([0, 1]) == pytest.approx(30.0)

    def test_path_nodes(self, triangle_network):
        assert triangle_network.path_nodes([0, 1, 2]) == [0, 1, 2, 0]

    def test_path_object_validation(self):
        with pytest.raises(ValueError):
            Path([])
        path = Path([3, 4, 5])
        assert len(path) == 3
        assert path[1] == 4
        assert Path([3, 4, 5]) == path
        assert hash(Path([3, 4, 5])) == hash(path)


class TestExportsAndStats:
    def test_feature_matrix_shape(self, triangle_network):
        matrix = triangle_network.edge_feature_matrix()
        assert matrix.shape == (3, 4)

    def test_statistics(self, triangle_network):
        stats = triangle_network.statistics()
        assert stats["num_nodes"] == 3
        assert stats["num_edges"] == 3
        assert stats["total_length_km"] == pytest.approx(0.6)

    def test_to_networkx_roundtrip(self, triangle_network):
        graph = triangle_network.to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert graph[0][1]["edge_id"] == 0
        assert graph[0][1]["length"] == pytest.approx(100.0)
