"""Tests for edge features and the feature encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet import MAX_LANES, ROAD_TYPES, EdgeFeatures, FeatureEncoder


def make_features(**overrides):
    defaults = dict(road_type="residential", lanes=1, one_way=False,
                    traffic_signals=False, length=120.0, speed_limit=40.0)
    defaults.update(overrides)
    return EdgeFeatures(**defaults)


class TestEdgeFeatures:
    def test_valid_construction(self):
        features = make_features()
        assert features.road_type == "residential"

    def test_unknown_road_type_rejected(self):
        with pytest.raises(ValueError):
            make_features(road_type="goat-track")

    def test_lane_bounds_enforced(self):
        with pytest.raises(ValueError):
            make_features(lanes=0)
        with pytest.raises(ValueError):
            make_features(lanes=MAX_LANES + 1)

    def test_positive_length_required(self):
        with pytest.raises(ValueError):
            make_features(length=0.0)

    def test_positive_speed_required(self):
        with pytest.raises(ValueError):
            make_features(speed_limit=-5.0)

    def test_free_flow_time(self):
        features = make_features(length=1000.0, speed_limit=36.0)
        # 36 km/h = 10 m/s -> 100 seconds.
        assert features.free_flow_time == pytest.approx(100.0)

    def test_frozen(self):
        features = make_features()
        with pytest.raises(AttributeError):
            features.lanes = 3


class TestFeatureEncoder:
    def test_cardinalities(self):
        encoder = FeatureEncoder()
        assert encoder.num_road_types == len(ROAD_TYPES)
        assert encoder.num_lane_buckets == MAX_LANES
        assert encoder.num_one_way == 2
        assert encoder.num_signals == 2

    def test_categorical_indices(self):
        encoder = FeatureEncoder()
        features = make_features(road_type="primary", lanes=3, one_way=True,
                                 traffic_signals=False)
        rt, lanes, ow, ts = encoder.categorical_indices(features)
        assert rt == ROAD_TYPES.index("primary")
        assert lanes == 2
        assert ow == 1
        assert ts == 0

    def test_one_hot_length_and_sum(self):
        encoder = FeatureEncoder()
        vector = encoder.one_hot(make_features())
        expected_length = len(ROAD_TYPES) + MAX_LANES + 2 + 2
        assert len(vector) == expected_length
        assert vector.sum() == pytest.approx(4.0)

    def test_encode_edges_matrix(self):
        encoder = FeatureEncoder()
        rows = [make_features(road_type="motorway", lanes=3),
                make_features(road_type="service", lanes=1, traffic_signals=True)]
        matrix = encoder.encode_edges(rows)
        assert matrix.shape == (2, 4)
        assert matrix.dtype == np.int64
        assert matrix[0, 0] == ROAD_TYPES.index("motorway")
        assert matrix[1, 3] == 1
