"""Tests for shortest path / k-shortest paths / path similarity."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.roadnet import (
    CityConfig,
    EdgeFeatures,
    RoadNetwork,
    generate_city_network,
    k_shortest_paths,
    path_similarity,
    shortest_path,
)


def features(length):
    return EdgeFeatures(road_type="residential", lanes=1, one_way=False,
                        traffic_signals=False, length=length, speed_limit=36.0)


@pytest.fixture()
def diamond_network():
    """Two routes from 0 to 3: a short one via 1 and a long one via 2."""
    network = RoadNetwork()
    for i in range(4):
        network.add_node(float(i), 0.0)
    network.add_edge(0, 1, features(100.0))   # 0
    network.add_edge(1, 3, features(100.0))   # 1
    network.add_edge(0, 2, features(300.0))   # 2
    network.add_edge(2, 3, features(300.0))   # 3
    return network


class TestShortestPath:
    def test_prefers_cheaper_route(self, diamond_network):
        path = shortest_path(diamond_network, 0, 3)
        assert path == [0, 1]

    def test_same_source_and_target(self, diamond_network):
        assert shortest_path(diamond_network, 2, 2) == []

    def test_unreachable_returns_none(self, diamond_network):
        # Node 3 has no outgoing edges, so 3 -> 0 is unreachable.
        assert shortest_path(diamond_network, 3, 0) is None

    def test_banned_edges_force_detour(self, diamond_network):
        path = shortest_path(diamond_network, 0, 3, banned_edges={0})
        assert path == [2, 3]

    def test_custom_cost_function(self, diamond_network):
        # Make the short route expensive.
        costs = {0: 1000.0, 1: 1000.0, 2: 1.0, 3: 1.0}
        path = shortest_path(diamond_network, 0, 3, edge_cost=lambda e: costs[e])
        assert path == [2, 3]

    def test_negative_cost_rejected(self, diamond_network):
        with pytest.raises(ValueError):
            shortest_path(diamond_network, 0, 3, edge_cost=lambda e: -1.0)

    def test_matches_networkx_on_generated_city(self):
        network = generate_city_network(
            CityConfig(name="sp", grid_rows=5, grid_cols=5, seed=2))
        graph = network.to_networkx()
        rng = np.random.default_rng(0)
        for _ in range(5):
            source, target = rng.integers(0, network.num_nodes, size=2)
            ours = shortest_path(network, int(source), int(target),
                                 edge_cost=network.edge_length)
            try:
                reference = nx.shortest_path_length(
                    graph, int(source), int(target), weight="length")
            except nx.NetworkXNoPath:
                assert ours is None
                continue
            assert ours is not None
            our_length = sum(network.edge_length(e) for e in ours)
            assert our_length == pytest.approx(reference, rel=1e-9)


class TestKShortestPaths:
    def test_returns_distinct_ordered_paths(self, diamond_network):
        paths = k_shortest_paths(diamond_network, 0, 3, k=2)
        assert len(paths) == 2
        assert paths[0] == [0, 1]
        assert paths[1] == [2, 3]

    def test_all_paths_are_connected(self):
        network = generate_city_network(
            CityConfig(name="ksp", grid_rows=5, grid_cols=5, seed=4))
        paths = k_shortest_paths(network, 0, network.num_nodes // 2, k=4)
        assert paths
        for path in paths:
            assert network.is_connected_path(path)

    def test_costs_are_nondecreasing(self):
        network = generate_city_network(
            CityConfig(name="ksp2", grid_rows=5, grid_cols=5, seed=8))
        paths = k_shortest_paths(network, 0, network.num_nodes - 5, k=4,
                                 edge_cost=network.edge_length)
        costs = [sum(network.edge_length(e) for e in p) for p in paths]
        assert costs == sorted(costs)

    def test_invalid_k(self, diamond_network):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond_network, 0, 3, k=0)

    def test_unreachable_gives_empty_list(self, diamond_network):
        assert k_shortest_paths(diamond_network, 3, 0, k=3) == []


class TestPathSimilarity:
    def test_identical_paths(self, diamond_network):
        assert path_similarity(diamond_network, [0, 1], [0, 1]) == pytest.approx(1.0)

    def test_disjoint_paths(self, diamond_network):
        assert path_similarity(diamond_network, [0, 1], [2, 3]) == pytest.approx(0.0)

    def test_partial_overlap_weighted_by_length(self, diamond_network):
        # Shared edge 0 (100m); union = edges 0,1,2 = 500m.
        value = path_similarity(diamond_network, [0, 1], [0, 2])
        assert value == pytest.approx(100.0 / 500.0)

    def test_symmetry(self, diamond_network):
        a = path_similarity(diamond_network, [0, 1], [0, 2])
        b = path_similarity(diamond_network, [0, 2], [0, 1])
        assert a == pytest.approx(b)

    def test_empty_path_gives_zero(self, diamond_network):
        assert path_similarity(diamond_network, [], [0, 1]) == 0.0
