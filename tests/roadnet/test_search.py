"""Tests for shortest path / k-shortest paths / path similarity."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.roadnet import (
    CityConfig,
    DijkstraCache,
    EdgeFeatures,
    RoadNetwork,
    generate_city_network,
    k_shortest_paths,
    multi_target_distances,
    path_similarity,
    shortest_path,
)


def features(length):
    return EdgeFeatures(road_type="residential", lanes=1, one_way=False,
                        traffic_signals=False, length=length, speed_limit=36.0)


@pytest.fixture()
def diamond_network():
    """Two routes from 0 to 3: a short one via 1 and a long one via 2."""
    network = RoadNetwork()
    for i in range(4):
        network.add_node(float(i), 0.0)
    network.add_edge(0, 1, features(100.0))   # 0
    network.add_edge(1, 3, features(100.0))   # 1
    network.add_edge(0, 2, features(300.0))   # 2
    network.add_edge(2, 3, features(300.0))   # 3
    return network


class TestShortestPath:
    def test_prefers_cheaper_route(self, diamond_network):
        path = shortest_path(diamond_network, 0, 3)
        assert path == [0, 1]

    def test_same_source_and_target(self, diamond_network):
        assert shortest_path(diamond_network, 2, 2) == []

    def test_unreachable_returns_none(self, diamond_network):
        # Node 3 has no outgoing edges, so 3 -> 0 is unreachable.
        assert shortest_path(diamond_network, 3, 0) is None

    def test_banned_edges_force_detour(self, diamond_network):
        path = shortest_path(diamond_network, 0, 3, banned_edges={0})
        assert path == [2, 3]

    def test_custom_cost_function(self, diamond_network):
        # Make the short route expensive.
        costs = {0: 1000.0, 1: 1000.0, 2: 1.0, 3: 1.0}
        path = shortest_path(diamond_network, 0, 3, edge_cost=lambda e: costs[e])
        assert path == [2, 3]

    def test_negative_cost_rejected(self, diamond_network):
        with pytest.raises(ValueError):
            shortest_path(diamond_network, 0, 3, edge_cost=lambda e: -1.0)

    def test_matches_networkx_on_generated_city(self):
        network = generate_city_network(
            CityConfig(name="sp", grid_rows=5, grid_cols=5, seed=2))
        graph = network.to_networkx()
        rng = np.random.default_rng(0)
        for _ in range(5):
            source, target = rng.integers(0, network.num_nodes, size=2)
            ours = shortest_path(network, int(source), int(target),
                                 edge_cost=network.edge_length)
            try:
                reference = nx.shortest_path_length(
                    graph, int(source), int(target), weight="length")
            except nx.NetworkXNoPath:
                assert ours is None
                continue
            assert ours is not None
            our_length = sum(network.edge_length(e) for e in ours)
            assert our_length == pytest.approx(reference, rel=1e-9)


@pytest.fixture()
def spur_loop_network():
    """A graph where edge-only spur bans let Yen emit a looped path.

    The 0-3 shortest path is 0-1-2-3.  Banning only edge 1->2 in the spur
    search from node 1 leaves the detour 1-4-0-2-3 open, which concatenated
    with the root [0->1] revisits node 0.
    """
    network = RoadNetwork()
    for i in range(5):
        network.add_node(float(i), 0.0)
    network.add_edge(0, 1, features(100.0))   # 0
    network.add_edge(1, 2, features(100.0))   # 1
    network.add_edge(2, 3, features(100.0))   # 2
    network.add_edge(1, 4, features(100.0))   # 3
    network.add_edge(4, 0, features(100.0))   # 4
    network.add_edge(0, 2, features(1000.0))  # 5
    return network


class TestBannedNodes:
    def test_banned_nodes_force_detour(self, diamond_network):
        path = shortest_path(diamond_network, 0, 3, banned_nodes={1})
        assert path == [2, 3]

    def test_banned_nodes_can_disconnect(self, diamond_network):
        assert shortest_path(diamond_network, 0, 3, banned_nodes={1, 2}) is None


class TestMultiTargetDistances:
    def test_matches_shortest_path_costs(self):
        network = generate_city_network(
            CityConfig(name="mt", grid_rows=5, grid_cols=5, seed=2))
        rng = np.random.default_rng(1)
        source = int(rng.integers(0, network.num_nodes))
        targets = [int(t) for t in rng.integers(0, network.num_nodes, size=8)]
        distances = multi_target_distances(network, source, targets,
                                           edge_cost=network.edge_length)
        for target in targets:
            path = shortest_path(network, source, target,
                                 edge_cost=network.edge_length)
            if path is None:
                assert distances[target] == float("inf")
            else:
                assert distances[target] == sum(network.edge_length(e) for e in path)

    def test_source_distance_is_zero(self, diamond_network):
        assert multi_target_distances(diamond_network, 0, [0])[0] == 0.0

    def test_unreachable_target_is_infinite(self, diamond_network):
        assert multi_target_distances(diamond_network, 3, [0])[0] == float("inf")

    def test_max_cost_bounds_the_search(self, diamond_network):
        # 0 -> 3 costs 200 via lengths; a 150 bound cuts it off.
        distances = multi_target_distances(diamond_network, 0, [1, 3],
                                           edge_cost=diamond_network.edge_length,
                                           max_cost=150.0)
        assert distances[1] == 100.0
        assert distances[3] == float("inf")


class TestDijkstraCache:
    def test_matches_shortest_path_costs_exactly(self):
        network = generate_city_network(
            CityConfig(name="dc", grid_rows=5, grid_cols=5, seed=6))
        cache = DijkstraCache(network, edge_cost=network.edge_length)
        rng = np.random.default_rng(3)
        for _ in range(10):
            source = int(rng.integers(0, network.num_nodes))
            targets = [int(t) for t in rng.integers(0, network.num_nodes, size=5)]
            distances = cache.distances(source, targets)
            for target in targets:
                path = shortest_path(network, source, target,
                                     edge_cost=network.edge_length)
                if path is None:
                    assert distances[target] == float("inf")
                else:
                    # Bit-identical to the shortest_path edge-cost sum.
                    assert distances[target] == sum(
                        network.edge_length(e) for e in path)

    def test_resumed_queries_match_fresh_runs(self, diamond_network):
        cache = DijkstraCache(diamond_network,
                              edge_cost=diamond_network.edge_length)
        first = cache.distances(0, [1])
        second = cache.distances(0, [1, 2, 3])
        fresh = multi_target_distances(diamond_network, 0, [1, 2, 3],
                                       edge_cost=diamond_network.edge_length)
        assert first[1] == fresh[1]
        assert second == fresh

    def test_hit_miss_counters(self, diamond_network):
        cache = DijkstraCache(diamond_network)
        cache.distances(0, [3])
        cache.distances(0, [1])
        cache.distances(1, [3])
        assert cache.misses == 2
        assert cache.hits == 1

    def test_lru_eviction(self, diamond_network):
        cache = DijkstraCache(diamond_network, max_sources=2)
        cache.distances(0, [3])
        cache.distances(1, [3])
        cache.distances(2, [3])
        assert len(cache) == 2
        # Source 0 was least recently used; re-querying it is a miss again.
        cache.distances(0, [3])
        assert cache.misses == 4

    def test_clear(self, diamond_network):
        cache = DijkstraCache(diamond_network)
        cache.distances(0, [3])
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (0, 0)

    def test_invalid_capacity(self, diamond_network):
        with pytest.raises(ValueError):
            DijkstraCache(diamond_network, max_sources=0)


class TestKShortestPaths:
    def test_returns_distinct_ordered_paths(self, diamond_network):
        paths = k_shortest_paths(diamond_network, 0, 3, k=2)
        assert len(paths) == 2
        assert paths[0] == [0, 1]
        assert paths[1] == [2, 3]

    def test_all_paths_are_connected(self):
        network = generate_city_network(
            CityConfig(name="ksp", grid_rows=5, grid_cols=5, seed=4))
        paths = k_shortest_paths(network, 0, network.num_nodes // 2, k=4)
        assert paths
        for path in paths:
            assert network.is_connected_path(path)

    def test_costs_are_nondecreasing(self):
        network = generate_city_network(
            CityConfig(name="ksp2", grid_rows=5, grid_cols=5, seed=8))
        paths = k_shortest_paths(network, 0, network.num_nodes - 5, k=4,
                                 edge_cost=network.edge_length)
        costs = [sum(network.edge_length(e) for e in p) for p in paths]
        assert costs == sorted(costs)

    def test_invalid_k(self, diamond_network):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond_network, 0, 3, k=0)

    def test_unreachable_gives_empty_list(self, diamond_network):
        assert k_shortest_paths(diamond_network, 3, 0, k=3) == []

    def test_spur_paths_cannot_revisit_root_nodes(self, spur_loop_network):
        """Regression: edge-only spur bans used to emit looped paths.

        On this graph the old code returned [0, 3, 4, 5, 2] (node sequence
        0-1-4-0-2-3, revisiting node 0) as the third path.
        """
        paths = k_shortest_paths(spur_loop_network, 0, 3, k=3,
                                 edge_cost=spur_loop_network.edge_length)
        assert paths == [[0, 1, 2], [5, 2]]
        for path in paths:
            nodes = spur_loop_network.path_nodes(path)
            assert len(nodes) == len(set(nodes))

    def test_all_paths_are_loop_free_on_generated_city(self):
        network = generate_city_network(
            CityConfig(name="ksp3", grid_rows=5, grid_cols=5, seed=13))
        rng = np.random.default_rng(5)
        for _ in range(5):
            source, target = (int(n) for n in
                              rng.integers(0, network.num_nodes, size=2))
            if source == target:
                continue
            for path in k_shortest_paths(network, source, target, k=4,
                                         edge_cost=network.edge_length):
                nodes = network.path_nodes(path)
                assert len(nodes) == len(set(nodes))
                assert len(path) == len(set(path))


class TestPathSimilarity:
    def test_identical_paths(self, diamond_network):
        assert path_similarity(diamond_network, [0, 1], [0, 1]) == pytest.approx(1.0)

    def test_disjoint_paths(self, diamond_network):
        assert path_similarity(diamond_network, [0, 1], [2, 3]) == pytest.approx(0.0)

    def test_partial_overlap_weighted_by_length(self, diamond_network):
        # Shared edge 0 (100m); union = edges 0,1,2 = 500m.
        value = path_similarity(diamond_network, [0, 1], [0, 2])
        assert value == pytest.approx(100.0 / 500.0)

    def test_symmetry(self, diamond_network):
        a = path_similarity(diamond_network, [0, 1], [0, 2])
        b = path_similarity(diamond_network, [0, 2], [0, 1])
        assert a == pytest.approx(b)

    def test_empty_path_gives_zero(self, diamond_network):
        assert path_similarity(diamond_network, [], [0, 1]) == 0.0
