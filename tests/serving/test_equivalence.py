"""Golden equivalence suite for the path-embedding service.

The service must be a pure optimisation: for every bucket policy, batch
size and cache state, its output must match one-at-a-time ``WSCModel.embed``
calls to 1e-10 on a seeded synthetic dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WSCModel
from repro.serving import BUCKET_POLICIES, PathEmbeddingService

TOLERANCE = 1e-10


@pytest.fixture(scope="module")
def model(tiny_city, tiny_config, shared_resources):
    return WSCModel(tiny_city.network, tiny_config, resources=shared_resources)


@pytest.fixture(scope="module")
def workload(tiny_city):
    """A request mixing path lengths, duplicates and shuffled order."""
    paths = list(tiny_city.unlabeled.temporal_paths[:24])
    rng = np.random.default_rng(7)
    # Inject duplicates so caching/deduplication paths are exercised.
    paths = paths + [paths[i] for i in rng.integers(0, len(paths), size=8)]
    rng.shuffle(paths)
    return paths


@pytest.fixture(scope="module")
def golden(model, workload):
    """One-at-a-time reference embeddings, in request order."""
    return np.stack([model.embed([tp])[0] for tp in workload], axis=0)


@pytest.mark.parametrize("policy", sorted(BUCKET_POLICIES))
@pytest.mark.parametrize("cache_enabled", [False, True])
def test_service_matches_per_path_embedding(model, workload, golden,
                                            policy, cache_enabled):
    service = PathEmbeddingService(
        model, bucket_policy=policy, max_batch_size=8,
        cache_enabled=cache_enabled)
    served = service.embed(workload)
    assert served.shape == golden.shape
    np.testing.assert_allclose(served, golden, atol=TOLERANCE)


@pytest.mark.parametrize("max_batch_size", [1, 3, 64])
def test_service_matches_across_batch_sizes(model, workload, golden,
                                            max_batch_size):
    service = PathEmbeddingService(
        model, bucket_policy="fixed", max_batch_size=max_batch_size)
    np.testing.assert_allclose(service.embed(workload), golden, atol=TOLERANCE)


def test_hot_cache_matches_cold_cache(model, workload, golden):
    service = PathEmbeddingService(model, bucket_policy="pow2",
                                   cache_capacity=4096)
    cold = service.embed(workload)
    hot = service.embed(workload)
    np.testing.assert_allclose(cold, golden, atol=TOLERANCE)
    np.testing.assert_allclose(hot, golden, atol=TOLERANCE)
    # The second pass must be served entirely from the cache.
    assert service.cache.hits >= len(workload)


def test_request_order_is_preserved(model, workload):
    service = PathEmbeddingService(model, bucket_policy="exact")
    forward = service.embed(workload)
    reversed_out = service.embed(list(reversed(workload)))
    np.testing.assert_allclose(forward, reversed_out[::-1], atol=TOLERANCE)


def test_single_path_and_empty_requests(model, workload, golden):
    service = PathEmbeddingService(model)
    np.testing.assert_allclose(service.represent(workload[0]),
                               golden[0], atol=TOLERANCE)
    empty = service.embed([])
    assert empty.shape == (0, model.representation_dim)


def test_transformer_backend_equivalence(tiny_city, tiny_config, shared_resources):
    model = WSCModel(tiny_city.network, tiny_config, resources=shared_resources,
                     encoder_type="transformer")
    paths = list(tiny_city.unlabeled.temporal_paths[:12])
    golden = np.stack([model.embed([tp])[0] for tp in paths], axis=0)
    service = PathEmbeddingService(model, bucket_policy="fixed", max_batch_size=5)
    np.testing.assert_allclose(service.embed(paths), golden, atol=TOLERANCE)


def test_baseline_encoder_through_shared_interface(tiny_city, shared_resources):
    from repro.baselines import SpatialSequenceEncoder

    encoder = SpatialSequenceEncoder(
        tiny_city.network,
        topology_features=shared_resources.topology_features)
    paths = list(tiny_city.unlabeled.temporal_paths[:10])
    golden = np.stack([encoder.encode([tp])[0] for tp in paths], axis=0)
    service = PathEmbeddingService(encoder, bucket_policy="pow2", max_batch_size=4)
    np.testing.assert_allclose(service.embed(paths), golden, atol=TOLERANCE)
