"""Unit tests for bucket policies, serving metrics and the service's
bookkeeping (padding efficiency, scrape shape, dedup)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    BUCKET_POLICIES,
    FixedWidthBucketPolicy,
    PathEmbeddingService,
    PowerOfTwoBucketPolicy,
    ServiceMetrics,
    get_bucket_policy,
)


class TestBucketPolicies:
    @settings(max_examples=100, deadline=None)
    @given(
        lengths=st.lists(st.integers(1, 100), min_size=1, max_size=60),
        max_batch_size=st.integers(1, 16),
        policy_name=st.sampled_from(sorted(BUCKET_POLICIES)),
    )
    def test_plan_is_a_partition(self, lengths, max_batch_size, policy_name):
        policy = get_bucket_policy(policy_name)
        plan = policy.plan(lengths, max_batch_size)
        seen = np.concatenate(plan) if plan else np.array([], dtype=np.int64)
        assert sorted(seen.tolist()) == list(range(len(lengths)))
        for batch in plan:
            assert 1 <= len(batch) <= max_batch_size
            keys = {policy.bucket_key(lengths[i]) for i in batch}
            assert len(keys) == 1  # no batch straddles buckets

    def test_fixed_width_bounds_padding(self):
        policy = FixedWidthBucketPolicy(width=4)
        lengths = [1, 2, 3, 4, 5, 6, 7, 8, 9]
        for batch in policy.plan(lengths, max_batch_size=64):
            batch_lengths = [lengths[i] for i in batch]
            assert max(batch_lengths) - min(batch_lengths) < 4

    def test_pow2_bucket_boundaries(self):
        policy = PowerOfTwoBucketPolicy()
        assert policy.bucket_key(1) == 0
        assert policy.bucket_key(2) == 1
        assert policy.bucket_key(3) == policy.bucket_key(4) == 2
        assert policy.bucket_key(5) == policy.bucket_key(8) == 3
        assert policy.bucket_key(9) == 4

    def test_exact_policy_has_zero_padding(self):
        policy = get_bucket_policy("exact")
        lengths = [5, 3, 5, 7, 3, 3]
        for batch in policy.plan(lengths, max_batch_size=2):
            batch_lengths = {lengths[i] for i in batch}
            assert len(batch_lengths) == 1

    def test_none_policy_preserves_arrival_order(self):
        policy = get_bucket_policy("none")
        plan = policy.plan([9, 1, 5, 2, 7], max_batch_size=2)
        assert [batch.tolist() for batch in plan] == [[0, 1], [2, 3], [4]]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            get_bucket_policy("nope")

    def test_instance_passthrough(self):
        policy = FixedWidthBucketPolicy(width=2)
        assert get_bucket_policy(policy) is policy
        with pytest.raises(ValueError):
            get_bucket_policy(policy, width=3)


class TestServiceMetrics:
    def test_scrape_values(self):
        metrics = ServiceMetrics()
        metrics.record_request(10, 0.5)
        metrics.record_request(30, 1.5)
        metrics.record_batch(4, max_length=10, total_real_steps=25)
        metrics.record_batch(2, max_length=5, total_real_steps=10)

        scraped = metrics.scrape(cache_stats={"hits": 3, "hit_rate": 0.75})
        assert scraped["requests"] == 2
        assert scraped["paths_served"] == 40
        assert scraped["throughput_paths_per_s"] == pytest.approx(20.0)
        assert scraped["padding_efficiency"] == pytest.approx(35 / 50)
        assert scraped["latency_p50_ms"] == pytest.approx(1000.0)
        assert scraped["cache_hits"] == 3
        assert scraped["cache_hit_rate"] == 0.75

    def test_empty_metrics_are_finite(self):
        scraped = ServiceMetrics().scrape()
        assert scraped["throughput_paths_per_s"] == 0.0
        assert scraped["latency_p95_ms"] == 0.0
        assert scraped["padding_efficiency"] == 1.0


class CountingModel:
    """Length-encoding stub that counts encode calls and paths."""

    representation_dim = 2

    def __init__(self):
        self.calls = []

    def encode(self, temporal_paths):
        self.calls.append(len(temporal_paths))
        return np.array([[len(tp), tp.departure_time.slot_index]
                         for tp in temporal_paths], dtype=np.float64)


class TestServiceBookkeeping:
    def test_duplicates_encoded_once_per_request_with_cache(self, tiny_city):
        model = CountingModel()
        service = PathEmbeddingService(model)
        path = tiny_city.unlabeled.temporal_paths[0]
        result = service.embed([path, path, path])
        assert sum(model.calls) == 1
        assert result.shape == (3, 2)
        np.testing.assert_array_equal(result[0], result[1])

    def test_no_dedup_without_cache(self, tiny_city):
        # With the cache off the service must not assume the model is a pure
        # function of the key: every occurrence is encoded independently.
        model = CountingModel()
        service = PathEmbeddingService(model, cache_enabled=False)
        path = tiny_city.unlabeled.temporal_paths[0]
        result = service.embed([path, path, path])
        assert sum(model.calls) == 3
        assert result.shape == (3, 2)

    def test_cache_avoids_re_encoding_across_requests(self, tiny_city):
        model = CountingModel()
        service = PathEmbeddingService(model)
        paths = tiny_city.unlabeled.temporal_paths[:6]
        service.embed(paths)
        encoded_first = sum(model.calls)
        service.embed(paths)
        assert sum(model.calls) == encoded_first  # all hits, no new encodes
        assert service.cache.hits == len(paths)

    def test_exact_bucketing_reports_full_padding_efficiency(self, tiny_city):
        model = CountingModel()
        service = PathEmbeddingService(model, bucket_policy="exact",
                                       cache_enabled=False)
        service.embed(tiny_city.unlabeled.temporal_paths[:12])
        assert service.metrics.padding_efficiency == 1.0

    def test_scrape_includes_config_and_counters(self, tiny_city):
        service = PathEmbeddingService(CountingModel(), bucket_policy="fixed",
                                       max_batch_size=4)
        service.embed(tiny_city.unlabeled.temporal_paths[:5])
        scraped = service.scrape()
        assert scraped["bucket_policy"] == "fixed(width=8)"
        assert scraped["max_batch_size"] == 4
        assert scraped["cache_enabled"] is True
        assert scraped["paths_served"] == 5
        assert 0.0 < scraped["padding_efficiency"] <= 1.0
        assert scraped["latency_p95_ms"] >= scraped["latency_p50_ms"] >= 0.0

    def test_malformed_model_output_rejected(self, tiny_city):
        class BadModel:
            def encode(self, temporal_paths):
                return np.zeros(3)

        service = PathEmbeddingService(BadModel())
        with pytest.raises(ValueError):
            service.embed(tiny_city.unlabeled.temporal_paths[:2])

    def test_reset_metrics_keeps_cache_contents(self, tiny_city):
        model = CountingModel()
        service = PathEmbeddingService(model)
        paths = tiny_city.unlabeled.temporal_paths[:4]
        service.embed(paths)
        service.reset_metrics()
        assert service.scrape()["paths_served"] == 0
        service.embed(paths)
        assert service.cache.hits == len(paths)  # still warm


class TestCacheKeys:
    """Regression tests: the default cache key must never merge departure
    times a served model could distinguish (whatever its slot granularity)."""

    def test_default_key_distinguishes_sub_slot_times(self, tiny_city):
        from repro.datasets import TemporalPath
        from repro.serving import default_cache_key
        from repro.temporal import DepartureTime

        base = tiny_city.unlabeled.temporal_paths[0]
        # Same 5-minute slot, but a 4-minute-slot model would split them.
        early = TemporalPath(path=base.path,
                             departure_time=DepartureTime(0, 0.0))
        late = TemporalPath(path=base.path,
                            departure_time=DepartureTime(0, 270.0))
        assert default_cache_key(early) != default_cache_key(late)

    def test_slot_key_merges_only_within_model_slots(self, tiny_city):
        from repro.datasets import TemporalPath
        from repro.serving import slot_cache_key
        from repro.temporal import DepartureTime

        base = tiny_city.unlabeled.temporal_paths[0]
        early = TemporalPath(path=base.path,
                             departure_time=DepartureTime(0, 0.0))
        late = TemporalPath(path=base.path,
                            departure_time=DepartureTime(0, 270.0))
        # 4-minute slots (360/day): 0 s and 270 s fall in different slots.
        assert slot_cache_key(360)(early) != slot_cache_key(360)(late)
        # 5-minute slots (288/day): same slot, merged for a higher hit rate.
        assert slot_cache_key(288)(early) == slot_cache_key(288)(late)

    def test_cache_never_serves_stale_embedding_to_time_sensitive_model(
            self, tiny_city):
        from repro.datasets import TemporalPath
        from repro.temporal import DepartureTime

        class SecondsModel:
            """Embeds the exact departure seconds (finest possible model)."""

            def encode(self, temporal_paths):
                return np.array([[len(tp), tp.departure_time.seconds]
                                 for tp in temporal_paths], dtype=np.float64)

        base = tiny_city.unlabeled.temporal_paths[0]
        early = TemporalPath(path=base.path,
                             departure_time=DepartureTime(0, 0.0))
        late = TemporalPath(path=base.path,
                            departure_time=DepartureTime(0, 270.0))
        service = PathEmbeddingService(SecondsModel())
        service.embed([early])                       # warm the cache
        served = service.embed([late])               # must NOT hit early's entry
        np.testing.assert_array_equal(served[0], [len(late), 270.0])


class TestModelBatchSizePassThrough:
    def test_internal_rechunking_is_disabled(self, tiny_city):
        """Models with their own encode(batch_size=...) default must receive
        the micro-batch size, or they would re-chunk internally and the
        padding stats would be wrong."""

        class BatchAwareModel:
            representation_dim = 1

            def __init__(self):
                self.seen = []

            def encode(self, temporal_paths, batch_size=4):
                self.seen.append((len(temporal_paths), batch_size))
                return np.array([[len(tp)] for tp in temporal_paths],
                                dtype=np.float64)

        model = BatchAwareModel()
        service = PathEmbeddingService(model, bucket_policy="none",
                                      max_batch_size=16, cache_enabled=False)
        service.embed(tiny_city.unlabeled.temporal_paths[:10])
        assert model.seen == [(10, 10)]
