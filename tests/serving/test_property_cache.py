"""Property tests for the LRU embedding cache.

Randomised get/put sequences are replayed against a trivially correct
reference implementation; the invariants under test:

* the number of entries never exceeds capacity,
* a hit always returns exactly the value that was originally stored,
* eviction order is least-recently-used (hits and overwrites refresh),
* the counters are consistent (hits + misses == lookups, inserts bounded,
  evictions == inserts - live entries).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import LRUEmbeddingCache

DIM = 3


def _embedding_for(key, version):
    """Deterministic distinct vector for (key, version)."""
    return np.arange(DIM, dtype=np.float64) + 100.0 * key + 10000.0 * version


# An operation is ("get", key) or ("put", key); puts bump the key's version
# so stale cache entries would be detected.
operations = st.lists(
    st.tuples(st.sampled_from(["get", "put"]), st.integers(0, 11)),
    min_size=1, max_size=120,
)


@settings(max_examples=150, deadline=None)
@given(ops=operations, capacity=st.integers(1, 9))
def test_lru_cache_matches_reference(ops, capacity):
    cache = LRUEmbeddingCache(capacity)
    reference = {}          # key -> version currently stored
    recency = []            # keys, least recent first
    versions = {}           # key -> latest version ever put
    expected_hits = expected_misses = expected_evictions = expected_inserts = 0

    for op, key in ops:
        if op == "put":
            version = versions.get(key, 0) + 1
            versions[key] = version
            cache.put(key, _embedding_for(key, version))
            if key in reference:
                reference[key] = version
                recency.remove(key)
                recency.append(key)
            else:
                reference[key] = version
                recency.append(key)
                expected_inserts += 1
                if len(reference) > capacity:
                    victim = recency.pop(0)
                    del reference[victim]
                    expected_evictions += 1
        else:
            value = cache.get(key)
            if key in reference:
                expected_hits += 1
                assert value is not None
                np.testing.assert_array_equal(
                    value, _embedding_for(key, reference[key]))
                recency.remove(key)
                recency.append(key)
            else:
                expected_misses += 1
                assert value is None

        # Invariants hold after every operation.
        assert len(cache) <= capacity
        assert len(cache) == len(reference)
        for live_key in reference:
            assert live_key in cache

    assert cache.hits == expected_hits
    assert cache.misses == expected_misses
    assert cache.evictions == expected_evictions
    assert cache.inserts == expected_inserts
    assert cache.hits + cache.misses == sum(1 for op, _ in ops if op == "get")

    stats = cache.stats()
    assert stats["size"] == len(reference)
    lookups = stats["hits"] + stats["misses"]
    if lookups:
        assert stats["hit_rate"] == stats["hits"] / lookups


@settings(max_examples=50, deadline=None)
@given(capacity=st.integers(1, 6), extra=st.integers(0, 20))
def test_capacity_never_exceeded_under_distinct_inserts(capacity, extra):
    cache = LRUEmbeddingCache(capacity)
    total = capacity + extra
    for key in range(total):
        cache.put(key, _embedding_for(key, 1))
        assert len(cache) <= capacity
    assert len(cache) == min(total, capacity)
    assert cache.evictions == max(0, total - capacity)
    # The survivors are exactly the most recently inserted keys.
    for key in range(max(0, total - capacity), total):
        assert key in cache


def test_returned_arrays_are_isolated_copies():
    cache = LRUEmbeddingCache(4)
    original = np.array([1.0, 2.0, 3.0])
    cache.put("k", original)
    original[:] = -1.0                       # caller mutates its array
    first = cache.get("k")
    np.testing.assert_array_equal(first, [1.0, 2.0, 3.0])
    first[:] = 99.0                          # caller mutates the result
    np.testing.assert_array_equal(cache.get("k"), [1.0, 2.0, 3.0])


def test_invalid_capacity_rejected():
    import pytest

    with pytest.raises(ValueError):
        LRUEmbeddingCache(0)
