"""Tests for the Node2Vec front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Node2Vec, Node2VecConfig
from repro.temporal import build_temporal_graph


class TestNode2VecConfig:
    def test_defaults(self):
        config = Node2VecConfig()
        assert config.dim == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            Node2VecConfig(dim=0)
        with pytest.raises(ValueError):
            Node2VecConfig(walk_length=1)


class TestNode2Vec:
    def test_fit_generic_graph(self):
        config = Node2VecConfig(dim=6, walks_per_node=2, walk_length=6, epochs=1, seed=0)
        node2vec = Node2Vec(config)
        embeddings = node2vec.fit(lambda n: [(n + 1) % 8, (n - 1) % 8], num_nodes=8)
        assert embeddings.shape == (8, 6)
        assert np.isfinite(embeddings).all()

    def test_embeddings_property_requires_fit(self):
        with pytest.raises(RuntimeError):
            _ = Node2Vec().embeddings

    def test_fit_temporal_graph(self):
        graph = build_temporal_graph(slots_per_day=12, days=7)
        config = Node2VecConfig(dim=4, walks_per_node=1, walk_length=5, epochs=1, seed=0)
        embeddings = Node2Vec(config).fit_temporal_graph(graph)
        assert embeddings.shape == (84, 4)

    def test_fit_road_network_and_edge_embeddings(self, tiny_network):
        config = Node2VecConfig(dim=4, walks_per_node=1, walk_length=5, epochs=1, seed=0)
        node2vec = Node2Vec(config)
        node_embeddings = node2vec.fit_road_network(tiny_network)
        assert node_embeddings.shape == (tiny_network.num_nodes, 4)

        edge_embeddings = node2vec.edge_topology_embeddings(tiny_network)
        assert edge_embeddings.shape == (tiny_network.num_edges, 8)
        # The edge embedding is the concatenation of its endpoints' embeddings.
        source, target = tiny_network.edge_endpoints(0)
        np.testing.assert_allclose(edge_embeddings[0, :4], node_embeddings[source])
        np.testing.assert_allclose(edge_embeddings[0, 4:], node_embeddings[target])

    def test_adjacent_temporal_slots_more_similar_than_distant(self):
        """Node2vec on the temporal graph should place neighbouring slots closer
        than slots half a day apart (the property the paper relies on)."""
        graph = build_temporal_graph(slots_per_day=48, days=7)
        config = Node2VecConfig(dim=16, walks_per_node=4, walk_length=12,
                                window=3, epochs=2, seed=0)
        embeddings = Node2Vec(config).fit_temporal_graph(graph)

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        # Average over several anchors for robustness.
        near, far = [], []
        for anchor in (10, 20, 30, 100, 200):
            near.append(cosine(embeddings[anchor], embeddings[anchor + 1]))
            far.append(cosine(embeddings[anchor], embeddings[(anchor + 24) % len(embeddings)]))
        assert np.mean(near) > np.mean(far)
