"""Equivalence suites: vectorized pretraining pipeline vs the reference loops.

Three layers, matching the engine:

* corpus — vectorized strided-window pair extraction reproduces the nested
  loops *exactly* (same pairs, same order), and the batched bincount noise
  distribution equals the counting loop;
* SGNS — because corpus and noise are bit-identical, training consumes the
  RNG identically and the final embeddings match bit for bit;
* walks — the CSR lockstep walker consumes the RNG differently, so
  equivalence is distributional (PR 3's histogram pattern): first-step and
  second-order transition frequencies agree within a total-variation bound,
  and every structural invariant (edges followed, dead ends, lengths) holds
  for arbitrary graphs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import RandomWalker, SkipGramTrainer

# Random corpora: up to 12 walks of up to 15 nodes over a 20-node vocabulary,
# including empty and single-node walks (the loop's edge cases).
corpora = st.lists(
    st.lists(st.integers(min_value=0, max_value=19), min_size=0, max_size=15),
    min_size=0, max_size=12)

# Random directed graphs as adjacency dicts over up to 8 nodes.  Neighbour
# lists may be empty (dead ends) and need not be symmetric.
graphs = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.fixed_dictionaries({
        node: st.lists(st.integers(min_value=0, max_value=n - 1),
                       min_size=0, max_size=n, unique=True)
        for node in range(n)
    }))


class TestCorpusEquivalence:
    @given(corpora, st.integers(min_value=1, max_value=6))
    @settings(max_examples=80, deadline=None)
    def test_pairs_exactly_match_loop_order(self, walks, window):
        trainer = SkipGramTrainer(num_nodes=20, dim=2, window=window)
        reference = trainer._reference_pairs(walks)
        vectorized = trainer._vectorized_pairs(walks)
        np.testing.assert_array_equal(reference, vectorized)

    @given(corpora)
    @settings(max_examples=60, deadline=None)
    def test_noise_counts_match_loop(self, walks):
        trainer = SkipGramTrainer(num_nodes=20, dim=2)
        np.testing.assert_array_equal(
            trainer._reference_noise_counts(walks),
            trainer._vectorized_noise_counts(walks))

    @given(corpora, st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_sgns_embeddings_bit_identical(self, walks, seed):
        def train(impl):
            trainer = SkipGramTrainer(num_nodes=20, dim=4, window=3,
                                      negatives=3, seed=seed, impl=impl)
            return trainer.train(walks, epochs=2)

        np.testing.assert_array_equal(train("reference"), train("vectorized"))


class TestWalkStructuralEquivalence:
    @given(graphs, st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_walks_respect_graph(self, adjacency, length, seed):
        walker = RandomWalker(lambda n: adjacency[n], num_nodes=len(adjacency),
                              seed=seed, impl="vectorized")
        walks = walker.generate_walks(walks_per_node=2, walk_length=length)
        assert len(walks) == 2 * len(adjacency)
        for walk in walks:
            assert 1 <= len(walk) <= length
            for a, b in zip(walk, walk[1:]):
                assert b in adjacency[a]
            # A walk ends early only at a dead end (or at full length).
            if len(walk) < length:
                assert not adjacency[walk[-1]]

    @given(graphs, st.integers(min_value=0, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_both_impls_terminate_identically_on_degenerate_graphs(
            self, adjacency, seed):
        """Walk lengths depend only on the dead-end structure, not the impl."""
        def lengths(impl):
            walker = RandomWalker(lambda n: adjacency[n],
                                  num_nodes=len(adjacency), seed=seed, impl=impl)
            walks = sorted(walker.generate_walks(1, 6))
            return walks

        reference = lengths("reference")
        vectorized = lengths("vectorized")
        # Same multiset of start nodes; early termination states agree.
        assert [w[0] for w in reference] == [w[0] for w in vectorized]
        for ref_walk, vec_walk in zip(reference, vectorized):
            if len(ref_walk) == 1 or len(vec_walk) == 1:
                # A start with no neighbours stops immediately in both.
                assert len(ref_walk) == len(vec_walk) == 1


class TestWalkDistributionalEquivalence:
    """Transition statistics agree between impls (histogram-mode pattern)."""

    @staticmethod
    def _ring(size):
        def neighbors(node):
            return [(node - 1) % size, (node + 1) % size]
        return neighbors

    def _transition_counts(self, impl, p, q, passes, seed):
        size = 10
        walker = RandomWalker(self._ring(size), num_nodes=size, p=p, q=q,
                              seed=seed, impl=impl)
        counts = np.zeros((size, size))
        for walk in walker.generate_walks(passes, 12):
            for a, b in zip(walk, walk[1:]):
                counts[a, b] += 1
        return counts

    @pytest.mark.parametrize("p,q", [(1.0, 1.0), (4.0, 0.25), (0.25, 4.0)])
    def test_first_order_transition_frequencies_agree(self, p, q):
        reference = self._transition_counts("reference", p, q, passes=60, seed=0)
        vectorized = self._transition_counts("vectorized", p, q, passes=60, seed=1)
        reference /= reference.sum()
        vectorized /= vectorized.sum()
        total_variation = 0.5 * np.abs(reference - vectorized).sum()
        assert total_variation < 0.05

    def test_backtrack_rate_tracks_p_in_both_impls(self):
        """P(walk[t] == walk[t-2]) responds to p the same way in both impls."""
        def backtrack_rate(impl, p):
            size = 12
            walker = RandomWalker(self._ring(size), num_nodes=size, p=p, q=1.0,
                                  seed=5, impl=impl)
            hits = steps = 0
            for walk in walker.generate_walks(40, 15):
                for i in range(2, len(walk)):
                    steps += 1
                    hits += walk[i] == walk[i - 2]
            return hits / steps

        for impl in ("reference", "vectorized"):
            assert backtrack_rate(impl, 20.0) < backtrack_rate(impl, 0.05)
        # And the rates themselves agree across impls for the same p.
        assert backtrack_rate("reference", 4.0) == pytest.approx(
            backtrack_rate("vectorized", 4.0), abs=0.04)
