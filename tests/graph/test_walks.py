"""Tests for biased random walks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import RandomWalker


def ring_neighbors(size):
    def neighbors(node):
        return [(node - 1) % size, (node + 1) % size]
    return neighbors


class TestRandomWalker:
    def test_walk_length_and_start(self):
        walker = RandomWalker(ring_neighbors(10), num_nodes=10, seed=0)
        walk = walker.walk_from(3, length=8)
        assert walk[0] == 3
        assert len(walk) == 8

    def test_walk_steps_follow_edges(self):
        walker = RandomWalker(ring_neighbors(12), num_nodes=12, seed=1)
        walk = walker.walk_from(0, length=20)
        for a, b in zip(walk, walk[1:]):
            assert b in ring_neighbors(12)(a)

    def test_isolated_node_walk_stops(self):
        walker = RandomWalker(lambda n: [], num_nodes=3, seed=0)
        assert walker.walk_from(1, length=5) == [1]

    def test_dead_end_terminates_walk(self):
        # 0 -> 1, 1 has no neighbours.
        adjacency = {0: [1], 1: []}
        walker = RandomWalker(lambda n: adjacency[n], num_nodes=2, seed=0)
        walk = walker.walk_from(0, length=10)
        assert walk == [0, 1]

    def test_generate_walks_count(self):
        walker = RandomWalker(ring_neighbors(6), num_nodes=6, seed=0)
        walks = walker.generate_walks(walks_per_node=3, walk_length=5)
        assert len(walks) == 18

    def test_high_p_discourages_backtracking(self):
        """With p very large and q=1, immediate backtracking should be rare."""
        size = 30
        backtracks = {"low_p": 0, "high_p": 0}
        for label, p in (("low_p", 0.05), ("high_p", 50.0)):
            walker = RandomWalker(ring_neighbors(size), num_nodes=size, p=p, q=1.0, seed=3)
            for start in range(size):
                walk = walker.walk_from(start, length=30)
                for i in range(2, len(walk)):
                    if walk[i] == walk[i - 2]:
                        backtracks[label] += 1
        assert backtracks["high_p"] < backtracks["low_p"]

    def test_invalid_p_q(self):
        with pytest.raises(ValueError):
            RandomWalker(ring_neighbors(4), 4, p=0.0)
        with pytest.raises(ValueError):
            RandomWalker(ring_neighbors(4), 4, q=-1.0)

    def test_deterministic_given_seed(self):
        a = RandomWalker(ring_neighbors(8), 8, seed=7).generate_walks(1, 6)
        b = RandomWalker(ring_neighbors(8), 8, seed=7).generate_walks(1, 6)
        assert a == b

    def test_invalid_impl(self):
        with pytest.raises(ValueError):
            RandomWalker(ring_neighbors(4), 4, impl="fast")


class TestVectorizedWalker:
    """The CSR lockstep engine honours the same walk semantics as the loop."""

    def test_generate_walks_count_and_starts(self):
        walker = RandomWalker(ring_neighbors(6), num_nodes=6, seed=0, impl="vectorized")
        walks = walker.generate_walks(walks_per_node=3, walk_length=5)
        assert len(walks) == 18
        assert sorted(w[0] for w in walks) == sorted(list(range(6)) * 3)

    def test_walks_follow_edges(self):
        walker = RandomWalker(ring_neighbors(12), num_nodes=12, seed=1, impl="vectorized")
        for walk in walker.generate_walks(2, 20):
            assert len(walk) == 20
            for a, b in zip(walk, walk[1:]):
                assert b in ring_neighbors(12)(a)

    def test_isolated_node_walk_stops(self):
        walker = RandomWalker(lambda n: [], num_nodes=3, seed=0, impl="vectorized")
        walks = walker.generate_walks(1, 5)
        assert sorted(walks) == [[0], [1], [2]]

    def test_dead_end_terminates_walk(self):
        # 0 -> 1, 1 has no neighbours; 2 is isolated.
        adjacency = {0: [1], 1: [], 2: []}
        walker = RandomWalker(lambda n: adjacency[n], num_nodes=3, seed=0,
                              impl="vectorized")
        walks = {w[0]: w for w in walker.generate_walks(1, 10)}
        assert walks[0] == [0, 1]
        assert walks[1] == [1]
        assert walks[2] == [2]

    def test_high_p_discourages_backtracking(self):
        size = 30
        backtracks = {"low_p": 0, "high_p": 0}
        for label, p in (("low_p", 0.05), ("high_p", 50.0)):
            walker = RandomWalker(ring_neighbors(size), num_nodes=size, p=p,
                                  q=1.0, seed=3, impl="vectorized")
            for walk in walker.generate_walks(1, 30):
                for i in range(2, len(walk)):
                    if walk[i] == walk[i - 2]:
                        backtracks[label] += 1
        assert backtracks["high_p"] < backtracks["low_p"]

    def test_neighbors_fn_called_once_per_node(self):
        calls = []

        def counting_neighbors(node):
            calls.append(node)
            return ring_neighbors(8)(node)

        walker = RandomWalker(counting_neighbors, num_nodes=8, seed=0,
                              impl="vectorized")
        walker.generate_walks(4, 10)
        assert sorted(calls) == list(range(8))

    def test_walk_elements_are_python_ints(self):
        walker = RandomWalker(ring_neighbors(5), num_nodes=5, seed=0, impl="vectorized")
        for walk in walker.generate_walks(1, 4):
            assert all(type(node) is int for node in walk)

    @pytest.mark.parametrize("impl", ["reference", "vectorized"])
    def test_short_length_takes_first_step_in_both_impls(self, impl):
        # The reference loop always takes the uniform first step, even for
        # walk_length < 2; the lockstep engine must agree.
        walker = RandomWalker(ring_neighbors(5), num_nodes=5, seed=0, impl=impl)
        assert all(len(walk) == 2 for walk in walker.generate_walks(1, 1))


class TestFixedSeedPins:
    """Pin the exact RNG streams of both impls so rewrites cannot drift."""

    def test_reference_walks_pinned(self):
        walker = RandomWalker(ring_neighbors(6), 6, p=2.0, q=0.5, seed=42,
                              impl="reference")
        assert walker.generate_walks(1, 5) == [
            [3, 2, 1, 2, 3], [2, 3, 4, 3, 2], [5, 0, 1, 2, 3],
            [4, 3, 2, 1, 0], [1, 2, 3, 4, 5], [0, 5, 4, 5, 0]]

    def test_vectorized_walks_pinned(self):
        walker = RandomWalker(ring_neighbors(6), 6, p=2.0, q=0.5, seed=42,
                              impl="vectorized")
        assert walker.generate_walks(1, 5) == [
            [3, 4, 5, 0, 1], [2, 1, 0, 5, 0], [5, 0, 1, 0, 1],
            [4, 5, 0, 1, 2], [1, 2, 3, 4, 3], [0, 5, 4, 3, 2]]

    @pytest.mark.parametrize("impl", ["reference", "vectorized"])
    def test_same_seed_same_walks(self, impl):
        make = lambda: RandomWalker(ring_neighbors(9), 9, p=0.5, q=2.0, seed=11,
                                    impl=impl)
        assert make().generate_walks(2, 7) == make().generate_walks(2, 7)
