"""Tests for biased random walks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import RandomWalker


def ring_neighbors(size):
    def neighbors(node):
        return [(node - 1) % size, (node + 1) % size]
    return neighbors


class TestRandomWalker:
    def test_walk_length_and_start(self):
        walker = RandomWalker(ring_neighbors(10), num_nodes=10, seed=0)
        walk = walker.walk_from(3, length=8)
        assert walk[0] == 3
        assert len(walk) == 8

    def test_walk_steps_follow_edges(self):
        walker = RandomWalker(ring_neighbors(12), num_nodes=12, seed=1)
        walk = walker.walk_from(0, length=20)
        for a, b in zip(walk, walk[1:]):
            assert b in ring_neighbors(12)(a)

    def test_isolated_node_walk_stops(self):
        walker = RandomWalker(lambda n: [], num_nodes=3, seed=0)
        assert walker.walk_from(1, length=5) == [1]

    def test_dead_end_terminates_walk(self):
        # 0 -> 1, 1 has no neighbours.
        adjacency = {0: [1], 1: []}
        walker = RandomWalker(lambda n: adjacency[n], num_nodes=2, seed=0)
        walk = walker.walk_from(0, length=10)
        assert walk == [0, 1]

    def test_generate_walks_count(self):
        walker = RandomWalker(ring_neighbors(6), num_nodes=6, seed=0)
        walks = walker.generate_walks(walks_per_node=3, walk_length=5)
        assert len(walks) == 18

    def test_high_p_discourages_backtracking(self):
        """With p very large and q=1, immediate backtracking should be rare."""
        size = 30
        backtracks = {"low_p": 0, "high_p": 0}
        for label, p in (("low_p", 0.05), ("high_p", 50.0)):
            walker = RandomWalker(ring_neighbors(size), num_nodes=size, p=p, q=1.0, seed=3)
            for start in range(size):
                walk = walker.walk_from(start, length=30)
                for i in range(2, len(walk)):
                    if walk[i] == walk[i - 2]:
                        backtracks[label] += 1
        assert backtracks["high_p"] < backtracks["low_p"]

    def test_invalid_p_q(self):
        with pytest.raises(ValueError):
            RandomWalker(ring_neighbors(4), 4, p=0.0)
        with pytest.raises(ValueError):
            RandomWalker(ring_neighbors(4), 4, q=-1.0)

    def test_deterministic_given_seed(self):
        a = RandomWalker(ring_neighbors(8), 8, seed=7).generate_walks(1, 6)
        b = RandomWalker(ring_neighbors(8), 8, seed=7).generate_walks(1, 6)
        assert a == b
