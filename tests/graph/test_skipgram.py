"""Tests for the skip-gram (SGNS) trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import SkipGramTrainer


class TestSkipGramTrainer:
    def test_embedding_shapes(self):
        trainer = SkipGramTrainer(num_nodes=10, dim=4)
        assert trainer.in_embeddings.shape == (10, 4)
        assert trainer.out_embeddings.shape == (10, 4)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            SkipGramTrainer(num_nodes=5, dim=0)

    def test_pairs_from_walk_window(self):
        trainer = SkipGramTrainer(num_nodes=10, dim=2, window=1)
        pairs = trainer._pairs_from_walk([0, 1, 2])
        assert (0, 1) in pairs
        assert (1, 0) in pairs
        assert (1, 2) in pairs
        assert (0, 2) not in pairs

    def test_training_on_empty_corpus_is_safe(self):
        trainer = SkipGramTrainer(num_nodes=5, dim=3)
        embeddings = trainer.train([], epochs=1)
        assert embeddings.shape == (5, 3)

    def test_training_changes_embeddings(self):
        trainer = SkipGramTrainer(num_nodes=6, dim=4, seed=0)
        before = trainer.in_embeddings.copy()
        walks = [[0, 1, 2, 3, 4, 5]] * 10
        trainer.train(walks, epochs=2)
        assert not np.allclose(before, trainer.in_embeddings)

    def test_cooccurring_nodes_become_similar(self):
        """Two communities that never co-occur should separate in embedding space."""
        community_a = [0, 1, 2]
        community_b = [3, 4, 5]
        rng = np.random.default_rng(0)
        walks = []
        for _ in range(60):
            walks.append(list(rng.permutation(community_a)) * 3)
            walks.append(list(rng.permutation(community_b)) * 3)
        trainer = SkipGramTrainer(num_nodes=6, dim=8, window=2, negatives=4,
                                  lr=0.05, seed=1)
        embeddings = trainer.train(walks, epochs=3)

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        within = cosine(embeddings[0], embeddings[1])
        across = cosine(embeddings[0], embeddings[4])
        assert within > across

    def test_embeddings_accessor_returns_copy(self):
        trainer = SkipGramTrainer(num_nodes=4, dim=2)
        copy = trainer.embeddings()
        copy[:] = 99.0
        assert not np.allclose(trainer.in_embeddings, 99.0)

    def test_invalid_impl(self):
        with pytest.raises(ValueError):
            SkipGramTrainer(num_nodes=5, dim=2, impl="gpu")


class TestLearningRateDecay:
    def test_decay_changes_training_outcome(self):
        walks = [[0, 1, 2, 3, 4, 5]] * 10
        decayed = SkipGramTrainer(num_nodes=6, dim=4, seed=0, lr_decay=True)
        constant = SkipGramTrainer(num_nodes=6, dim=4, seed=0, lr_decay=False)
        assert not np.allclose(decayed.train(walks, epochs=2),
                               constant.train(walks, epochs=2))

    def test_decay_never_below_floor(self):
        """Every applied step lr stays within [lr * 1e-4, lr]."""
        trainer = SkipGramTrainer(num_nodes=6, dim=2, seed=0, batch_size=4,
                                  lr=0.1, lr_decay=True)
        applied = []
        original = trainer._update_batch

        def spy(centers, contexts, negatives, lr):
            applied.append(lr)
            return original(centers, contexts, negatives, lr)

        trainer._update_batch = spy
        trainer.train([[0, 1, 2, 3, 4, 5]] * 4, epochs=3)
        assert applied, "no updates ran"
        assert max(applied) <= 0.1
        assert min(applied) >= 0.1 * 1e-4
        # Linear decay: the schedule is non-increasing.
        assert all(b <= a for a, b in zip(applied, applied[1:]))


class TestFixedSeedPins:
    """Pin the exact training output (both impls share one RNG stream)."""

    @pytest.mark.parametrize("impl", ["reference", "vectorized"])
    def test_training_output_pinned(self, impl):
        trainer = SkipGramTrainer(num_nodes=6, dim=3, window=2, negatives=2,
                                  seed=7, impl=impl)
        embeddings = trainer.train([[0, 1, 2, 3], [3, 4, 5, 0]], epochs=1)
        np.testing.assert_allclose(
            embeddings[0], [0.0416984889, 0.1324046003, 0.0918952301], atol=1e-9)
        np.testing.assert_allclose(
            embeddings[5], [0.0178324507, 0.1651667611, 0.0975539731], atol=1e-9)
