"""Tests for the skip-gram (SGNS) trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import SkipGramTrainer


class TestSkipGramTrainer:
    def test_embedding_shapes(self):
        trainer = SkipGramTrainer(num_nodes=10, dim=4)
        assert trainer.in_embeddings.shape == (10, 4)
        assert trainer.out_embeddings.shape == (10, 4)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            SkipGramTrainer(num_nodes=5, dim=0)

    def test_pairs_from_walk_window(self):
        trainer = SkipGramTrainer(num_nodes=10, dim=2, window=1)
        pairs = trainer._pairs_from_walk([0, 1, 2])
        assert (0, 1) in pairs
        assert (1, 0) in pairs
        assert (1, 2) in pairs
        assert (0, 2) not in pairs

    def test_training_on_empty_corpus_is_safe(self):
        trainer = SkipGramTrainer(num_nodes=5, dim=3)
        embeddings = trainer.train([], epochs=1)
        assert embeddings.shape == (5, 3)

    def test_training_changes_embeddings(self):
        trainer = SkipGramTrainer(num_nodes=6, dim=4, seed=0)
        before = trainer.in_embeddings.copy()
        walks = [[0, 1, 2, 3, 4, 5]] * 10
        trainer.train(walks, epochs=2)
        assert not np.allclose(before, trainer.in_embeddings)

    def test_cooccurring_nodes_become_similar(self):
        """Two communities that never co-occur should separate in embedding space."""
        community_a = [0, 1, 2]
        community_b = [3, 4, 5]
        rng = np.random.default_rng(0)
        walks = []
        for _ in range(60):
            walks.append(list(rng.permutation(community_a)) * 3)
            walks.append(list(rng.permutation(community_b)) * 3)
        trainer = SkipGramTrainer(num_nodes=6, dim=8, window=2, negatives=4,
                                  lr=0.05, seed=1)
        embeddings = trainer.train(walks, epochs=3)

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        within = cosine(embeddings[0], embeddings[1])
        across = cosine(embeddings[0], embeddings[4])
        assert within > across

    def test_embeddings_accessor_returns_copy(self):
        trainer = SkipGramTrainer(num_nodes=4, dim=2)
        copy = trainer.embeddings()
        copy[:] = 99.0
        assert not np.allclose(trainer.in_embeddings, 99.0)
