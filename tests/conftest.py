"""Shared fixtures for the test suite.

Expensive objects (synthetic cities, shared node2vec resources) are
session-scoped so the suite stays fast even though many tests need a full
dataset.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SharedResources, WSCCLConfig
from repro.datasets import DatasetScale, aalborg, harbin
from repro.roadnet import CityConfig, generate_city_network


@pytest.fixture(scope="session")
def tiny_config():
    """A very small WSCCL configuration for fast tests."""
    return WSCCLConfig.test_scale()


@pytest.fixture(scope="session")
def tiny_city():
    """A tiny synthetic Aalborg dataset shared across the suite."""
    return aalborg(scale=DatasetScale.tiny())


@pytest.fixture(scope="session")
def tiny_city_harbin():
    """A second tiny city (Harbin layout) for cross-dataset tests."""
    return harbin(scale=DatasetScale.tiny())


@pytest.fixture(scope="session")
def tiny_network():
    """A small standalone road network (no trips) for substrate tests."""
    return generate_city_network(CityConfig(name="test-grid", grid_rows=4, grid_cols=4, seed=7))


@pytest.fixture(scope="session")
def shared_resources(tiny_city, tiny_config):
    """Frozen node2vec features shared by core-model tests."""
    return SharedResources(tiny_city.network, tiny_config)


@pytest.fixture()
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(12345)
