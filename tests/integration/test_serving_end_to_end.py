"""End-to-end serving test: train a tiny model, serve the three downstream
tasks through the :class:`~repro.serving.PathEmbeddingService`, and check the
metrics are identical to the direct (unserved) evaluation path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WSCCL
from repro.downstream import evaluate_all_tasks
from repro.serving import PathEmbeddingService


@pytest.fixture(scope="module")
def trained_model(tiny_city, tiny_config, shared_resources):
    """A tiny trained WSCCL model shared by the serving integration tests."""
    model = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
    model.fit(tiny_city.unlabeled, batches_per_epoch=2, expert_batches=1)
    return model


def _flatten(results):
    return {f"{task}.{metric}": value
            for task, result in results.items()
            for metric, value in result.as_row().items()}


class TestServingEndToEnd:
    def test_served_tasks_match_direct_evaluation(self, trained_model, tiny_city):
        direct = evaluate_all_tasks(
            trained_model, tiny_city.tasks, n_estimators=10, serving=False)
        served = evaluate_all_tasks(
            trained_model, tiny_city.tasks, n_estimators=10)
        assert _flatten(direct) == _flatten(served)

    @pytest.mark.parametrize("policy", ["none", "pow2", "exact"])
    def test_every_bucket_policy_yields_identical_metrics(
            self, trained_model, tiny_city, policy):
        direct = evaluate_all_tasks(
            trained_model, tiny_city.tasks, n_estimators=10, serving=False)
        service = PathEmbeddingService(
            trained_model, bucket_policy=policy, max_batch_size=16)
        served = evaluate_all_tasks(service, tiny_city.tasks, n_estimators=10)
        assert _flatten(direct) == _flatten(served)

    def test_cache_disabled_still_identical(self, trained_model, tiny_city):
        direct = evaluate_all_tasks(
            trained_model, tiny_city.tasks, n_estimators=10, serving=False)
        service = PathEmbeddingService(trained_model, cache_enabled=False)
        served = evaluate_all_tasks(service, tiny_city.tasks, n_estimators=10)
        assert _flatten(direct) == _flatten(served)

    def test_service_metrics_reflect_the_evaluation_traffic(
            self, trained_model, tiny_city):
        service = PathEmbeddingService(trained_model, bucket_policy="fixed",
                                       max_batch_size=32)
        evaluate_all_tasks(service, tiny_city.tasks, n_estimators=10)
        scraped = service.scrape()

        total_examples = (len(tiny_city.tasks.travel_time)
                          + len(tiny_city.tasks.ranking)
                          + len(tiny_city.tasks.recommendation))
        assert scraped["paths_served"] == total_examples
        assert scraped["requests"] == 6          # train + test encode per task
        assert scraped["throughput_paths_per_s"] > 0
        assert 0.0 < scraped["padding_efficiency"] <= 1.0
        assert scraped["cache_hits"] + scraped["cache_misses"] >= total_examples
        # Task datasets reuse underlying paths, so the shared cache must see
        # at least some cross-task hits.
        assert scraped["cache_hits"] > 0

    def test_served_embeddings_finite_and_correct_shape(self, trained_model, tiny_city):
        service = PathEmbeddingService(trained_model)
        paths = tiny_city.unlabeled.temporal_paths
        served = service.embed(paths)
        assert served.shape == (len(paths), trained_model.representation_dim)
        assert np.isfinite(served).all()
