"""Integration tests: the full pipeline from raw substrate to table rows."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import WSCCL
from repro.datasets import DatasetScale
from repro.downstream import evaluate_all_tasks
from repro.evaluation import (
    HarnessConfig,
    fit_unsupervised_baseline,
    fit_wsccl,
    format_nested_results,
    run_table6_ablation,
)
from repro.temporal import DepartureTime
from repro.trajectory import GPSSampler, HMMMapMatcher, SpeedModel, TripSimulator


@pytest.fixture(scope="module")
def fast_config():
    """Harness config kept compatible with the shared test-scale resources."""
    from repro.core import WSCCLConfig

    config = HarnessConfig.benchmark()
    return dataclasses.replace(
        config,
        scale=DatasetScale.tiny(),
        max_batches=2,
        n_estimators=8,
        wsccl=WSCCLConfig.test_scale().with_overrides(
            epochs=1, num_meta_sets=2, num_stages=2),
    )


class TestDataPipeline:
    def test_gps_to_path_pipeline(self, tiny_city):
        """Simulate a trip, emit GPS, map-match, and recover a usable path —
        the full data pipeline the paper's corpora went through."""
        network = tiny_city.network
        speed_model = SpeedModel(network, seed=3, noise_std=0.0)
        simulator = TripSimulator(network, speed_model=speed_model, seed=3, min_trip_edges=3)
        trip = simulator.simulate_trip(departure_time=DepartureTime.from_hour(1, 9.0))
        assert trip is not None

        sampler = GPSSampler(network, speed_model, sample_interval=8.0, noise_std=4.0, seed=3)
        trajectory = sampler.sample(trip.path, trip.departure_time)
        matcher = HMMMapMatcher(network, emission_sigma=10.0)
        matched = matcher.match(trajectory)

        assert matched
        assert network.is_connected_path(matched)
        overlap = len(set(trip.path) & set(matched)) / len(set(trip.path))
        assert overlap > 0.3


class TestWSCCLPipeline:
    def test_train_encode_evaluate(self, tiny_city, tiny_config, shared_resources):
        """WSCCL end to end: unsupervised fit, frozen TPRs, all three tasks."""
        model = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        model.fit(tiny_city.unlabeled, batches_per_epoch=2, expert_batches=1)

        reps = model.encode(tiny_city.unlabeled.temporal_paths)
        assert reps.shape == (len(tiny_city.unlabeled), model.representation_dim)
        assert np.isfinite(reps).all()

        results = evaluate_all_tasks(model, tiny_city.tasks, n_estimators=10)
        assert results["travel_time"].mae > 0
        assert -1 <= results["ranking"].kendall_tau <= 1
        assert 0 <= results["recommendation"].accuracy <= 1

    def test_wsccl_representations_encode_path_identity(self, tiny_city, tiny_config,
                                                        shared_resources):
        """The contrastive objective pulls together views of the same path with
        the same weak label, so after training, same-path pairs must be more
        similar than different-path pairs on average."""
        wsccl = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        wsccl.fit_without_curriculum(tiny_city.unlabeled, batches_per_epoch=4)

        from repro.core.sampling import augment_with_positive_views

        rng = np.random.default_rng(0)
        samples = list(tiny_city.unlabeled)[:10]
        augmented = augment_with_positive_views(
            samples, tiny_city.unlabeled.weak_labeler, rng)
        originals = [tp for tp, _ in augmented[:len(samples)]]
        views = [tp for tp, _ in augmented[len(samples):]]

        original_reps = wsccl.encode(originals)
        view_reps = wsccl.encode(views)

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        same_path = np.mean([cosine(original_reps[i], view_reps[i])
                             for i in range(len(samples))])
        cross_path = np.mean([cosine(original_reps[i], view_reps[(i + 3) % len(samples)])
                              for i in range(len(samples))])
        assert same_path > cross_path


class TestHarnessIntegration:
    def test_baseline_and_wsccl_share_the_same_harness(self, fast_config, tiny_city,
                                                       shared_resources):
        baseline = fit_unsupervised_baseline("PIM", tiny_city, fast_config)
        wsccl = fit_wsccl(tiny_city, fast_config, variant="no_cl",
                          resources=shared_resources)
        from repro.evaluation import representation_task_results

        baseline_rows = representation_task_results(baseline, tiny_city, fast_config)
        wsccl_rows = representation_task_results(wsccl, tiny_city, fast_config)
        assert set(baseline_rows) == set(wsccl_rows) == {"travel_time", "ranking"}

    def test_table6_runner_and_formatting(self, fast_config):
        results = run_table6_ablation(fast_config)
        text = format_nested_results(results, title="Table VI")
        assert "WSCCL" in text
        assert "w/o Global" in text
        assert "travel_time.MAE" in text
