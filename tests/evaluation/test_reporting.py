"""Tests for the result formatting helpers."""

from __future__ import annotations

from repro.evaluation import format_fig7_series, format_metric_table, format_nested_results


class TestFormatMetricTable:
    def test_contains_methods_and_metrics(self):
        rows = {"WSCCL": {"MAE": 1.234, "tau": 0.5}, "PIM": {"MAE": 2.0, "tau": 0.3}}
        text = format_metric_table(rows, title="demo")
        assert "demo" in text
        assert "WSCCL" in text and "PIM" in text
        assert "MAE" in text and "tau" in text
        assert "1.234" in text

    def test_empty_rows(self):
        assert format_metric_table({}) == "(no rows)"

    def test_handles_missing_metrics(self):
        rows = {"A": {"MAE": 1.0}, "B": {"tau": 0.5}}
        text = format_metric_table(rows)
        assert "A" in text and "B" in text


class TestFormatNestedResults:
    def test_flattens_tasks(self):
        results = {"aalborg": {"WSCCL": {"travel_time": {"MAE": 3.0},
                                         "ranking": {"tau": 0.7}}}}
        text = format_nested_results(results, title="Table III")
        assert "Table III" in text
        assert "travel_time.MAE" in text
        assert "ranking.tau" in text

    def test_scalar_task_values_supported(self):
        results = {"harbin": {"WSCCL": {"Acc": 0.9}}}
        text = format_nested_results(results)
        assert "Acc" in text


class TestFormatFig7:
    def test_contains_modes_and_fractions(self):
        results = {"aalborg": {
            "scratch": {0.5: {"travel_time": {"MAE": 5.0},
                              "ranking": {"MAE": 0.2, "tau": 0.4}}},
            "pretrained": {0.5: {"travel_time": {"MAE": 4.0},
                                 "ranking": {"MAE": 0.15, "tau": 0.5}}},
        }}
        text = format_fig7_series(results)
        assert "scratch@50%" in text
        assert "pretrained@50%" in text
        assert "tt.MAE" in text
