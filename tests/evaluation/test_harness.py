"""Tests for the evaluation harness (table runners)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.datasets import DatasetScale
from repro.evaluation import (
    HarnessConfig,
    build_dataset,
    build_supervised_baseline,
    fit_unsupervised_baseline,
    fit_wsccl,
    representation_task_results,
    run_fig7_pretraining,
    run_table2_dataset_statistics,
    run_table5_curriculum_design,
    run_table8_temporal,
    run_table11_lambda,
    supervised_travel_time_results,
)


@pytest.fixture(scope="module")
def fast_config():
    """An even smaller harness config so table runners finish quickly in tests.

    The WSCCL config is derived from ``test_scale`` so it stays compatible
    with the session-scoped ``shared_resources`` fixture (same embedding
    dimensions and temporal-graph granularity).
    """
    from repro.core import WSCCLConfig

    config = HarnessConfig.benchmark()
    return dataclasses.replace(
        config,
        scale=DatasetScale.tiny(),
        max_batches=2,
        n_estimators=8,
        wsccl=WSCCLConfig.test_scale().with_overrides(
            epochs=1, num_meta_sets=2, num_stages=2),
    )


class TestHarnessConfig:
    def test_presets_exist(self):
        assert HarnessConfig.benchmark().n_estimators > 0
        assert HarnessConfig.example().scale.num_trips > HarnessConfig.benchmark().scale.num_trips


class TestFactories:
    def test_build_dataset(self, fast_config):
        city = build_dataset("aalborg", fast_config)
        assert city.name == "aalborg"

    def test_fit_wsccl_variants(self, fast_config, tiny_city, shared_resources):
        for variant in ("no_cl", "heuristic"):
            model = fit_wsccl(tiny_city, fast_config, variant=variant,
                              resources=shared_resources)
            reps = model.encode(tiny_city.unlabeled.temporal_paths[:2])
            assert np.isfinite(reps).all()

    def test_fit_wsccl_rejects_unknown_variant(self, fast_config, tiny_city, shared_resources):
        with pytest.raises(ValueError):
            fit_wsccl(tiny_city, fast_config, variant="bogus", resources=shared_resources)

    def test_fit_wsccl_rejects_unknown_weak_labels(self, fast_config, tiny_city,
                                                   shared_resources):
        with pytest.raises(ValueError):
            fit_wsccl(tiny_city, fast_config, weak_labels="zodiac",
                      resources=shared_resources)

    def test_fit_unsupervised_baseline_by_name(self, fast_config, tiny_city):
        model = fit_unsupervised_baseline("Node2vec", tiny_city, fast_config)
        assert model.encode(tiny_city.unlabeled.temporal_paths[:2]).shape[0] == 2
        with pytest.raises(KeyError):
            fit_unsupervised_baseline("NOPE", tiny_city, fast_config)

    def test_build_supervised_baseline_by_name(self, fast_config):
        for name in ("DeepGTT", "HMTRL", "PathRank", "GCN", "STGCN"):
            assert build_supervised_baseline(name, fast_config) is not None
        with pytest.raises(KeyError):
            build_supervised_baseline("NOPE", fast_config)

    def test_representation_task_results_shape(self, fast_config, tiny_city):
        model = fit_unsupervised_baseline("Node2vec", tiny_city, fast_config)
        results = representation_task_results(model, tiny_city, fast_config,
                                               tasks=("travel_time", "recommendation"))
        assert set(results) == {"travel_time", "recommendation"}
        assert "MAE" in results["travel_time"]
        assert "Acc" in results["recommendation"]

    def test_supervised_travel_time_results(self, fast_config, tiny_city):
        model = build_supervised_baseline("PathRank", fast_config)
        row = supervised_travel_time_results(model, tiny_city, fast_config)
        assert set(row) == {"MAE", "MARE", "MAPE"}
        assert np.isfinite(row["MAE"])


class TestTableRunners:
    def test_table2_statistics(self, fast_config):
        rows = run_table2_dataset_statistics(fast_config, cities=("aalborg",))
        assert "aalborg" in rows
        assert rows["aalborg"]["num_edges"] > 0

    def test_table5_has_both_rows(self, fast_config):
        results = run_table5_curriculum_design(fast_config)
        rows = results["aalborg"]
        assert set(rows) == {"Heuristic", "WSCCL"}
        for row in rows.values():
            assert "travel_time" in row and "ranking" in row

    def test_table8_has_both_variants(self, fast_config):
        results = run_table8_temporal(fast_config)
        assert set(results["aalborg"]) == {"WSCCL", "WSCCL-NT"}

    def test_table11_sweeps_lambda(self, fast_config):
        results = run_table11_lambda(fast_config, lambdas=(0.0, 0.8))
        assert set(results["aalborg"]) == {0.0, 0.8}

    def test_fig7_series_structure(self, fast_config):
        results = run_fig7_pretraining(fast_config, label_fractions=(1.0,))
        series = results["aalborg"]
        assert set(series) == {"scratch", "pretrained"}
        assert set(series["scratch"]) == {1.0}
        assert "travel_time" in series["scratch"][1.0]
