"""Tests for curriculum learning: meta-sets, experts, difficulty, stages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    WSCModel,
    build_curriculum_stages,
    difficulty_scores,
    heuristic_curriculum_stages,
    split_into_meta_sets,
    train_experts,
)


@pytest.fixture(scope="module")
def samples(tiny_city):
    return list(tiny_city.unlabeled)


class TestMetaSetSplit:
    def test_partition_is_complete_and_disjoint(self, samples):
        meta_sets, assignments = split_into_meta_sets(samples, num_meta_sets=3)
        assert sum(len(m) for m in meta_sets) == len(samples)
        assert len(assignments) == len(samples)
        assert set(assignments.tolist()) <= {0, 1, 2}

    def test_sorted_by_length_across_sets(self, samples):
        meta_sets, _ = split_into_meta_sets(samples, num_meta_sets=3)
        max_lengths = [max(len(tp) for tp, _ in m) for m in meta_sets if m]
        min_lengths = [min(len(tp) for tp, _ in m) for m in meta_sets if m]
        # Every path in meta-set i is no longer than every path in meta-set i+1.
        for i in range(len(max_lengths) - 1):
            assert max_lengths[i] <= min_lengths[i + 1]

    def test_assignments_match_membership(self, samples):
        meta_sets, assignments = split_into_meta_sets(samples, num_meta_sets=2)
        for index, sample in enumerate(samples):
            assert sample in meta_sets[assignments[index]]

    def test_invalid_count(self, samples):
        with pytest.raises(ValueError):
            split_into_meta_sets(samples, num_meta_sets=0)

    def test_more_sets_than_samples(self):
        from repro.datasets import TemporalPath
        from repro.temporal import DepartureTime

        few = [(TemporalPath(path=[1, 2], departure_time=DepartureTime.from_hour(0, 8.0)), 0)]
        meta_sets, assignments = split_into_meta_sets(few, num_meta_sets=4)
        assert sum(len(m) for m in meta_sets) == 1


class TestExpertsAndDifficulty:
    @pytest.fixture(scope="class")
    def experts_setup(self, tiny_city, tiny_config, shared_resources, samples):
        meta_sets, assignments = split_into_meta_sets(samples, tiny_config.num_meta_sets)
        experts = train_experts(
            tiny_city.network, meta_sets, tiny_config,
            resources=shared_resources,
            weak_labeler=tiny_city.unlabeled.weak_labeler,
            batches_per_epoch=1,
        )
        return meta_sets, assignments, experts

    def test_one_expert_per_meta_set(self, experts_setup, tiny_config):
        meta_sets, _, experts = experts_setup
        assert len(experts) == tiny_config.num_meta_sets
        assert all(isinstance(e, WSCModel) for e in experts)

    def test_experts_have_different_parameters(self, experts_setup):
        _, _, experts = experts_setup
        first = experts[0].state_dict()
        second = experts[1].state_dict()
        different = any(
            not np.allclose(first[name], second[name]) for name in first
        )
        assert different

    def test_difficulty_scores_shape_and_finiteness(self, experts_setup, samples):
        _, assignments, experts = experts_setup
        scores = difficulty_scores(samples, assignments, experts)
        assert scores.shape == (len(samples),)
        assert np.isfinite(scores).all()

    def test_scores_bounded_by_expert_count(self, experts_setup, samples):
        """Each score sums N-1 cosine similarities, so |score| <= N-1."""
        _, assignments, experts = experts_setup
        scores = difficulty_scores(samples, assignments, experts)
        assert (np.abs(scores) <= len(experts) - 1 + 1e-9).all()

    def test_single_expert_gives_zero_scores(self, experts_setup, samples):
        _, assignments, experts = experts_setup
        scores = difficulty_scores(samples, np.zeros(len(samples), dtype=int), experts[:1])
        assert (scores == 0).all()


class TestCurriculumStages:
    def test_stage_partition(self, samples):
        scores = np.arange(len(samples), dtype=float)
        plan = build_curriculum_stages(samples, scores, num_stages=3)
        assert plan.num_stages == 3
        assert sum(len(stage) for stage in plan.stages) == len(samples)
        assert len(plan.final_stage) == len(samples)

    def test_easy_samples_come_first(self, samples):
        scores = np.linspace(0, 1, len(samples))
        plan = build_curriculum_stages(samples, scores, num_stages=2)
        score_of = {id(sample): score for sample, score in zip(samples, scores)}
        first_stage_scores = [score_of[id(s)] for s in plan.stages[0]]
        last_stage_scores = [score_of[id(s)] for s in plan.stages[-1]]
        assert min(first_stage_scores) >= max(last_stage_scores)

    def test_invalid_stage_count(self, samples):
        with pytest.raises(ValueError):
            build_curriculum_stages(samples, np.zeros(len(samples)), num_stages=0)

    def test_heuristic_orders_by_length(self, samples):
        plan = heuristic_curriculum_stages(samples, num_stages=2)
        first_lengths = [len(tp) for tp, _ in plan.stages[0]]
        last_lengths = [len(tp) for tp, _ in plan.stages[-1]]
        assert max(first_lengths) <= min(last_lengths) + 1

    def test_more_stages_than_samples_emits_no_empty_stages(self, samples):
        # Regression: num_stages > len(samples) used to produce empty stages
        # that reached WSCTrainer.fit_on_samples as no-op epochs.
        few = samples[:3]
        plan = build_curriculum_stages(few, np.arange(3, dtype=float), num_stages=10)
        assert plan.num_stages == 3
        assert all(len(stage) >= 1 for stage in plan.stages)
        assert sum(len(stage) for stage in plan.stages) == 3
        assert len(plan.final_stage) == 3

    def test_empty_samples_give_empty_plan(self):
        plan = build_curriculum_stages([], np.array([]), num_stages=4)
        assert plan.stages == []
        assert plan.final_stage == []

    def test_scores_length_mismatch_rejected(self, samples):
        with pytest.raises(ValueError):
            build_curriculum_stages(samples[:4], np.zeros(3), num_stages=2)

    def test_heuristic_more_stages_than_samples(self, samples):
        plan = heuristic_curriculum_stages(samples[:2], num_stages=5)
        assert plan.num_stages == 2
        assert all(len(stage) == 1 for stage in plan.stages)


class TestTrainExpertsValidation:
    def test_none_labeler_with_samples_rejected(self, tiny_city, tiny_config,
                                                shared_resources, samples):
        # Regression: a None weak_labeler used to silently return untrained
        # experts, making the downstream difficulty scores pure noise.
        meta_sets, _ = split_into_meta_sets(samples, tiny_config.num_meta_sets)
        with pytest.raises(ValueError):
            train_experts(tiny_city.network, meta_sets, tiny_config,
                          resources=shared_resources, weak_labeler=None)

    def test_none_labeler_with_all_empty_meta_sets_allowed(self, tiny_city,
                                                           tiny_config,
                                                           shared_resources):
        experts = train_experts(tiny_city.network, [[], []], tiny_config,
                                resources=shared_resources, weak_labeler=None)
        assert len(experts) == 2
