"""Tests for the Transformer temporal path encoder extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TransformerPathEncoder, WSCModel, WSCTrainer
from repro.core.transformer import MultiHeadSelfAttention, TransformerBlock
from repro.datasets import TemporalPath
from repro.nn import Tensor
from repro.temporal import DepartureTime


@pytest.fixture(scope="module")
def transformer_encoder(tiny_city, tiny_config, shared_resources):
    return TransformerPathEncoder(
        tiny_city.network, tiny_config,
        spatial_embedding=shared_resources.new_spatial_embedding(),
        temporal_embedding=shared_resources.new_temporal_embedding(),
        num_layers=1, num_heads=2,
    )


class TestAttention:
    def test_output_shape(self, rng):
        attention = MultiHeadSelfAttention(dim=8, num_heads=2,
                                           rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(3, 5, 8)))
        out = attention(x)
        assert out.shape == (3, 5, 8)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=7, num_heads=2)

    def test_mask_blocks_padded_positions(self, rng):
        """Changing the content of masked positions must not change outputs at
        valid positions."""
        attention = MultiHeadSelfAttention(dim=6, num_heads=2,
                                           rng=np.random.default_rng(1))
        base = rng.normal(size=(1, 4, 6))
        altered = base.copy()
        altered[0, 3] = 99.0
        mask = np.array([[1.0, 1.0, 1.0, 0.0]])
        out_base = attention(Tensor(base), mask=mask)
        out_altered = attention(Tensor(altered), mask=mask)
        np.testing.assert_allclose(out_base.data[0, :3], out_altered.data[0, :3], atol=1e-9)

    def test_block_gradients_flow(self, rng):
        block = TransformerBlock(dim=8, num_heads=2, rng=np.random.default_rng(2))
        x = Tensor(rng.normal(size=(2, 3, 8)), requires_grad=True)
        block(x).sum().backward()
        assert all(p.grad is not None for p in block.parameters())


class TestTransformerPathEncoder:
    def test_encoded_batch_shapes(self, transformer_encoder, tiny_city, tiny_config):
        paths = tiny_city.unlabeled.temporal_paths[:4]
        encoded = transformer_encoder(paths)
        max_len = max(len(p) for p in paths)
        assert encoded.tprs.shape == (4, tiny_config.hidden_dim)
        assert encoded.edge_representations.shape == (4, max_len, tiny_config.hidden_dim)

    def test_encode_matrix(self, transformer_encoder, tiny_city, tiny_config):
        reps = transformer_encoder.encode(tiny_city.unlabeled.temporal_paths[:5],
                                          batch_size=2)
        assert reps.shape == (5, tiny_config.hidden_dim)
        assert np.isfinite(reps).all()

    def test_departure_time_changes_representation(self, transformer_encoder, tiny_city):
        base = tiny_city.unlabeled.temporal_paths[0]
        peak = TemporalPath(base.path, DepartureTime.from_hour(1, 8.0))
        night = TemporalPath(base.path, DepartureTime.from_hour(1, 3.0))
        reps = transformer_encoder.encode([peak, night])
        assert not np.allclose(reps[0], reps[1])

    def test_rejects_overlong_paths(self, tiny_city, tiny_config, shared_resources):
        encoder = TransformerPathEncoder(
            tiny_city.network, tiny_config,
            spatial_embedding=shared_resources.new_spatial_embedding(),
            temporal_embedding=shared_resources.new_temporal_embedding(),
            max_path_length=3,
        )
        too_long = TemporalPath(
            path=list(tiny_city.unlabeled.temporal_paths[0].path) * 5,
            departure_time=DepartureTime.from_hour(0, 8.0))
        with pytest.raises(ValueError):
            encoder([too_long])


class TestTransformerInWSCModel:
    def test_wsc_model_with_transformer_trains(self, tiny_city, tiny_config,
                                               shared_resources):
        model = WSCModel(tiny_city.network, config=tiny_config,
                         resources=shared_resources, encoder_type="transformer")
        trainer = WSCTrainer(model)
        batch = list(tiny_city.unlabeled)[:4]
        loss = trainer.train_step(batch, tiny_city.unlabeled.weak_labeler)
        assert np.isfinite(loss)

    def test_unknown_encoder_type_rejected(self, tiny_city, tiny_config, shared_resources):
        with pytest.raises(ValueError):
            WSCModel(tiny_city.network, config=tiny_config,
                     resources=shared_resources, encoder_type="rnn")
