"""Tests for WSCCLConfig."""

from __future__ import annotations

import pytest

from repro.core import WSCCLConfig


class TestWSCCLConfig:
    def test_derived_dimensions(self):
        config = WSCCLConfig(road_type_dim=8, lanes_dim=4, one_way_dim=2,
                             signals_dim=2, topology_dim=16, temporal_dim=16)
        assert config.spatial_type_dim == 16
        assert config.spatial_dim == 32
        assert config.encoder_input_dim == 48

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            WSCCLConfig(lambda_balance=1.5)

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            WSCCLConfig(temperature=0.0)

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            WSCCLConfig(batch_size=1)

    def test_meta_set_validation(self):
        with pytest.raises(ValueError):
            WSCCLConfig(num_meta_sets=0)

    def test_slots_per_day_must_divide_day(self):
        with pytest.raises(ValueError):
            WSCCLConfig(slots_per_day=7)

    def test_with_overrides_returns_new_object(self):
        config = WSCCLConfig()
        other = config.with_overrides(lambda_balance=0.5)
        assert other.lambda_balance == 0.5
        assert config.lambda_balance == 0.8
        assert other is not config

    def test_paper_scale_matches_paper_settings(self):
        paper = WSCCLConfig.paper_scale()
        assert paper.hidden_dim == 128
        assert paper.temporal_dim == 128
        assert paper.lstm_layers == 2
        assert paper.batch_size == 32
        assert paper.num_meta_sets == 10
        assert paper.slots_per_day == 288
        assert paper.lambda_balance == 0.8
        assert paper.learning_rate == pytest.approx(3e-4)

    def test_test_scale_is_small(self):
        test = WSCCLConfig.test_scale()
        assert test.hidden_dim <= 16
        assert test.num_meta_sets <= 4
