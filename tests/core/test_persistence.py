"""Tests for saving and loading trained models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WSCCL, WSCModel, load_model, save_model
from repro.roadnet import CityConfig, generate_city_network


class TestSaveLoad:
    def test_round_trip_preserves_representations(self, tmp_path, tiny_city, tiny_config,
                                                  shared_resources):
        model = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        model.fit_without_curriculum(tiny_city.unlabeled, batches_per_epoch=1)
        paths = tiny_city.unlabeled.temporal_paths[:5]
        original = model.encode(paths)

        archive = tmp_path / "wsccl.npz"
        save_model(archive, model)
        restored = load_model(archive, tiny_city.network)
        np.testing.assert_allclose(restored.encode(paths), original, atol=1e-9)

    def test_accepts_wsc_model_directly(self, tmp_path, tiny_city, tiny_config,
                                        shared_resources):
        model = WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources)
        archive = tmp_path / "wsc.npz"
        save_model(archive, model)
        restored = load_model(archive, tiny_city.network)
        paths = tiny_city.unlabeled.temporal_paths[:3]
        np.testing.assert_allclose(restored.encode(paths), model.encode(paths), atol=1e-9)

    def test_rejects_non_model_objects(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(tmp_path / "x.npz", object())

    def test_rejects_mismatched_network(self, tmp_path, tiny_city, tiny_config,
                                        shared_resources):
        model = WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources)
        archive = tmp_path / "wsc.npz"
        save_model(archive, model)
        other_network = generate_city_network(
            CityConfig(name="other", grid_rows=3, grid_cols=3, seed=99))
        with pytest.raises(ValueError):
            load_model(archive, other_network)

    def test_config_round_trip(self, tmp_path, tiny_city, tiny_config, shared_resources):
        model = WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources)
        archive = tmp_path / "wsc.npz"
        save_model(archive, model)
        restored = load_model(archive, tiny_city.network)
        assert restored.config.hidden_dim == tiny_config.hidden_dim
        assert restored.config.lambda_balance == tiny_config.lambda_balance
        assert restored.config.slots_per_day == tiny_config.slots_per_day
