"""Equivalence suites for the vectorized training fast path.

Three oracles, three suites:

* fused 4-D multi-head attention vs the per-head Python loop
  (:meth:`MultiHeadSelfAttention._reference_forward`),
* matrix-form global/local WSC losses vs the per-query loop losses
  (``_reference_global_wsc_loss`` / ``_reference_local_wsc_loss``),
* float32 vs float64 loss values (documented tolerance: the contrastive
  losses are O(1) magnitudes after the 1/temperature scaling, and agree to
  ``FLOAT32_TOLERANCE`` absolute over randomized batches).

Everything randomized goes through Hypothesis so shrinking produces a
minimal counterexample if a backward rule regresses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core.losses import (
    _reference_global_wsc_loss,
    _reference_local_wsc_loss,
    global_wsc_loss,
    local_wsc_loss,
)
from repro.core.sampling import ContrastSets, EdgeSampleSets
from repro.core.transformer import MultiHeadSelfAttention, attention_mask_bias

#: float64 fast-path vs loop-reference agreement (values and gradients).
FLOAT64_TOLERANCE = 1e-8

#: float32 vs float64 loss-value agreement on randomized batches.  The loss
#: is a mean of log-sum-exp terms of cosine similarities scaled by 1/0.1, so
#: its magnitude is O(10); float32's ~1e-7 relative error accumulated over a
#: batch lands comfortably inside 1e-3 absolute.
FLOAT32_TOLERANCE = 1e-3


def random_contrast_sets(size, rng):
    positives, negatives = [], []
    for i in range(size):
        others = np.array([j for j in range(size) if j != i], dtype=np.int64)
        rng.shuffle(others)
        pos_count = int(rng.integers(0, max(1, size // 2)))
        positives.append(np.sort(others[:pos_count]))
        negatives.append(np.sort(others[pos_count:]))
    return ContrastSets(positives=positives, negatives=negatives)


def random_edge_sets(size, max_len, rng):
    rows_p, cols_p, rows_n, cols_n = [], [], [], []
    for _ in range(size):
        p = int(rng.integers(0, 5))
        n = int(rng.integers(0, 5))
        rows_p.append(rng.integers(0, size, p))
        cols_p.append(rng.integers(0, max_len, p))
        rows_n.append(rng.integers(0, size, n))
        cols_n.append(rng.integers(0, max_len, n))
    return EdgeSampleSets(positive_rows=rows_p, positive_cols=cols_p,
                          negative_rows=rows_n, negative_cols=cols_n)


class TestFusedAttentionEquivalence:
    @given(seed=st.integers(0, 10_000),
           batch=st.integers(1, 4),
           time_steps=st.integers(1, 6),
           heads=st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_forward_matches_per_head_loop(self, seed, batch, time_steps, heads):
        rng = np.random.default_rng(seed)
        dim = heads * 3
        attention = MultiHeadSelfAttention(dim, num_heads=heads,
                                           rng=np.random.default_rng(seed + 1))
        x = rng.normal(size=(batch, time_steps, dim))
        mask = (rng.random((batch, time_steps)) > 0.3).astype(np.float64)
        mask[:, 0] = 1.0  # at least one valid key per row

        fused = attention(nn.Tensor(x), mask=mask)
        loop = attention._reference_forward(nn.Tensor(x), mask=mask)
        np.testing.assert_allclose(fused.data, loop.data, atol=FLOAT64_TOLERANCE)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_gradients_match_per_head_loop(self, seed):
        rng = np.random.default_rng(seed)
        attention = MultiHeadSelfAttention(8, num_heads=2,
                                           rng=np.random.default_rng(seed + 1))
        x = rng.normal(size=(2, 5, 8))
        mask = (rng.random((2, 5)) > 0.3).astype(np.float64)
        mask[:, 0] = 1.0

        fused_in = nn.Tensor(x, requires_grad=True)
        attention(fused_in, mask=mask).sum().backward()
        fused_grads = {name: p.grad.copy()
                       for name, p in attention.named_parameters()}
        fused_x_grad = fused_in.grad.copy()
        attention.zero_grad()

        loop_in = nn.Tensor(x, requires_grad=True)
        attention._reference_forward(loop_in, mask=mask).sum().backward()

        np.testing.assert_allclose(fused_x_grad, loop_in.grad, atol=FLOAT64_TOLERANCE)
        for name, parameter in attention.named_parameters():
            np.testing.assert_allclose(fused_grads[name], parameter.grad,
                                       atol=FLOAT64_TOLERANCE, err_msg=name)

    def test_precomputed_bias_matches_mask(self):
        rng = np.random.default_rng(0)
        attention = MultiHeadSelfAttention(6, num_heads=2,
                                           rng=np.random.default_rng(1))
        x = nn.Tensor(rng.normal(size=(2, 4, 6)))
        mask = np.array([[1.0, 1.0, 0.0, 0.0], [1.0, 1.0, 1.0, 1.0]])
        bias = attention_mask_bias(mask, dtype=np.float64)
        np.testing.assert_allclose(
            attention(x, mask=mask).data,
            attention(x, mask_bias=bias).data)


class TestMatrixLossEquivalence:
    @given(seed=st.integers(0, 10_000), size=st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_global_loss_matches_loop(self, seed, size):
        rng = np.random.default_rng(seed)
        tprs_data = rng.normal(size=(size, 8))
        sets = random_contrast_sets(size, rng)

        fast_tprs = nn.Tensor(tprs_data, requires_grad=True)
        fast = global_wsc_loss(fast_tprs, sets)
        loop_tprs = nn.Tensor(tprs_data, requires_grad=True)
        loop = _reference_global_wsc_loss(loop_tprs, sets)

        assert abs(float(fast.data) - float(loop.data)) < FLOAT64_TOLERANCE
        assert fast.requires_grad == loop.requires_grad
        if fast.requires_grad:
            fast.backward()
            loop.backward()
            np.testing.assert_allclose(fast_tprs.grad, loop_tprs.grad,
                                       atol=FLOAT64_TOLERANCE)

    @given(seed=st.integers(0, 10_000), size=st.integers(2, 10),
           max_len=st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_local_loss_matches_loop(self, seed, size, max_len):
        rng = np.random.default_rng(seed)
        tprs_data = rng.normal(size=(size, 6))
        edges_data = rng.normal(size=(size, max_len, 6))
        edge_sets = random_edge_sets(size, max_len, rng)

        fast_tprs = nn.Tensor(tprs_data, requires_grad=True)
        fast_edges = nn.Tensor(edges_data, requires_grad=True)
        fast = local_wsc_loss(fast_tprs, fast_edges, edge_sets)
        loop_tprs = nn.Tensor(tprs_data, requires_grad=True)
        loop_edges = nn.Tensor(edges_data, requires_grad=True)
        loop = _reference_local_wsc_loss(loop_tprs, loop_edges, edge_sets)

        assert abs(float(fast.data) - float(loop.data)) < FLOAT64_TOLERANCE
        assert fast.requires_grad == loop.requires_grad
        if fast.requires_grad:
            fast.backward()
            loop.backward()
            np.testing.assert_allclose(fast_tprs.grad, loop_tprs.grad,
                                       atol=FLOAT64_TOLERANCE)
            np.testing.assert_allclose(fast_edges.grad, loop_edges.grad,
                                       atol=FLOAT64_TOLERANCE)

    def test_degenerate_batches_return_zero(self):
        tprs = nn.Tensor(np.ones((3, 4)), requires_grad=True)
        empty_sets = ContrastSets(positives=[np.array([], dtype=np.int64)] * 3,
                                  negatives=[np.array([], dtype=np.int64)] * 3)
        loss = global_wsc_loss(tprs, empty_sets)
        assert float(loss.data) == 0.0
        assert not loss.requires_grad


class TestFloat32Agreement:
    @given(seed=st.integers(0, 10_000), size=st.integers(3, 10))
    @settings(max_examples=30, deadline=None)
    def test_global_loss_float32_close_to_float64(self, seed, size):
        rng = np.random.default_rng(seed)
        tprs_data = rng.normal(size=(size, 8))
        sets = random_contrast_sets(size, rng)

        full = global_wsc_loss(nn.Tensor(tprs_data), sets)
        half = global_wsc_loss(nn.Tensor(tprs_data.astype(np.float32)), sets)
        assert half.data.dtype == np.float32
        assert abs(float(full.data) - float(half.data)) < FLOAT32_TOLERANCE

    @given(seed=st.integers(0, 10_000), size=st.integers(3, 8),
           max_len=st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_local_loss_float32_close_to_float64(self, seed, size, max_len):
        rng = np.random.default_rng(seed)
        tprs_data = rng.normal(size=(size, 6))
        edges_data = rng.normal(size=(size, max_len, 6))
        edge_sets = random_edge_sets(size, max_len, rng)

        full = local_wsc_loss(nn.Tensor(tprs_data), nn.Tensor(edges_data), edge_sets)
        half = local_wsc_loss(nn.Tensor(tprs_data.astype(np.float32)),
                              nn.Tensor(edges_data.astype(np.float32)), edge_sets)
        assert half.data.dtype == np.float32
        assert abs(float(full.data) - float(half.data)) < FLOAT32_TOLERANCE

    def test_reference_impl_runs_loop_paths_end_to_end(self, tiny_city,
                                                       tiny_config,
                                                       shared_resources):
        """impl='reference' scopes the loop attention to each step without
        permanently mutating a model that other trainers/serving share."""
        from repro.core import WSCModel, WSCTrainer

        model = WSCModel(tiny_city.network, tiny_config,
                         resources=shared_resources,
                         encoder_type="transformer")
        blocks = [getattr(model.encoder, name)
                  for name in model.encoder._block_names]
        trainer = WSCTrainer(model, impl="reference")
        # Construction must not touch the model.
        assert all(block.attention.fused for block in blocks)

        seen = []
        original_forward = model.forward
        def spying_forward(paths):
            seen.append([block.attention.fused for block in blocks])
            return original_forward(paths)
        model.forward = spying_forward

        batch = list(tiny_city.unlabeled)[:4]
        loss = trainer.train_step(batch, tiny_city.unlabeled.weak_labeler)
        assert np.isfinite(loss)
        # During the step the loop path ran; afterwards the flags are restored.
        assert seen and all(not fused for fused in seen[0])
        assert all(block.attention.fused for block in blocks)

    @pytest.mark.parametrize("encoder_type", ["lstm", "transformer"])
    def test_float32_model_stays_float32_outside_context(self, tiny_city,
                                                         tiny_config,
                                                         shared_resources,
                                                         encoder_type):
        """A model built under float32 must keep computing (and training) in
        float32 after the dtype context exits — frozen temporal/spatial
        buffers must not re-introduce float64."""
        from repro.core import WSCModel, WSCTrainer

        with nn.default_dtype("float32"):
            model = WSCModel(tiny_city.network, tiny_config,
                             resources=shared_resources,
                             encoder_type=encoder_type)
        batch = list(tiny_city.unlabeled)[:4]
        encoded = model([tp for tp, _ in batch])
        assert encoded.tprs.data.dtype == np.float32
        assert encoded.edge_representations.data.dtype == np.float32

        trainer = WSCTrainer(model)
        trainer.train_step(batch, tiny_city.unlabeled.weak_labeler)
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_float32_training_step_agrees_with_float64(self, tiny_city,
                                                       tiny_config,
                                                       shared_resources):
        """One full train_step in each dtype lands on nearly the same loss."""
        from repro.core import WSCModel, WSCTrainer

        batch = list(tiny_city.unlabeled)[:6]
        labeler = tiny_city.unlabeled.weak_labeler
        losses = {}
        for dtype in ("float64", "float32"):
            with nn.default_dtype(dtype):
                model = WSCModel(tiny_city.network, tiny_config,
                                 resources=shared_resources,
                                 encoder_type="transformer")
                trainer = WSCTrainer(model, seed=7)
                losses[dtype] = trainer.train_step(batch, labeler)
        assert abs(losses["float32"] - losses["float64"]) < FLOAT32_TOLERANCE


class TestLoopPathMaskBias:
    def test_reference_branch_honours_precomputed_bias(self):
        """fused=False with only mask_bias supplied must still mask padding."""
        rng = np.random.default_rng(5)
        attention = MultiHeadSelfAttention(6, num_heads=2,
                                           rng=np.random.default_rng(6))
        attention.fused = False
        x = nn.Tensor(rng.normal(size=(2, 4, 6)))
        mask = np.array([[1.0, 1.0, 0.0, 0.0], [1.0, 1.0, 1.0, 0.0]])
        bias = attention_mask_bias(mask, dtype=np.float64)
        np.testing.assert_allclose(
            attention(x, mask_bias=bias).data,
            attention(x, mask=mask).data, atol=1e-12)
