"""Tests for positive/negative sample generation (paper §V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    augment_with_positive_views,
    build_contrast_sets,
    sample_edge_sets,
)
from repro.core.encoder import pad_paths
from repro.datasets import TemporalPath
from repro.temporal import DepartureTime, PeakOffPeakLabeler


def make_batch():
    labeler = PeakOffPeakLabeler()
    paths = [
        TemporalPath(path=[1, 2, 3, 4], departure_time=DepartureTime.from_hour(0, 8.0)),
        TemporalPath(path=[1, 2, 3, 4], departure_time=DepartureTime.from_hour(0, 8.3)),
        TemporalPath(path=[1, 2, 3, 4], departure_time=DepartureTime.from_hour(0, 17.0)),
        TemporalPath(path=[5, 6, 7], departure_time=DepartureTime.from_hour(0, 8.2)),
        TemporalPath(path=[8, 9], departure_time=DepartureTime.from_hour(5, 12.0)),
    ]
    return [(tp, labeler(tp.departure_time)) for tp in paths], labeler


class TestAugmentation:
    def test_doubles_the_batch(self, rng):
        batch, labeler = make_batch()
        augmented = augment_with_positive_views(batch, labeler, rng)
        assert len(augmented) == 2 * len(batch)

    def test_views_preserve_path_and_label(self, rng):
        batch, labeler = make_batch()
        augmented = augment_with_positive_views(batch, labeler, rng)
        originals = augmented[:len(batch)]
        views = augmented[len(batch):]
        for (tp, label), (view, view_label) in zip(originals, views):
            assert view.path == tp.path
            assert view_label == label
            assert labeler(view.departure_time) == label


class TestContrastSets:
    def test_paper_example_structure(self):
        """Mirror of the paper's Fig. 5 minibatch: tp_q with one positive
        (same path + same label) and three kinds of negatives."""
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        # Query 0: positive = 1 (same path, same morning-peak label).
        assert list(sets.positives[0]) == [1]
        # Negatives: 2 (same path, different label), 3 (different path, same
        # label), 4 (different path, different label).
        assert sorted(sets.negatives[0]) == [2, 3, 4]

    def test_positive_relation_is_symmetric(self):
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        assert 0 in sets.positives[1]

    def test_sets_partition_the_batch(self):
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        for i in range(len(batch)):
            combined = set(sets.positives[i]) | set(sets.negatives[i]) | {i}
            assert combined == set(range(len(batch)))
            assert not set(sets.positives[i]) & set(sets.negatives[i])

    def test_queries_with_positives(self):
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        queries = sets.queries_with_positives()
        assert 0 in queries and 1 in queries
        assert 4 not in queries


class TestEdgeSampleSets:
    def test_edges_drawn_from_correct_paths(self, rng):
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        _, mask = pad_paths([tp for tp, _ in batch])
        edge_sets = sample_edge_sets(batch, sets, mask, rng, edges_per_path=2)

        for i in range(len(batch)):
            allowed_pos_rows = set(sets.positives[i].tolist()) | {i}
            assert set(edge_sets.positive_rows[i].tolist()) <= allowed_pos_rows
            allowed_neg_rows = set(sets.negatives[i].tolist())
            assert set(edge_sets.negative_rows[i].tolist()) <= allowed_neg_rows

    def test_column_indices_are_valid_positions(self, rng):
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        paths = [tp for tp, _ in batch]
        _, mask = pad_paths(paths)
        edge_sets = sample_edge_sets(batch, sets, mask, rng, edges_per_path=3)
        lengths = mask.sum(axis=1)
        for i in range(len(batch)):
            for row, col in zip(edge_sets.positive_rows[i], edge_sets.positive_cols[i]):
                assert col < lengths[row]
            for row, col in zip(edge_sets.negative_rows[i], edge_sets.negative_cols[i]):
                assert col < lengths[row]

    def test_respects_edges_per_path_limit(self, rng):
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        _, mask = pad_paths([tp for tp, _ in batch])
        edge_sets = sample_edge_sets(batch, sets, mask, rng, edges_per_path=1)
        # Query 0 has 1 positive path plus itself -> at most 2 positive edges.
        assert len(edge_sets.positive_rows[0]) <= 2


class TestGroupedContrastSetsRegression:
    """The O(n) dict-grouped construction must reproduce the O(n²) scan."""

    def _random_batch(self, size, seed):
        rng = np.random.default_rng(seed)
        labeler = PeakOffPeakLabeler()
        pool = [
            [1, 2, 3, 4],
            [1, 2, 3, 4],   # duplicated on purpose: same-path groups
            [5, 6, 7],
            [8, 9],
        ]
        batch = []
        for _ in range(size):
            path = pool[rng.integers(0, len(pool))]
            hour = float(rng.uniform(0.0, 24.0))
            tp = TemporalPath(path=list(path),
                              departure_time=DepartureTime.from_hour(
                                  int(rng.integers(0, 7)), hour))
            batch.append((tp, labeler(tp.departure_time)))
        return batch

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("size", [2, 7, 33])
    def test_matches_pairwise_scan_on_randomized_batch(self, seed, size):
        from repro.core.sampling import _reference_build_contrast_sets

        batch = self._random_batch(size, seed)
        fast = build_contrast_sets(batch)
        slow = _reference_build_contrast_sets(batch)
        for i in range(size):
            np.testing.assert_array_equal(fast.positives[i], slow.positives[i])
            np.testing.assert_array_equal(fast.negatives[i], slow.negatives[i])


class TestVectorizedEdgeSampler:
    """Distributional/structural checks for the batched edge sampler."""

    def test_reference_sampler_same_structure(self, rng):
        from repro.core.sampling import _reference_sample_edge_sets

        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        _, mask = pad_paths([tp for tp, _ in batch])
        lengths = mask.sum(axis=1)

        for sampler in (sample_edge_sets, _reference_sample_edge_sets):
            edge_sets = sampler(batch, sets, mask, np.random.default_rng(0),
                                edges_per_path=2)
            for i in range(len(batch)):
                allowed_pos = set(sets.positives[i].tolist()) | {i}
                assert set(edge_sets.positive_rows[i].tolist()) <= allowed_pos
                assert set(edge_sets.negative_rows[i].tolist()) <= set(
                    sets.negatives[i].tolist())
                for rows, cols in ((edge_sets.positive_rows[i],
                                    edge_sets.positive_cols[i]),
                                   (edge_sets.negative_rows[i],
                                    edge_sets.negative_cols[i])):
                    for row, col in zip(rows, cols):
                        assert col < lengths[row]

    def test_draws_without_replacement_per_path(self, rng):
        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        _, mask = pad_paths([tp for tp, _ in batch])
        edge_sets = sample_edge_sets(batch, sets, mask, rng, edges_per_path=3)
        for i in range(len(batch)):
            seen = set()
            for row, col in zip(edge_sets.positive_rows[i],
                                edge_sets.positive_cols[i]):
                assert (int(row), int(col)) not in seen
                seen.add((int(row), int(col)))

    def test_sample_counts_match_reference_sampler(self, rng):
        """Both samplers draw min(edges_per_path, length) edges per pair."""
        from repro.core.sampling import _reference_sample_edge_sets

        batch, _ = make_batch()
        sets = build_contrast_sets(batch)
        _, mask = pad_paths([tp for tp, _ in batch])
        fast = sample_edge_sets(batch, sets, mask, np.random.default_rng(1),
                                edges_per_path=2)
        slow = _reference_sample_edge_sets(batch, sets, mask,
                                           np.random.default_rng(1),
                                           edges_per_path=2)
        for i in range(len(batch)):
            assert len(fast.positive_rows[i]) == len(slow.positive_rows[i])
            assert len(fast.negative_rows[i]) == len(slow.negative_rows[i])
