"""Tests for the spatial and temporal embedding layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpatialEmbedding, TemporalEmbedding, compute_edge_topology_features
from repro.temporal import DepartureTime


class TestSpatialEmbedding:
    @pytest.fixture(scope="class")
    def embedding(self, tiny_city, tiny_config, shared_resources):
        return SpatialEmbedding(tiny_city.network, tiny_config,
                                topology_features=shared_resources.topology_features)

    def test_output_shape(self, embedding, tiny_config):
        edge_ids = np.array([[0, 1, 2], [3, 4, 5]])
        out = embedding(edge_ids)
        assert out.shape == (2, 3, tiny_config.spatial_dim)

    def test_output_dim_property(self, embedding, tiny_config):
        assert embedding.output_dim == tiny_config.spatial_dim

    def test_same_edge_same_embedding(self, embedding):
        out = embedding(np.array([[0, 0]]))
        np.testing.assert_allclose(out.data[0, 0], out.data[0, 1])

    def test_different_edges_differ(self, embedding):
        out = embedding(np.array([[0, 1]]))
        assert not np.allclose(out.data[0, 0], out.data[0, 1])

    def test_gradients_reach_type_embeddings(self, embedding):
        out = embedding(np.array([[0, 1, 2]]))
        out.sum().backward()
        assert embedding.road_type_embedding.weight.grad is not None

    def test_topology_shape_mismatch_rejected(self, tiny_city, tiny_config):
        bad = np.zeros((3, tiny_config.topology_dim))
        with pytest.raises(ValueError):
            SpatialEmbedding(tiny_city.network, tiny_config, topology_features=bad)

    def test_compute_edge_topology_features(self, tiny_network):
        features = compute_edge_topology_features(tiny_network, dim=8, seed=0)
        assert features.shape == (tiny_network.num_edges, 8)
        assert np.isfinite(features).all()

    def test_topology_dim_must_be_even(self, tiny_network):
        with pytest.raises(ValueError):
            compute_edge_topology_features(tiny_network, dim=7)


class TestTemporalEmbedding:
    @pytest.fixture(scope="class")
    def embedding(self, tiny_config, shared_resources):
        return TemporalEmbedding(tiny_config, embeddings=shared_resources.temporal_embeddings)

    def test_output_shape(self, embedding, tiny_config):
        times = [DepartureTime.from_hour(0, 8.0), DepartureTime.from_hour(3, 15.0)]
        out = embedding(times)
        assert out.shape == (2, tiny_config.temporal_dim)

    def test_slot_index_granularity(self, embedding, tiny_config):
        slots_per_day = tiny_config.slots_per_day
        midnight_monday = DepartureTime.from_hour(0, 0.0)
        assert embedding.slot_index(midnight_monday) == 0
        late_sunday = DepartureTime.from_hour(6, 23.99)
        assert embedding.slot_index(late_sunday) == slots_per_day * 7 - 1

    def test_same_slot_same_embedding(self, embedding):
        a = embedding([DepartureTime.from_hour(0, 8.01)])
        b = embedding([DepartureTime.from_hour(0, 8.02)])
        np.testing.assert_allclose(a.data, b.data)

    def test_different_day_different_embedding(self, embedding):
        a = embedding([DepartureTime.from_hour(0, 8.0)])
        b = embedding([DepartureTime.from_hour(3, 8.0)])
        assert not np.allclose(a.data, b.data)

    def test_embeddings_are_frozen_constants(self, embedding):
        out = embedding([DepartureTime.from_hour(0, 9.0)])
        assert not out.requires_grad

    def test_shape_mismatch_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            TemporalEmbedding(tiny_config, embeddings=np.zeros((3, tiny_config.temporal_dim)))
