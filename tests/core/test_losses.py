"""Tests for the global and local weakly-supervised contrastive losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import combined_wsc_loss, global_wsc_loss, local_wsc_loss
from repro.core.sampling import ContrastSets, EdgeSampleSets


def make_contrast_sets(positives, negatives):
    return ContrastSets(
        positives=[np.asarray(p, dtype=np.int64) for p in positives],
        negatives=[np.asarray(n, dtype=np.int64) for n in negatives],
    )


class TestGlobalLoss:
    def test_lower_when_positives_aligned(self):
        """Pulling the positive close and pushing negatives away lowers the loss."""
        aligned = nn.Tensor(np.array([
            [1.0, 0.0], [0.99, 0.01], [-1.0, 0.0], [0.0, 1.0],
        ]), requires_grad=True)
        scrambled = nn.Tensor(np.array([
            [1.0, 0.0], [-1.0, 0.05], [0.99, 0.0], [0.9, 0.1],
        ]), requires_grad=True)
        sets = make_contrast_sets(
            positives=[[1], [0], [], []],
            negatives=[[2, 3], [2, 3], [0, 1, 3], [0, 1, 2]],
        )
        good = float(global_wsc_loss(aligned, sets).data)
        bad = float(global_wsc_loss(scrambled, sets).data)
        assert good < bad

    def test_zero_when_no_positive_pairs(self):
        tprs = nn.Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        sets = make_contrast_sets(positives=[[], [], []],
                                  negatives=[[1, 2], [0, 2], [0, 1]])
        loss = global_wsc_loss(tprs, sets)
        assert float(loss.data) == 0.0
        assert not loss.requires_grad

    def test_gradient_flows(self):
        tprs = nn.Tensor(np.random.default_rng(1).normal(size=(4, 6)), requires_grad=True)
        sets = make_contrast_sets(
            positives=[[1], [0], [3], [2]],
            negatives=[[2, 3], [2, 3], [0, 1], [0, 1]],
        )
        loss = global_wsc_loss(tprs, sets)
        loss.backward()
        assert tprs.grad is not None
        assert np.abs(tprs.grad).sum() > 0

    def test_temperature_scales_sharpness(self):
        tprs = nn.Tensor(np.random.default_rng(2).normal(size=(4, 8)), requires_grad=True)
        sets = make_contrast_sets(
            positives=[[1], [0], [3], [2]],
            negatives=[[2, 3], [2, 3], [0, 1], [0, 1]],
        )
        hot = float(global_wsc_loss(tprs, sets, temperature=1.0).data)
        cold = float(global_wsc_loss(tprs, sets, temperature=0.05).data)
        assert hot != cold

    def test_optimisation_pulls_positives_together(self):
        """A few gradient steps on the global loss should raise positive-pair
        cosine similarity above negative-pair similarity."""
        rng = np.random.default_rng(3)
        tprs = nn.Parameter(rng.normal(size=(4, 8)))
        sets = make_contrast_sets(
            positives=[[1], [0], [3], [2]],
            negatives=[[2, 3], [2, 3], [0, 1], [0, 1]],
        )
        optimizer = nn.Adam([tprs], lr=0.05)
        for _ in range(60):
            optimizer.zero_grad()
            loss = global_wsc_loss(tprs, sets, temperature=0.2)
            loss.backward()
            optimizer.step()

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        positive_sim = cosine(tprs.data[0], tprs.data[1])
        negative_sim = max(cosine(tprs.data[0], tprs.data[2]),
                           cosine(tprs.data[0], tprs.data[3]))
        assert positive_sim > negative_sim


class TestLocalLoss:
    def _edge_sets(self, batch, pos, neg):
        return EdgeSampleSets(
            positive_rows=[np.asarray(p[0], dtype=np.int64) for p in pos],
            positive_cols=[np.asarray(p[1], dtype=np.int64) for p in pos],
            negative_rows=[np.asarray(n[0], dtype=np.int64) for n in neg],
            negative_cols=[np.asarray(n[1], dtype=np.int64) for n in neg],
        )

    def test_prefers_similar_positive_edges(self):
        tprs = nn.Tensor(np.array([[1.0, 0.0]]), requires_grad=True)
        # Edge representations: position (0,0) aligned with the TPR,
        # position (0,1) anti-aligned.
        edges = nn.Tensor(np.array([[[1.0, 0.0], [-1.0, 0.0]]]), requires_grad=True)
        good = self._edge_sets(1, pos=[([0], [0])], neg=[([0], [1])])
        bad = self._edge_sets(1, pos=[([0], [1])], neg=[([0], [0])])
        loss_good = float(local_wsc_loss(tprs, edges, good).data)
        loss_bad = float(local_wsc_loss(tprs, edges, bad).data)
        assert loss_good < loss_bad

    def test_zero_when_no_samples(self):
        tprs = nn.Tensor(np.ones((2, 3)), requires_grad=True)
        edges = nn.Tensor(np.ones((2, 4, 3)), requires_grad=True)
        empty = self._edge_sets(2, pos=[([], []), ([], [])], neg=[([], []), ([], [])])
        loss = local_wsc_loss(tprs, edges, empty)
        assert float(loss.data) == 0.0

    def test_gradient_flows_to_edge_representations(self):
        rng = np.random.default_rng(0)
        tprs = nn.Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        edges = nn.Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        sets = self._edge_sets(
            2,
            pos=[([0, 0], [0, 1]), ([1], [0])],
            neg=[([1], [2]), ([0], [2])],
        )
        local_wsc_loss(tprs, edges, sets).backward()
        assert edges.grad is not None
        assert np.abs(edges.grad).sum() > 0


class TestCombinedLoss:
    def _setup(self):
        rng = np.random.default_rng(4)
        tprs = nn.Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        edges = nn.Tensor(rng.normal(size=(4, 5, 6)), requires_grad=True)
        contrast = make_contrast_sets(
            positives=[[1], [0], [3], [2]],
            negatives=[[2, 3], [2, 3], [0, 1], [0, 1]],
        )
        edge_sets = EdgeSampleSets(
            positive_rows=[np.array([0]), np.array([1]), np.array([2]), np.array([3])],
            positive_cols=[np.array([0]), np.array([1]), np.array([0]), np.array([2])],
            negative_rows=[np.array([2]), np.array([3]), np.array([0]), np.array([1])],
            negative_cols=[np.array([1]), np.array([0]), np.array([3]), np.array([4])],
        )
        return tprs, edges, contrast, edge_sets

    def test_lambda_one_equals_global_only(self):
        tprs, edges, contrast, edge_sets = self._setup()
        combined = combined_wsc_loss(tprs, edges, contrast, edge_sets, lambda_balance=1.0)
        global_only = global_wsc_loss(tprs, contrast)
        assert float(combined.data) == pytest.approx(float(global_only.data))

    def test_lambda_zero_equals_local_only(self):
        tprs, edges, contrast, edge_sets = self._setup()
        combined = combined_wsc_loss(tprs, edges, contrast, edge_sets, lambda_balance=0.0)
        local_only = local_wsc_loss(tprs, edges, edge_sets)
        assert float(combined.data) == pytest.approx(float(local_only.data))

    def test_intermediate_lambda_is_weighted_sum(self):
        tprs, edges, contrast, edge_sets = self._setup()
        lam = 0.8
        combined = combined_wsc_loss(tprs, edges, contrast, edge_sets, lambda_balance=lam)
        expected = (lam * float(global_wsc_loss(tprs, contrast).data)
                    + (1 - lam) * float(local_wsc_loss(tprs, edges, edge_sets).data))
        assert float(combined.data) == pytest.approx(expected, rel=1e-9)

    def test_combined_loss_is_differentiable(self):
        tprs, edges, contrast, edge_sets = self._setup()
        combined_wsc_loss(tprs, edges, contrast, edge_sets, lambda_balance=0.5).backward()
        assert tprs.grad is not None
        assert edges.grad is not None
