"""Tests for the temporal path encoder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PAD_EDGE_ID, TemporalPathEncoder, pad_paths
from repro.datasets import TemporalPath
from repro.temporal import DepartureTime


@pytest.fixture(scope="module")
def encoder(tiny_city, tiny_config, shared_resources):
    return TemporalPathEncoder(
        tiny_city.network, tiny_config,
        spatial_embedding=shared_resources.new_spatial_embedding(),
        temporal_embedding=shared_resources.new_temporal_embedding(),
    )


def paths_from_city(city, count=4):
    return city.unlabeled.temporal_paths[:count]


class TestPadPaths:
    def test_shapes_and_mask(self, tiny_city):
        paths = paths_from_city(tiny_city, 3)
        edge_ids, mask = pad_paths(paths)
        max_len = max(len(p) for p in paths)
        assert edge_ids.shape == (3, max_len)
        assert mask.shape == (3, max_len)
        for row, path in enumerate(paths):
            assert mask[row].sum() == len(path)
            np.testing.assert_array_equal(edge_ids[row, :len(path)], list(path.path))

    def test_padding_uses_reserved_pad_id(self, tiny_city):
        paths = paths_from_city(tiny_city, 4)
        edge_ids, mask = pad_paths(paths)
        for row, path in enumerate(paths):
            np.testing.assert_array_equal(
                edge_ids[row, len(path):], PAD_EDGE_ID)
        # The sentinel is never a valid edge id.
        assert PAD_EDGE_ID < 0
        assert not np.any(edge_ids[mask.astype(bool)] == PAD_EDGE_ID)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            pad_paths([])


class TestTemporalPathEncoder:
    def test_output_shapes(self, encoder, tiny_city, tiny_config):
        paths = paths_from_city(tiny_city, 4)
        encoded = encoder(paths)
        max_len = max(len(p) for p in paths)
        assert encoded.tprs.shape == (4, tiny_config.hidden_dim)
        assert encoded.edge_representations.shape == (4, max_len, tiny_config.hidden_dim)
        assert encoded.mask.shape == (4, max_len)

    def test_encode_returns_numpy_without_grad(self, encoder, tiny_city, tiny_config):
        paths = paths_from_city(tiny_city, 5)
        reps = encoder.encode(paths, batch_size=2)
        assert isinstance(reps, np.ndarray)
        assert reps.shape == (5, tiny_config.hidden_dim)
        assert np.isfinite(reps).all()

    def test_encode_empty_list(self, encoder, tiny_config):
        reps = encoder.encode([])
        assert reps.shape == (0, tiny_config.hidden_dim)

    def test_tpr_is_mean_of_valid_edge_representations(self, encoder, tiny_city):
        paths = paths_from_city(tiny_city, 3)
        encoded = encoder(paths)
        for row, path in enumerate(paths):
            valid = encoded.edge_representations.data[row, :len(path)]
            np.testing.assert_allclose(encoded.tprs.data[row], valid.mean(axis=0), atol=1e-9)

    def test_departure_time_changes_representation(self, encoder, tiny_city):
        base = tiny_city.unlabeled.temporal_paths[0]
        peak = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 8.0))
        night = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 3.0))
        reps = encoder.encode([peak, night])
        assert not np.allclose(reps[0], reps[1])

    def test_use_temporal_false_ignores_departure_time(self, tiny_city, tiny_config,
                                                       shared_resources):
        encoder_nt = TemporalPathEncoder(
            tiny_city.network, tiny_config,
            spatial_embedding=shared_resources.new_spatial_embedding(),
            temporal_embedding=shared_resources.new_temporal_embedding(),
            use_temporal=False,
        )
        base = tiny_city.unlabeled.temporal_paths[0]
        peak = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 8.0))
        night = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 3.0))
        reps = encoder_nt.encode([peak, night])
        np.testing.assert_allclose(reps[0], reps[1])

    def test_different_paths_have_different_representations(self, encoder, tiny_city):
        paths = paths_from_city(tiny_city, 2)
        if paths[0].path == paths[1].path:
            pytest.skip("tiny corpus produced identical paths")
        reps = encoder.encode(paths)
        assert not np.allclose(reps[0], reps[1])

    def test_batch_order_invariance(self, encoder, tiny_city):
        paths = paths_from_city(tiny_city, 3)
        forward = encoder.encode(paths)
        backward = encoder.encode(list(reversed(paths)))
        np.testing.assert_allclose(forward[0], backward[-1], atol=1e-9)

    def test_gradients_flow_through_encoder(self, encoder, tiny_city):
        paths = paths_from_city(tiny_city, 3)
        encoded = encoder(paths)
        encoded.tprs.sum().backward()
        grads = [p.grad for p in encoder.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)
        encoder.zero_grad()


class TestReservedPadId:
    """Regression tests: masked positions never contribute to pooled
    embeddings or gradients (the reserved-pad-id fix)."""

    def test_spatial_embedding_is_exactly_zero_at_pad_positions(
            self, shared_resources):
        spatial = shared_resources.new_spatial_embedding()
        batch = np.array([[0, 1, PAD_EDGE_ID, PAD_EDGE_ID], [2, 3, 1, 0]])
        embedded = spatial(batch)
        np.testing.assert_array_equal(embedded.data[0, 2:], 0.0)
        assert np.abs(embedded.data[0, :2]).sum() > 0
        assert np.abs(embedded.data[1]).sum() > 0

    def test_tpr_independent_of_batch_padding(self, encoder, tiny_city):
        paths = sorted(tiny_city.unlabeled.temporal_paths[:6], key=len)
        if len(paths[0]) == len(paths[-1]):
            pytest.skip("tiny corpus produced equal-length paths")
        alone = encoder.encode([paths[0]])
        batched = encoder.encode(paths)
        np.testing.assert_allclose(alone[0], batched[0], atol=1e-12)

    def test_pad_positions_receive_no_gradient(self, tiny_city, tiny_config,
                                               shared_resources):
        encoder = TemporalPathEncoder(
            tiny_city.network, tiny_config,
            spatial_embedding=shared_resources.new_spatial_embedding(),
            temporal_embedding=shared_resources.new_temporal_embedding(),
        )
        paths = sorted(tiny_city.unlabeled.temporal_paths[:5], key=len)
        if len(paths[0]) == len(paths[-1]):
            pytest.skip("tiny corpus produced equal-length paths")

        def gradients(batches):
            encoder.zero_grad()
            for batch in batches:
                encoder(batch).tprs.sum().backward()
            return {name: (None if p.grad is None else p.grad.copy())
                    for name, p in encoder.named_parameters()}

        # sum-of-TPR losses decompose per path, so the padded-batch gradient
        # must equal the sum of unpadded single-path gradients -- unless the
        # pad positions leak gradient.
        padded = gradients([paths])
        unpadded = gradients([[p] for p in paths])
        encoder.zero_grad()
        assert set(padded) == set(unpadded)
        for name, grad in padded.items():
            other = unpadded[name]
            if grad is None or other is None:
                assert grad is None and other is None, name
                continue
            np.testing.assert_allclose(grad, other, atol=1e-9, err_msg=name)
