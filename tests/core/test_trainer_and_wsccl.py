"""Tests for the WSC trainer and the full WSCCL pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import WSCCL, WSCModel, WSCTrainer
from repro.datasets import TemporalPath
from repro.temporal import DepartureTime


class TestWSCTrainer:
    @pytest.fixture()
    def model(self, tiny_city, tiny_config, shared_resources):
        return WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources)

    def test_train_step_returns_finite_loss(self, model, tiny_city):
        trainer = WSCTrainer(model)
        batch = list(tiny_city.unlabeled)[:4]
        loss = trainer.train_step(batch, tiny_city.unlabeled.weak_labeler)
        assert np.isfinite(loss)

    def test_train_step_updates_parameters(self, model, tiny_city):
        trainer = WSCTrainer(model)
        before = {name: value.copy() for name, value in model.state_dict().items()}
        batch = list(tiny_city.unlabeled)[:4]
        trainer.train_step(batch, tiny_city.unlabeled.weak_labeler)
        after = model.state_dict()
        changed = any(not np.allclose(before[name], after[name]) for name in before)
        assert changed

    def test_train_epoch_records_history(self, model, tiny_city):
        trainer = WSCTrainer(model)
        loss = trainer.train_epoch(tiny_city.unlabeled, batches=2)
        assert np.isfinite(loss)
        assert trainer.history.epoch_losses == [loss]

    def test_fit_runs_requested_epochs(self, model, tiny_city):
        trainer = WSCTrainer(model)
        history = trainer.fit(tiny_city.unlabeled, epochs=2, batches_per_epoch=2)
        assert len(history.epoch_losses) == 2

    def test_fit_on_samples(self, model, tiny_city):
        trainer = WSCTrainer(model)
        samples = list(tiny_city.unlabeled)[:8]
        history = trainer.fit_on_samples(samples, tiny_city.unlabeled.weak_labeler,
                                         epochs=1, batches_per_epoch=2)
        assert len(history.epoch_losses) >= 1

    def test_training_reduces_loss_on_small_corpus(self, tiny_city, tiny_config,
                                                   shared_resources):
        """A few epochs over a small fixed corpus should lower the contrastive loss."""
        model = WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources)
        trainer = WSCTrainer(model, seed=0)
        samples = list(tiny_city.unlabeled)[:12]
        losses = []
        for _ in range(6):
            epoch_losses = []
            for start in range(0, len(samples), 6):
                chunk = samples[start:start + 6]
                if len(chunk) < 2:
                    continue
                epoch_losses.append(
                    trainer.train_step(chunk, tiny_city.unlabeled.weak_labeler))
            losses.append(np.mean(epoch_losses))
        assert losses[-1] < losses[0]


class TestWSCModel:
    def test_encode_and_represent(self, tiny_city, tiny_config, shared_resources):
        model = WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources)
        paths = tiny_city.unlabeled.temporal_paths[:3]
        reps = model.encode(paths)
        assert reps.shape == (3, model.representation_dim)
        single = model.represent(paths[0])
        np.testing.assert_allclose(single, reps[0], atol=1e-9)

    def test_seed_controls_initialisation(self, tiny_city, tiny_config, shared_resources):
        a = WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources, seed=1)
        b = WSCModel(tiny_city.network, config=tiny_config, resources=shared_resources, seed=2)
        state_a, state_b = a.state_dict(), b.state_dict()
        assert any(not np.allclose(state_a[k], state_b[k]) for k in state_a)


class TestWSCCL:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_city, tiny_config, shared_resources):
        model = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        model.fit(tiny_city.unlabeled, batches_per_epoch=2, expert_batches=1)
        return model

    def test_fit_builds_experts_and_plan(self, fitted, tiny_config):
        assert len(fitted.experts) == tiny_config.num_meta_sets
        assert fitted.plan is not None
        assert fitted.plan.num_stages == tiny_config.num_stages

    def test_encode_after_fit(self, fitted, tiny_city):
        reps = fitted.encode(tiny_city.unlabeled.temporal_paths[:4])
        assert reps.shape == (4, fitted.representation_dim)
        assert np.isfinite(reps).all()

    def test_encoder_state_dict_is_loadable(self, fitted, tiny_city, tiny_config,
                                            shared_resources):
        state = fitted.encoder_state_dict()
        fresh = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        fresh.model.encoder.load_state_dict(state)
        paths = tiny_city.unlabeled.temporal_paths[:2]
        np.testing.assert_allclose(fresh.encode(paths), fitted.encode(paths), atol=1e-9)

    def test_fit_without_curriculum(self, tiny_city, tiny_config, shared_resources):
        model = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        model.fit_without_curriculum(tiny_city.unlabeled, batches_per_epoch=2)
        assert model.plan is None
        assert len(model.history.epoch_losses) == tiny_config.epochs

    def test_fit_with_heuristic_curriculum(self, tiny_city, tiny_config, shared_resources):
        model = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources)
        model.fit_with_heuristic_curriculum(tiny_city.unlabeled, batches_per_epoch=2)
        assert model.plan is not None
        assert not model.experts

    def test_no_temporal_variant_ignores_departure_time(self, tiny_city, tiny_config,
                                                        shared_resources):
        model = WSCCL(tiny_city.network, config=tiny_config, resources=shared_resources,
                      use_temporal=False)
        base = tiny_city.unlabeled.temporal_paths[0]
        peak = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 8.0))
        night = TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 3.0))
        reps = model.encode([peak, night])
        np.testing.assert_allclose(reps[0], reps[1])

    def test_representations_cluster_by_weak_label(self, fitted, tiny_city):
        """After training, same-path peak/off-peak pairs should be farther
        apart than same-path same-label pairs (on average)."""
        base = tiny_city.unlabeled.temporal_paths[0]
        same_label = [
            TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 8.0)),
            TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(2, 8.3)),
        ]
        cross_label = [
            TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 8.0)),
            TemporalPath(path=base.path, departure_time=DepartureTime.from_hour(1, 3.0)),
        ]

        def cosine(a, b):
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))

        same = cosine(*fitted.encode(same_label))
        cross = cosine(*fitted.encode(cross_label))
        # Not a strict ordering guarantee at this scale, but they must at
        # least be distinguishable representations.
        assert not np.isclose(same, cross, atol=1e-6) or same >= cross
