"""repro: reproduction of WSCCL (ICDE 2022).

Weakly-supervised Temporal Path Representation Learning with Contrastive
Curriculum Learning, built entirely on numpy-based substrates (see
``DESIGN.md`` for the system inventory and substitution notes).

Quickstart
----------
>>> from repro.datasets import aalborg, DatasetScale
>>> from repro.core import WSCCL, WSCCLConfig
>>> city = aalborg(scale=DatasetScale.tiny())
>>> model = WSCCL(city.network, config=WSCCLConfig.test_scale())
>>> model.fit(city.unlabeled)                                    # doctest: +SKIP
>>> tpr = model.represent(city.unlabeled.temporal_paths[0])      # doctest: +SKIP
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
