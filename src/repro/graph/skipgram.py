"""Skip-gram with negative sampling (SGNS) over random-walk corpora.

This is the word2vec-style objective node2vec optimises.  The SGD update was
always vectorised numpy (the SGNS gradient has a closed form); the corpus
extraction now is too:

* ``impl="reference"`` — (center, context) pairs via the original nested
  Python loops (:meth:`SkipGramTrainer._pairs_from_walk`) and a per-node
  counting loop for the noise distribution.
* ``impl="vectorized"`` (default) — strided context windows over a padded
  walk matrix, emitting pairs in *exactly* the reference order, plus a single
  batched ``np.bincount`` for the noise distribution.  Because the pair array
  and noise distribution are bit-identical, training consumes the RNG
  identically and the final embeddings match the reference bit for bit.

The learning rate decays linearly over the planned updates down to a floor
of ``lr / 10_000``, as in word2vec; disable with ``lr_decay=False``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SkipGramTrainer"]

_IMPLS = ("reference", "vectorized")

#: Word2vec's learning-rate floor: the linear decay never goes below
#: ``lr * _MIN_LR_FRACTION``.
_MIN_LR_FRACTION = 1e-4


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramTrainer:
    """Train node embeddings with skip-gram + negative sampling.

    Parameters
    ----------
    num_nodes:
        Vocabulary size.
    dim:
        Embedding dimensionality.
    window:
        Context window radius applied to each walk.
    negatives:
        Number of negative samples per positive pair.
    lr:
        Initial SGD learning rate (decays linearly when ``lr_decay``).
    lr_decay:
        Word2vec-style linear decay of the learning rate over the planned
        updates of a :meth:`train` call, floored at ``lr / 10_000``.
    impl:
        ``"vectorized"`` (default) or ``"reference"`` corpus extraction; the
        two produce bit-identical embeddings.
    """

    def __init__(self, num_nodes, dim, window=5, negatives=5, lr=0.025, seed=0,
                 batch_size=512, lr_decay=True, impl="vectorized"):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if impl not in _IMPLS:
            raise ValueError(f"impl must be one of {_IMPLS}, got {impl!r}")
        self.num_nodes = num_nodes
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self.lr_decay = lr_decay
        self.impl = impl
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        scale = 0.5 / dim
        self.in_embeddings = self.rng.uniform(-scale, scale, size=(num_nodes, dim))
        self.out_embeddings = np.zeros((num_nodes, dim))

    # ------------------------------------------------------------------
    # Corpus extraction
    # ------------------------------------------------------------------
    def _pairs_from_walk(self, walk):
        """(center, context) pairs within the window along a walk (reference)."""
        pairs = []
        for index, center in enumerate(walk):
            low = max(0, index - self.window)
            high = min(len(walk), index + self.window + 1)
            for context_index in range(low, high):
                if context_index != index:
                    pairs.append((center, walk[context_index]))
        return pairs

    def _reference_pairs(self, walks):
        """All pairs of the corpus via the per-walk loops, as an (P, 2) array."""
        pairs = []
        for walk in walks:
            pairs.extend(self._pairs_from_walk(walk))
        return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)

    def _vectorized_pairs(self, walks):
        """All pairs of the corpus in reference order, via strided windows.

        Walks are padded into one ``(num_walks, max_len)`` matrix; every
        window offset is one shifted view of that matrix.  Offsets are
        stacked in increasing order, so flattening row-major reproduces the
        reference enumeration exactly: walk by walk, center by center,
        contexts left-to-right.
        """
        num_walks = len(walks)
        lengths = np.fromiter((len(walk) for walk in walks), dtype=np.int64,
                              count=num_walks)
        if num_walks == 0 or lengths.max(initial=0) == 0:
            return np.zeros((0, 2), dtype=np.int64)
        max_len = int(lengths.max())
        padded = np.full((num_walks, max_len), -1, dtype=np.int64)
        for row, walk in enumerate(walks):
            padded[row, :len(walk)] = walk

        offsets = [d for d in range(-self.window, self.window + 1) if d != 0]
        contexts = np.full((num_walks, max_len, len(offsets)), -1, dtype=np.int64)
        for slot, offset in enumerate(offsets):
            width = max_len - abs(offset)
            if width <= 0:  # window wider than the longest walk
                continue
            if offset < 0:
                contexts[:, -offset:, slot] = padded[:, :width]
            else:
                contexts[:, :width, slot] = padded[:, offset:]
        centers = np.broadcast_to(padded[:, :, None], contexts.shape)
        valid = (contexts >= 0) & (centers >= 0)
        return np.stack((centers[valid], contexts[valid]), axis=1)

    def _noise_distribution(self, walks):
        """Unigram^0.75 noise distribution over the corpus."""
        if self.impl == "vectorized":
            counts = self._vectorized_noise_counts(walks)
        else:
            counts = self._reference_noise_counts(walks)
        counts = np.power(counts, 0.75)
        total = counts.sum()
        if total == 0:
            return np.full(self.num_nodes, 1.0 / self.num_nodes)
        return counts / total

    def _reference_noise_counts(self, walks):
        counts = np.zeros(self.num_nodes)
        for walk in walks:
            for node in walk:
                counts[node] += 1
        return counts

    def _vectorized_noise_counts(self, walks):
        if not walks:
            return np.zeros(self.num_nodes)
        nodes = np.concatenate([np.asarray(walk, dtype=np.int64) for walk in walks])
        return np.bincount(nodes, minlength=self.num_nodes).astype(np.float64)

    # ------------------------------------------------------------------
    def train(self, walks, epochs=1):
        """Run SGNS over the walk corpus for ``epochs`` passes."""
        noise = self._noise_distribution(walks)
        if self.impl == "vectorized":
            pairs = self._vectorized_pairs(walks)
        else:
            pairs = self._reference_pairs(walks)
        if pairs.shape[0] == 0:
            return self.in_embeddings

        batches_per_epoch = -(-len(pairs) // self.batch_size)
        total_batches = max(1, epochs * batches_per_epoch)
        completed = 0
        for _ in range(epochs):
            self.rng.shuffle(pairs)
            negatives = self.rng.choice(
                self.num_nodes, size=(len(pairs), self.negatives), p=noise
            )
            for start in range(0, len(pairs), self.batch_size):
                if self.lr_decay:
                    step_lr = max(self.lr * (1.0 - completed / total_batches),
                                  self.lr * _MIN_LR_FRACTION)
                else:
                    step_lr = self.lr
                chunk = slice(start, start + self.batch_size)
                self._update_batch(pairs[chunk, 0], pairs[chunk, 1],
                                   negatives[chunk], step_lr)
                completed += 1
        return self.in_embeddings

    def _update_batch(self, centers, contexts, negative_nodes, lr):
        """Vectorised SGNS update for a batch of (center, context, negatives)."""
        center_vecs = self.in_embeddings[centers]                     # (B, D)
        targets = np.concatenate((contexts[:, None], negative_nodes), axis=1)  # (B, 1+K)
        labels = np.zeros(targets.shape)
        labels[:, 0] = 1.0
        target_vecs = self.out_embeddings[targets]                    # (B, 1+K, D)
        scores = _sigmoid(np.einsum("bkd,bd->bk", target_vecs, center_vecs))
        errors = labels - scores                                      # (B, 1+K)
        grad_centers = np.einsum("bk,bkd->bd", errors, target_vecs)
        grad_targets = errors[:, :, None] * center_vecs[:, None, :]   # (B, 1+K, D)
        np.add.at(self.out_embeddings, targets.reshape(-1),
                  lr * grad_targets.reshape(-1, self.dim))
        np.add.at(self.in_embeddings, centers, lr * grad_centers)

    # ------------------------------------------------------------------
    def embeddings(self):
        """Final node embeddings (input vectors, the usual convention)."""
        return self.in_embeddings.copy()
