"""Skip-gram with negative sampling (SGNS) over random-walk corpora.

This is the word2vec-style objective node2vec optimises.  The implementation
is vectorised numpy (no autograd needed — the SGNS gradient has a closed
form), which keeps embedding the 2016-node temporal graph fast.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SkipGramTrainer"]


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramTrainer:
    """Train node embeddings with skip-gram + negative sampling.

    Parameters
    ----------
    num_nodes:
        Vocabulary size.
    dim:
        Embedding dimensionality.
    window:
        Context window radius applied to each walk.
    negatives:
        Number of negative samples per positive pair.
    lr:
        SGD learning rate.
    """

    def __init__(self, num_nodes, dim, window=5, negatives=5, lr=0.025, seed=0,
                 batch_size=512):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        self.num_nodes = num_nodes
        self.dim = dim
        self.window = window
        self.negatives = negatives
        self.lr = lr
        self.batch_size = batch_size
        self.rng = np.random.default_rng(seed)
        scale = 0.5 / dim
        self.in_embeddings = self.rng.uniform(-scale, scale, size=(num_nodes, dim))
        self.out_embeddings = np.zeros((num_nodes, dim))

    # ------------------------------------------------------------------
    def _pairs_from_walk(self, walk):
        """(center, context) pairs within the window along a walk."""
        pairs = []
        for index, center in enumerate(walk):
            low = max(0, index - self.window)
            high = min(len(walk), index + self.window + 1)
            for context_index in range(low, high):
                if context_index != index:
                    pairs.append((center, walk[context_index]))
        return pairs

    def _noise_distribution(self, walks):
        counts = np.zeros(self.num_nodes)
        for walk in walks:
            for node in walk:
                counts[node] += 1
        counts = np.power(counts, 0.75)
        total = counts.sum()
        if total == 0:
            return np.full(self.num_nodes, 1.0 / self.num_nodes)
        return counts / total

    # ------------------------------------------------------------------
    def train(self, walks, epochs=1):
        """Run SGNS over the walk corpus for ``epochs`` passes."""
        noise = self._noise_distribution(walks)
        pairs = []
        for walk in walks:
            pairs.extend(self._pairs_from_walk(walk))
        if not pairs:
            return self.in_embeddings
        pairs = np.asarray(pairs, dtype=np.int64)

        for _ in range(epochs):
            self.rng.shuffle(pairs)
            negatives = self.rng.choice(
                self.num_nodes, size=(len(pairs), self.negatives), p=noise
            )
            for start in range(0, len(pairs), self.batch_size):
                chunk = slice(start, start + self.batch_size)
                self._update_batch(pairs[chunk, 0], pairs[chunk, 1], negatives[chunk])
        return self.in_embeddings

    def _update_batch(self, centers, contexts, negative_nodes):
        """Vectorised SGNS update for a batch of (center, context, negatives)."""
        center_vecs = self.in_embeddings[centers]                     # (B, D)
        targets = np.concatenate((contexts[:, None], negative_nodes), axis=1)  # (B, 1+K)
        labels = np.zeros(targets.shape)
        labels[:, 0] = 1.0
        target_vecs = self.out_embeddings[targets]                    # (B, 1+K, D)
        scores = _sigmoid(np.einsum("bkd,bd->bk", target_vecs, center_vecs))
        errors = labels - scores                                      # (B, 1+K)
        grad_centers = np.einsum("bk,bkd->bd", errors, target_vecs)
        grad_targets = errors[:, :, None] * center_vecs[:, None, :]   # (B, 1+K, D)
        np.add.at(self.out_embeddings, targets.reshape(-1),
                  self.lr * grad_targets.reshape(-1, self.dim))
        np.add.at(self.in_embeddings, centers, self.lr * grad_centers)

    # ------------------------------------------------------------------
    def embeddings(self):
        """Final node embeddings (input vectors, the usual convention)."""
        return self.in_embeddings.copy()
