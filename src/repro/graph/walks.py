"""Biased second-order random walks (node2vec, Grover & Leskovec 2016).

WSCCL uses node2vec twice: on the temporal graph (to obtain temporal
embeddings of departure-time slots) and on the road network (to obtain
topology-aware node embeddings whose concatenation forms the edge topology
feature, paper Eq. 5).

Two implementations share the same sampling semantics:

* ``impl="reference"`` — the original per-walk, per-step Python loop
  (:meth:`RandomWalker._reference_walk_from`), kept as the oracle.
* ``impl="vectorized"`` (default) — a CSR-adjacency engine that queries
  ``neighbors_fn`` once per node, then advances *all* walks of a pass in
  lockstep: each batched step gathers the whole frontier's candidate
  neighbourhoods from the CSR arrays, computes the p/q bias weights with a
  sorted-membership check of candidates against the previous-step
  neighbourhoods, and samples every walk's next node with one
  cumulative-sum/searchsorted draw.

The two implementations consume the RNG differently, so individual walks
differ for the same seed; the *distribution* of walks is the same (pinned by
the Hypothesis suites in ``tests/graph/test_pretraining_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomWalker"]

_IMPLS = ("reference", "vectorized")


class RandomWalker:
    """Generate node2vec walks over a graph given by an adjacency callable.

    Parameters
    ----------
    neighbors_fn:
        Callable ``node -> sequence of neighbour nodes``.
    num_nodes:
        Number of nodes; walks start from every node in turn.
    p:
        Return parameter.  Larger p discourages immediately revisiting the
        previous node.
    q:
        In-out parameter.  q > 1 keeps walks local (BFS-like), q < 1 pushes
        them outward (DFS-like).
    impl:
        ``"vectorized"`` (default) advances all walks of a pass in lockstep
        over a precomputed CSR adjacency; ``"reference"`` runs the original
        per-walk Python loop.
    """

    def __init__(self, neighbors_fn, num_nodes, p=1.0, q=1.0, seed=0,
                 impl="vectorized"):
        if p <= 0 or q <= 0:
            raise ValueError("p and q must be positive")
        if impl not in _IMPLS:
            raise ValueError(f"impl must be one of {_IMPLS}, got {impl!r}")
        self.neighbors_fn = neighbors_fn
        self.num_nodes = num_nodes
        self.p = p
        self.q = q
        self.impl = impl
        self.rng = np.random.default_rng(seed)
        # CSR adjacency, built lazily on the first vectorized walk batch.
        self._indptr = None
        self._indices = None
        self._edge_keys = None

    # ------------------------------------------------------------------
    # CSR adjacency
    # ------------------------------------------------------------------
    def _ensure_csr(self):
        """Materialise the adjacency once: ``neighbors_fn`` is never called
        again afterwards, however many walks are generated."""
        if self._indptr is not None:
            return
        chunks = []
        counts = np.zeros(self.num_nodes + 1, dtype=np.int64)
        for node in range(self.num_nodes):
            neighbours = np.asarray(list(self.neighbors_fn(node)), dtype=np.int64)
            chunks.append(neighbours)
            counts[node + 1] = neighbours.size
        self._indptr = np.cumsum(counts)
        self._indices = (np.concatenate(chunks) if chunks
                         else np.zeros(0, dtype=np.int64))
        # Sorted (source, target) keys: membership of a candidate c in the
        # previous node's neighbourhood is one searchsorted lookup.
        sources = np.repeat(np.arange(self.num_nodes, dtype=np.int64),
                            np.diff(self._indptr))
        self._edge_keys = np.sort(sources * self.num_nodes + self._indices)

    # ------------------------------------------------------------------
    # Reference (per-walk) implementation
    # ------------------------------------------------------------------
    def walk_from(self, start, length):
        """One biased walk of at most ``length`` nodes starting at ``start``.

        Single walks always use the per-step loop — there is no frontier to
        batch over.
        """
        return self._reference_walk_from(start, length)

    def _reference_walk_from(self, start, length):
        walk = [start]
        neighbors = list(self.neighbors_fn(start))
        if not neighbors:
            return walk
        walk.append(int(self.rng.choice(neighbors)))
        while len(walk) < length:
            current = walk[-1]
            previous = walk[-2]
            neighbors = list(self.neighbors_fn(current))
            if not neighbors:
                break
            weights = np.empty(len(neighbors))
            previous_neighbors = set(self.neighbors_fn(previous))
            for index, candidate in enumerate(neighbors):
                if candidate == previous:
                    weights[index] = 1.0 / self.p
                elif candidate in previous_neighbors:
                    weights[index] = 1.0
                else:
                    weights[index] = 1.0 / self.q
            weights /= weights.sum()
            walk.append(int(self.rng.choice(neighbors, p=weights)))
        return walk

    # ------------------------------------------------------------------
    # Vectorized (lockstep) implementation
    # ------------------------------------------------------------------
    def _batched_walks(self, starts, length):
        """Advance one walk per entry of ``starts`` simultaneously."""
        self._ensure_csr()
        indptr, indices = self._indptr, self._indices
        degrees = np.diff(indptr)
        starts = np.asarray(starts, dtype=np.int64)
        num_walks = starts.size

        # Width 2 minimum: like the reference loop, the uniform first step is
        # taken whenever the start has neighbours, even for length < 2.
        walks = np.full((num_walks, max(length, 2)), -1, dtype=np.int64)
        walks[:, 0] = starts
        lengths = np.ones(num_walks, dtype=np.int64)
        if num_walks == 0:
            return []

        # First step: uniform choice among the start's neighbours.
        active = np.flatnonzero(degrees[starts] > 0)
        if active.size:
            first_degrees = degrees[starts[active]]
            offsets = (self.rng.random(active.size) * first_degrees).astype(np.int64)
            offsets = np.minimum(offsets, first_degrees - 1)
            walks[active, 1] = indices[indptr[starts[active]] + offsets]
            lengths[active] = 2

        inv_p = 1.0 / self.p
        inv_q = 1.0 / self.q
        for step in range(2, length):
            active = active[degrees[walks[active, step - 1]] > 0]
            if active.size == 0:
                break
            current = walks[active, step - 1]
            previous = walks[active, step - 2]

            # Ragged frontier neighbourhoods, flattened.
            counts = degrees[current]
            total = int(counts.sum())
            segment_ends = np.cumsum(counts)
            segment_starts = segment_ends - counts
            within = np.arange(total) - np.repeat(segment_starts, counts)
            candidates = indices[np.repeat(indptr[current], counts) + within]
            previous_repeated = np.repeat(previous, counts)

            # Second-order bias: 1/p back to the previous node, 1 for common
            # neighbours of (previous, current), 1/q otherwise.  Membership is
            # a sorted lookup into the global (source, target) key array.
            keys = previous_repeated * self.num_nodes + candidates
            positions = np.searchsorted(self._edge_keys, keys)
            member = np.zeros(total, dtype=bool)
            in_range = positions < self._edge_keys.size
            member[in_range] = self._edge_keys[positions[in_range]] == keys[in_range]
            weights = np.where(candidates == previous_repeated, inv_p,
                               np.where(member, 1.0, inv_q))

            # One categorical draw per walk over its ragged weight segment.
            cumulative = np.cumsum(weights)
            before = cumulative[segment_starts] - weights[segment_starts]
            totals = cumulative[segment_ends - 1] - before
            targets = before + self.rng.random(active.size) * totals
            chosen = np.searchsorted(cumulative, targets, side="right")
            chosen = np.clip(chosen, segment_starts, segment_ends - 1)

            walks[active, step] = candidates[chosen]
            lengths[active] = step + 1
        return [walks[i, :lengths[i]].tolist() for i in range(num_walks)]

    # ------------------------------------------------------------------
    def generate_walks(self, walks_per_node, walk_length):
        """All walks: ``walks_per_node`` starts from each node, shuffled order."""
        walks = []
        order = np.arange(self.num_nodes)
        for _ in range(walks_per_node):
            self.rng.shuffle(order)
            if self.impl == "reference":
                for start in order:
                    walks.append(self._reference_walk_from(int(start), walk_length))
            else:
                walks.extend(self._batched_walks(order, walk_length))
        return walks
