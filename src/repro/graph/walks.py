"""Biased second-order random walks (node2vec, Grover & Leskovec 2016).

WSCCL uses node2vec twice: on the temporal graph (to obtain temporal
embeddings of departure-time slots) and on the road network (to obtain
topology-aware node embeddings whose concatenation forms the edge topology
feature, paper Eq. 5).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomWalker"]


class RandomWalker:
    """Generate node2vec walks over a graph given by an adjacency callable.

    Parameters
    ----------
    neighbors_fn:
        Callable ``node -> sequence of neighbour nodes``.
    num_nodes:
        Number of nodes; walks start from every node in turn.
    p:
        Return parameter.  Larger p discourages immediately revisiting the
        previous node.
    q:
        In-out parameter.  q > 1 keeps walks local (BFS-like), q < 1 pushes
        them outward (DFS-like).
    """

    def __init__(self, neighbors_fn, num_nodes, p=1.0, q=1.0, seed=0):
        if p <= 0 or q <= 0:
            raise ValueError("p and q must be positive")
        self.neighbors_fn = neighbors_fn
        self.num_nodes = num_nodes
        self.p = p
        self.q = q
        self.rng = np.random.default_rng(seed)

    def walk_from(self, start, length):
        """One biased walk of at most ``length`` nodes starting at ``start``."""
        walk = [start]
        neighbors = list(self.neighbors_fn(start))
        if not neighbors:
            return walk
        walk.append(int(self.rng.choice(neighbors)))
        while len(walk) < length:
            current = walk[-1]
            previous = walk[-2]
            neighbors = list(self.neighbors_fn(current))
            if not neighbors:
                break
            weights = np.empty(len(neighbors))
            previous_neighbors = set(self.neighbors_fn(previous))
            for index, candidate in enumerate(neighbors):
                if candidate == previous:
                    weights[index] = 1.0 / self.p
                elif candidate in previous_neighbors:
                    weights[index] = 1.0
                else:
                    weights[index] = 1.0 / self.q
            weights /= weights.sum()
            walk.append(int(self.rng.choice(neighbors, p=weights)))
        return walk

    def generate_walks(self, walks_per_node, walk_length):
        """All walks: ``walks_per_node`` starts from each node, shuffled order."""
        walks = []
        order = np.arange(self.num_nodes)
        for _ in range(walks_per_node):
            self.rng.shuffle(order)
            for start in order:
                walks.append(self.walk_from(int(start), walk_length))
        return walks
