"""Node2vec front-end: walks + skip-gram, for arbitrary graphs.

``Node2Vec.fit_temporal_graph`` and ``Node2Vec.fit_road_network`` are thin
adapters for the two graphs WSCCL embeds (paper Eq. 2 and Eq. 5).

The ``impl`` knob selects the pretraining engine end to end: walk generation
(:class:`~repro.graph.walks.RandomWalker`) and corpus extraction
(:class:`~repro.graph.skipgram.SkipGramTrainer`) both honour it.
"""

from __future__ import annotations

import numpy as np

from .skipgram import SkipGramTrainer
from .walks import RandomWalker

__all__ = ["Node2Vec", "Node2VecConfig"]

_IMPLS = ("reference", "vectorized")


class Node2VecConfig:
    """Hyper-parameters for one node2vec run.

    ``impl`` picks the pretraining engine (``"vectorized"`` CSR walker and
    strided-window corpus vs the ``"reference"`` Python loops); ``lr_decay``
    enables the word2vec-style linear learning-rate schedule.
    """

    def __init__(self, dim=128, walks_per_node=10, walk_length=20, window=5,
                 negatives=5, epochs=2, p=1.0, q=1.0, lr=0.025, seed=0,
                 impl="vectorized", lr_decay=True):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if walk_length < 2:
            raise ValueError("walk_length must be >= 2")
        if impl not in _IMPLS:
            raise ValueError(f"impl must be one of {_IMPLS}, got {impl!r}")
        self.dim = dim
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.window = window
        self.negatives = negatives
        self.epochs = epochs
        self.p = p
        self.q = q
        self.lr = lr
        self.seed = seed
        self.impl = impl
        self.lr_decay = lr_decay


class Node2Vec:
    """Fit node2vec embeddings for a graph given its adjacency."""

    def __init__(self, config=None):
        self.config = config or Node2VecConfig()
        self._embeddings = None

    # ------------------------------------------------------------------
    def fit(self, neighbors_fn, num_nodes):
        """Fit embeddings for a generic graph.

        Parameters
        ----------
        neighbors_fn:
            Callable ``node -> sequence of neighbours``.
        num_nodes:
            Number of nodes in the graph.
        """
        cfg = self.config
        walker = RandomWalker(neighbors_fn, num_nodes, p=cfg.p, q=cfg.q,
                              seed=cfg.seed, impl=cfg.impl)
        walks = walker.generate_walks(cfg.walks_per_node, cfg.walk_length)
        trainer = SkipGramTrainer(
            num_nodes=num_nodes,
            dim=cfg.dim,
            window=cfg.window,
            negatives=cfg.negatives,
            lr=cfg.lr,
            seed=cfg.seed,
            lr_decay=cfg.lr_decay,
            impl=cfg.impl,
        )
        self._embeddings = trainer.train(walks, epochs=cfg.epochs)
        return self._embeddings

    def fit_temporal_graph(self, temporal_graph):
        """Embeddings for the 2016-node temporal graph (paper Eq. 2)."""
        return self.fit(temporal_graph.neighbors, temporal_graph.num_nodes)

    def fit_road_network(self, network):
        """Embeddings for road-network nodes.

        The road network is directed; node2vec walks use the undirected
        neighbourhood (union of out- and in-neighbours), matching how the
        paper applies a generic graph embedding to the network topology.
        """
        def undirected_neighbors(node):
            neighbours = set()
            for edge in network.out_edges(node):
                neighbours.add(network.edge_endpoints(edge)[1])
            for edge in network.in_edges(node):
                neighbours.add(network.edge_endpoints(edge)[0])
            return sorted(neighbours)

        return self.fit(undirected_neighbors, network.num_nodes)

    # ------------------------------------------------------------------
    @property
    def embeddings(self):
        """Node embedding matrix from the last :meth:`fit` call."""
        if self._embeddings is None:
            raise RuntimeError("Node2Vec has not been fitted")
        return self._embeddings

    def edge_topology_embeddings(self, network):
        """Per-edge topology feature: concatenation of endpoint embeddings (Eq. 5)."""
        node_embeddings = self.embeddings
        dim = node_embeddings.shape[1]
        if network.num_edges == 0:
            return np.zeros((0, 2 * dim))
        endpoints = np.asarray(
            [network.edge_endpoints(edge) for edge in range(network.num_edges)],
            dtype=np.int64,
        )
        return np.concatenate(
            (node_embeddings[endpoints[:, 0]], node_embeddings[endpoints[:, 1]]),
            axis=1,
        )
