"""Graph embedding substrate: node2vec (biased walks + skip-gram)."""

from .node2vec import Node2Vec, Node2VecConfig
from .skipgram import SkipGramTrainer
from .walks import RandomWalker

__all__ = ["Node2Vec", "Node2VecConfig", "RandomWalker", "SkipGramTrainer"]
