"""Time-slot arithmetic for departure times.

The paper (§IV-A) splits a day into 288 five-minute slots and considers the
seven days of a week separately, giving 2016 ``(day, slot)`` nodes in the
temporal graph.  This module provides the conversions between wall-clock
departure times and those slot indices.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "SLOT_MINUTES",
    "SLOTS_PER_DAY",
    "DAYS_PER_WEEK",
    "TOTAL_SLOTS",
    "DepartureTime",
]

SLOT_MINUTES = 5
SLOTS_PER_DAY = 24 * 60 // SLOT_MINUTES  # 288
DAYS_PER_WEEK = 7
TOTAL_SLOTS = SLOTS_PER_DAY * DAYS_PER_WEEK  # 2016


@dataclass(frozen=True)
class DepartureTime:
    """A departure time: day of week plus seconds since midnight.

    ``day_of_week`` follows ISO order with 0 = Monday … 6 = Sunday.
    """

    day_of_week: int
    seconds: float

    def __post_init__(self):
        if not 0 <= self.day_of_week < DAYS_PER_WEEK:
            raise ValueError(f"day_of_week must be in [0, 7), got {self.day_of_week}")
        if not 0.0 <= self.seconds < 24 * 3600:
            raise ValueError(f"seconds must be in [0, 86400), got {self.seconds}")

    # ------------------------------------------------------------------
    # Slot conversions
    # ------------------------------------------------------------------
    @property
    def slot_of_day(self):
        """Index of the 5-minute slot within the day (0..287)."""
        return int(self.seconds // (SLOT_MINUTES * 60))

    @property
    def slot_index(self):
        """Global node index in the temporal graph (0..2015)."""
        return self.day_of_week * SLOTS_PER_DAY + self.slot_of_day

    @property
    def hour(self):
        """Hour of day as a float (e.g. 8.5 for 08:30)."""
        return self.seconds / 3600.0

    @property
    def is_weekday(self):
        """Monday..Friday."""
        return self.day_of_week < 5

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_hour(cls, day_of_week, hour):
        """Build from a fractional hour of day, e.g. ``from_hour(0, 8.25)``."""
        return cls(day_of_week=day_of_week, seconds=float(hour) * 3600.0)

    @classmethod
    def from_slot_index(cls, slot_index):
        """Inverse of :attr:`slot_index`."""
        if not 0 <= slot_index < TOTAL_SLOTS:
            raise ValueError(f"slot_index must be in [0, {TOTAL_SLOTS})")
        day = slot_index // SLOTS_PER_DAY
        slot = slot_index % SLOTS_PER_DAY
        return cls(day_of_week=int(day), seconds=float(slot * SLOT_MINUTES * 60))

    def shift(self, seconds):
        """Return a new departure time shifted by ``seconds`` (wraps within the week)."""
        week_seconds = DAYS_PER_WEEK * 86400
        total = self.day_of_week * 86400 + self.seconds + seconds
        total %= week_seconds
        # Guard against float rounding: a tiny negative shift can make the
        # modulo return exactly one full week.
        if total >= week_seconds:
            total -= week_seconds
        day, remainder = divmod(total, 86400)
        day = int(day) % DAYS_PER_WEEK
        if remainder >= 86400.0:
            remainder = 0.0
            day = (day + 1) % DAYS_PER_WEEK
        return DepartureTime(day_of_week=day, seconds=float(remainder))
