"""Temporal substrate: time slots, temporal graph, weak labels."""

from .temporal_graph import TemporalGraph, build_temporal_graph
from .timeslots import (
    DAYS_PER_WEEK,
    SLOT_MINUTES,
    SLOTS_PER_DAY,
    TOTAL_SLOTS,
    DepartureTime,
)
from .weak_labels import (
    POP_AFTERNOON_PEAK,
    POP_MORNING_PEAK,
    POP_OFF_PEAK,
    CongestionIndexLabeler,
    PeakOffPeakLabeler,
    WeakLabeler,
)

__all__ = [
    "DepartureTime",
    "SLOT_MINUTES",
    "SLOTS_PER_DAY",
    "DAYS_PER_WEEK",
    "TOTAL_SLOTS",
    "TemporalGraph",
    "build_temporal_graph",
    "WeakLabeler",
    "PeakOffPeakLabeler",
    "CongestionIndexLabeler",
    "POP_MORNING_PEAK",
    "POP_AFTERNOON_PEAK",
    "POP_OFF_PEAK",
]
