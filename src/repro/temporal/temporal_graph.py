"""Temporal graph construction (paper §IV-A).

Each node of the temporal graph is a ``(day of week, 5-minute slot)`` pair —
2016 nodes in total.  Edges connect:

* adjacent time slots within a day (local similarity),
* the same slot on neighbouring days (weekly periodicity), including the
  Sunday → Monday wrap-around,
* the last slot of a day to the first slot of the next day.

Node2vec is then run on this graph to obtain temporal embeddings.
"""

from __future__ import annotations

import numpy as np

from .timeslots import DAYS_PER_WEEK, SLOTS_PER_DAY, TOTAL_SLOTS

__all__ = ["TemporalGraph", "build_temporal_graph"]


class TemporalGraph:
    """Undirected graph over the 2016 time-slot nodes."""

    def __init__(self, num_nodes=TOTAL_SLOTS):
        self.num_nodes = num_nodes
        self._adjacency = [set() for _ in range(num_nodes)]

    def add_edge(self, a, b):
        """Add an undirected edge; self-loops are ignored."""
        if a == b:
            return
        for node in (a, b):
            if not 0 <= node < self.num_nodes:
                raise KeyError(f"node {node} out of range")
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)

    def neighbors(self, node):
        """Sorted neighbour list of ``node``."""
        return sorted(self._adjacency[node])

    @property
    def num_edges(self):
        return sum(len(adj) for adj in self._adjacency) // 2

    def degree(self, node):
        return len(self._adjacency[node])

    def initial_node_features(self):
        """Initial one-hot node representations ``[ts, tw]`` (paper Eq. before Eq. 2).

        Returns a matrix of shape ``(num_nodes, 288 + 7)``.
        """
        features = np.zeros((self.num_nodes, SLOTS_PER_DAY + DAYS_PER_WEEK))
        for node in range(self.num_nodes):
            day = node // SLOTS_PER_DAY
            slot = node % SLOTS_PER_DAY
            features[node, slot] = 1.0
            features[node, SLOTS_PER_DAY + day] = 1.0
        return features


def build_temporal_graph(slots_per_day=SLOTS_PER_DAY, days=DAYS_PER_WEEK):
    """Construct the temporal graph exactly as described in the paper.

    ``slots_per_day``/``days`` can be reduced in tests to keep graphs small;
    the adjacency rules are unchanged.
    """
    num_nodes = slots_per_day * days
    graph = TemporalGraph(num_nodes=num_nodes)

    def node_of(day, slot):
        return day * slots_per_day + slot

    for day in range(days):
        for slot in range(slots_per_day):
            current = node_of(day, slot)
            # Adjacent slots within the same day.
            if slot + 1 < slots_per_day:
                graph.add_edge(current, node_of(day, slot + 1))
            else:
                # Last slot of the day connects to the first slot of the next day.
                graph.add_edge(current, node_of((day + 1) % days, 0))
            # Same slot on the neighbouring day (weekly periodicity), with the
            # Sunday -> Monday connection closing the cycle.
            graph.add_edge(current, node_of((day + 1) % days, slot))
    return graph
