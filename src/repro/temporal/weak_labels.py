"""Weak labels over departure times (paper Definition 6 and §VII-A5).

Two weak labelers are provided:

* :class:`PeakOffPeakLabeler` (POP, the paper's default): morning peak
  (7–9 a.m. weekdays), afternoon peak (4–7 p.m. weekdays), off-peak otherwise.
* :class:`CongestionIndexLabeler` (TCI): four congestion levels derived from a
  network-wide congestion profile.  The paper obtains these from Baidu Maps;
  here they come from the traffic simulator's congestion model, which plays
  the same role (a coarse, task-independent partition of departure times).
"""

from __future__ import annotations

__all__ = [
    "WeakLabeler",
    "PeakOffPeakLabeler",
    "CongestionIndexLabeler",
    "POP_MORNING_PEAK",
    "POP_AFTERNOON_PEAK",
    "POP_OFF_PEAK",
]

POP_MORNING_PEAK = 0
POP_AFTERNOON_PEAK = 1
POP_OFF_PEAK = 2


class WeakLabeler:
    """Interface: map a :class:`~repro.temporal.timeslots.DepartureTime` to a label."""

    #: Number of distinct labels the labeler can emit.
    num_labels = 0

    #: Short identifier used in experiment reports ("pop", "tci").
    name = "base"

    def label(self, departure_time):
        raise NotImplementedError

    def label_name(self, label):
        """Human-readable name of a label value."""
        raise NotImplementedError

    def __call__(self, departure_time):
        return self.label(departure_time)


class PeakOffPeakLabeler(WeakLabeler):
    """Peak vs. off-peak weak labels (paper's running example).

    Morning peak: 7–9 a.m. on weekdays.  Afternoon peak: 4–7 p.m. on
    weekdays.  Everything else (including weekends) is off-peak.
    """

    num_labels = 3
    name = "pop"

    def __init__(self, morning=(7.0, 9.0), afternoon=(16.0, 19.0)):
        if morning[0] >= morning[1] or afternoon[0] >= afternoon[1]:
            raise ValueError("peak windows must have start < end")
        self.morning = morning
        self.afternoon = afternoon

    def label(self, departure_time):
        if departure_time.is_weekday:
            hour = departure_time.hour
            if self.morning[0] <= hour < self.morning[1]:
                return POP_MORNING_PEAK
            if self.afternoon[0] <= hour < self.afternoon[1]:
                return POP_AFTERNOON_PEAK
        return POP_OFF_PEAK

    def label_name(self, label):
        return {POP_MORNING_PEAK: "morning-peak",
                POP_AFTERNOON_PEAK: "afternoon-peak",
                POP_OFF_PEAK: "off-peak"}[label]


class CongestionIndexLabeler(WeakLabeler):
    """Traffic-congestion-index weak labels with four levels.

    The label is the quantised network congestion level at the departure
    time, as reported by a congestion profile (callable
    ``(departure_time) -> float`` in [0, 1]).  Thresholds follow the usual
    TCI buckets: smooth, slow, congested, heavily congested.
    """

    num_labels = 4
    name = "tci"

    def __init__(self, congestion_profile, thresholds=(0.25, 0.5, 0.75)):
        thresholds = tuple(thresholds)
        # Strictly increasing: duplicates such as (0.5, 0.5, 0.75) would
        # silently make one of the four TCI labels unreachable.
        if len(thresholds) != 3 or any(
                right <= left for left, right in zip(thresholds, thresholds[1:])):
            raise ValueError("thresholds must be three strictly increasing values")
        self.congestion_profile = congestion_profile
        self.thresholds = thresholds

    def label(self, departure_time):
        level = float(self.congestion_profile(departure_time))
        for index, threshold in enumerate(self.thresholds):
            if level < threshold:
                return index
        return len(self.thresholds)

    def label_name(self, label):
        return {0: "smooth", 1: "slow", 2: "congested", 3: "heavily-congested"}[label]
