"""Model persistence: save and load trained WSCCL encoders.

The encoder state (all trainable parameters), the frozen node2vec features and
the configuration are stored in a single ``.npz`` archive so a trained model
can be shipped to downstream users without retraining node2vec or the
contrastive objective — the deployment mode the paper's "generic TPR" pitch
implies.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from .config import WSCCLConfig
from .model import SharedResources, WSCModel

__all__ = ["save_model", "load_model"]

_STATE_PREFIX = "state::"
_RESOURCE_TOPOLOGY = "resource::topology"
_RESOURCE_TEMPORAL = "resource::temporal"
_CONFIG_KEY = "config_json"
_META_KEY = "meta_json"


def save_model(path, model):
    """Persist a trained :class:`WSCModel` (or a ``WSCCL`` wrapper's model).

    Parameters
    ----------
    path:
        Destination ``.npz`` file path.
    model:
        A :class:`WSCModel`, or any object with a ``model`` attribute holding
        one (e.g. :class:`~repro.core.wsccl.WSCCL`).
    """
    if not isinstance(model, WSCModel):
        model = getattr(model, "model", None)
        if not isinstance(model, WSCModel):
            raise TypeError("save_model expects a WSCModel or a WSCCL instance")

    arrays = {
        _RESOURCE_TOPOLOGY: model.resources.topology_features,
        _RESOURCE_TEMPORAL: model.resources.temporal_embeddings,
    }
    for name, value in model.encoder.state_dict().items():
        arrays[_STATE_PREFIX + name] = value

    config_json = json.dumps(dataclasses.asdict(model.config))
    meta_json = json.dumps({
        "encoder_type": getattr(model, "encoder_type", "lstm"),
        "use_temporal": model.encoder.use_temporal,
        "num_network_edges": model.network.num_edges,
    })
    np.savez_compressed(path, **arrays,
                        **{_CONFIG_KEY: np.array(config_json),
                           _META_KEY: np.array(meta_json)})
    return path


def load_model(path, network):
    """Load a model saved with :func:`save_model` onto ``network``.

    The road network must be the same one the model was trained on (checked
    via its edge count); the frozen node2vec features stored in the archive
    are reused, so no walks are re-run.
    """
    archive = np.load(path, allow_pickle=False)
    config = WSCCLConfig(**json.loads(str(archive[_CONFIG_KEY])))
    meta = json.loads(str(archive[_META_KEY]))

    if network.num_edges != meta["num_network_edges"]:
        raise ValueError(
            f"network mismatch: archive was trained on {meta['num_network_edges']} "
            f"edges, got a network with {network.num_edges}")

    resources = SharedResources(
        network,
        config=config,
        topology_features=archive[_RESOURCE_TOPOLOGY],
        temporal_embeddings=archive[_RESOURCE_TEMPORAL],
    )
    model = WSCModel(
        network,
        config=config,
        resources=resources,
        use_temporal=meta["use_temporal"],
        encoder_type=meta.get("encoder_type", "lstm"),
    )
    state = {
        name[len(_STATE_PREFIX):]: archive[name]
        for name in archive.files if name.startswith(_STATE_PREFIX)
    }
    model.encoder.load_state_dict(state)
    return model
