"""Hyper-parameter configuration for WSCCL.

The defaults follow the paper's implementation settings (§VII-A6) scaled down
for the CPU-only numpy substrate: the paper's 128-dimensional embeddings and
2-layer/128-unit LSTM become 16–32-dimensional by default.  Benchmarks and
examples can raise or lower the scale through a single config object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["WSCCLConfig"]


@dataclass
class WSCCLConfig:
    """All WSCCL hyper-parameters.

    Attributes follow the paper's notation where possible.

    Embedding dimensions
    --------------------
    road_type_dim, lanes_dim, one_way_dim, signals_dim:
        ``d_rt``, ``d_l``, ``d_o``, ``d_ts`` of Eq. 3 (paper: 64/32/16/16).
    topology_dim:
        ``d_top``: size of the per-edge topology feature, i.e. the
        concatenation of the two endpoint node2vec embeddings (paper: 128).
    temporal_dim:
        ``d_tem``: node2vec dimensionality on the temporal graph (paper: 128).
    hidden_dim:
        ``d_h``: LSTM hidden size and the TPR dimensionality (paper: 128).

    Training
    --------
    lstm_layers:
        Number of stacked LSTM layers (paper: 2).
    learning_rate:
        Adam learning rate (paper: 3e-4).
    batch_size:
        Contrastive minibatch size (paper: 32).
    epochs:
        Number of passes over the unlabeled corpus for the basic WSC model.
    lambda_balance:
        λ of Eq. 12 weighting global vs. local WSC loss (paper: 0.8).
    temperature:
        Softmax temperature applied to cosine similarities in both losses.
    local_edges_per_path:
        How many positive/negative edges are sampled per query for Eq. 11.
    grad_clip:
        Global gradient-norm clip.

    Curriculum
    ----------
    num_meta_sets:
        N, the number of length-sorted meta-sets / expert models (paper: 10).
    num_stages:
        M, the number of curriculum stages; the paper keeps M = N.
    expert_epochs:
        Training epochs for each expert model.
    final_stage_epochs:
        Epochs of the final stage S_{M+1} that covers the full training set.

    Temporal graph scale
    --------------------
    slots_per_day:
        Number of time slots per day.  The paper uses 288 five-minute slots;
        48 (30-minute slots) keeps the temporal graph small by default while
        preserving the construction.  Set to 288 for paper fidelity.

    node2vec
    --------
    node2vec_walks, node2vec_walk_length, node2vec_window, node2vec_epochs:
        Walk-corpus parameters shared by the temporal graph and road network
        embedding runs.
    node2vec_impl:
        Pretraining engine for both node2vec runs: ``"vectorized"`` (CSR
        lockstep walker + strided-window corpus, the default) or
        ``"reference"`` (per-step Python loops).
    """

    # Embedding dimensions
    road_type_dim: int = 8
    lanes_dim: int = 4
    one_way_dim: int = 2
    signals_dim: int = 2
    topology_dim: int = 16
    temporal_dim: int = 16
    hidden_dim: int = 32

    # Encoder / training
    lstm_layers: int = 1
    learning_rate: float = 3e-4
    batch_size: int = 16
    epochs: int = 3
    lambda_balance: float = 0.8
    temperature: float = 0.1
    local_edges_per_path: int = 2
    grad_clip: float = 5.0

    # Curriculum
    num_meta_sets: int = 4
    num_stages: int = 4
    expert_epochs: int = 1
    final_stage_epochs: int = 1

    # Temporal graph scale
    slots_per_day: int = 48

    # node2vec
    node2vec_walks: int = 3
    node2vec_walk_length: int = 10
    node2vec_window: int = 3
    node2vec_epochs: int = 1
    node2vec_impl: str = "vectorized"

    # Reproducibility
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.lambda_balance <= 1.0:
            raise ValueError("lambda_balance must be in [0, 1]")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.batch_size < 2:
            raise ValueError("batch_size must be >= 2 for contrastive training")
        if self.num_meta_sets < 1 or self.num_stages < 1:
            raise ValueError("num_meta_sets and num_stages must be >= 1")
        if self.node2vec_impl not in ("reference", "vectorized"):
            raise ValueError("node2vec_impl must be 'reference' or 'vectorized'")
        if (24 * 60) % self.slots_per_day != 0:
            # Any divisor of 1440 minutes works; 288 is the paper's default.
            raise ValueError("slots_per_day must divide 1440 minutes")

    # ------------------------------------------------------------------
    @property
    def spatial_type_dim(self):
        """Dimensionality of the concatenated categorical embeddings (Eq. 4)."""
        return self.road_type_dim + self.lanes_dim + self.one_way_dim + self.signals_dim

    @property
    def spatial_dim(self):
        """``d`` of Eq. 6: topology feature plus categorical embeddings."""
        return self.topology_dim + self.spatial_type_dim

    @property
    def encoder_input_dim(self):
        """Per-edge LSTM input: temporal embedding plus spatial embedding."""
        return self.temporal_dim + self.spatial_dim

    def with_overrides(self, **kwargs):
        """Return a copy of this config with some fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper_scale(cls):
        """The paper's original hyper-parameters (slow on this substrate)."""
        return cls(
            road_type_dim=64,
            lanes_dim=32,
            one_way_dim=16,
            signals_dim=16,
            topology_dim=128,
            temporal_dim=128,
            hidden_dim=128,
            lstm_layers=2,
            batch_size=32,
            num_meta_sets=10,
            num_stages=10,
            slots_per_day=288,
        )

    @classmethod
    def test_scale(cls):
        """Very small configuration for unit tests."""
        return cls(
            road_type_dim=4,
            lanes_dim=2,
            one_way_dim=2,
            signals_dim=2,
            topology_dim=8,
            temporal_dim=8,
            hidden_dim=12,
            batch_size=8,
            epochs=1,
            num_meta_sets=2,
            num_stages=2,
            slots_per_day=24,
            node2vec_walks=1,
            node2vec_walk_length=5,
        )
