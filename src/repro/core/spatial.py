"""Spatial embedding layer (paper §IV-B).

Each edge of a path is embedded as the concatenation of

* trainable dense embeddings of its four categorical features — road type,
  number of lanes, one-way flag, traffic signals (Eq. 3–4), and
* a fixed topology feature: the concatenation of the node2vec embeddings of
  the edge's two endpoint nodes (Eq. 5), projected to ``topology_dim``.

The topology feature comes from a node2vec run over the road network and is
kept frozen, exactly as in the paper; the categorical embedding matrices are
learned end-to-end with the rest of the encoder.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import Node2Vec, Node2VecConfig

__all__ = ["SpatialEmbedding", "compute_edge_topology_features"]


def compute_edge_topology_features(network, dim, config=None, seed=0):
    """Node2vec topology feature per edge (Eq. 5), shape ``(num_edges, dim)``.

    ``dim`` must be even: each endpoint contributes ``dim / 2`` dimensions.
    """
    if dim % 2 != 0:
        raise ValueError("topology dim must be even (two endpoint embeddings)")
    node_dim = dim // 2
    n2v_config = config or Node2VecConfig(dim=node_dim, seed=seed)
    if n2v_config.dim != node_dim:
        raise ValueError("config dim must equal topology dim / 2")
    node2vec = Node2Vec(n2v_config)
    node2vec.fit_road_network(network)
    return node2vec.edge_topology_embeddings(network)


class SpatialEmbedding(nn.Module):
    """Compute spatial feature embeddings for batches of edge-id sequences.

    Parameters
    ----------
    network:
        The road network whose edges will be embedded.
    config:
        A :class:`~repro.core.config.WSCCLConfig`.
    topology_features:
        Optional pre-computed ``(num_edges, topology_dim)`` array.  When
        omitted it is computed here with node2vec (the expensive part), so
        callers that share a network across models should pass it in.
    """

    def __init__(self, network, config, topology_features=None, rng=None):
        super().__init__()
        self.config = config
        self.network = network
        rng = rng or np.random.default_rng(config.seed)

        encoder = network.feature_encoder
        self.road_type_embedding = nn.Embedding(encoder.num_road_types, config.road_type_dim, rng=rng)
        self.lanes_embedding = nn.Embedding(encoder.num_lane_buckets, config.lanes_dim, rng=rng)
        self.one_way_embedding = nn.Embedding(encoder.num_one_way, config.one_way_dim, rng=rng)
        self.signals_embedding = nn.Embedding(encoder.num_signals, config.signals_dim, rng=rng)

        if topology_features is None:
            topology_features = compute_edge_topology_features(
                network, config.topology_dim,
                config=Node2VecConfig(
                    dim=config.topology_dim // 2,
                    walks_per_node=config.node2vec_walks,
                    walk_length=config.node2vec_walk_length,
                    window=config.node2vec_window,
                    epochs=config.node2vec_epochs,
                    seed=config.seed,
                    impl=config.node2vec_impl,
                ),
                seed=config.seed,
            )
        topology_features = np.asarray(topology_features, dtype=np.float64)
        if topology_features.shape != (network.num_edges, config.topology_dim):
            raise ValueError(
                "topology_features has shape "
                f"{topology_features.shape}, expected {(network.num_edges, config.topology_dim)}"
            )
        # Frozen buffer (not a Parameter): the paper does not fine-tune it.
        self._topology_features = topology_features

        # Categorical index matrix (num_edges, 4) for fast lookup.
        self._edge_categories = network.edge_feature_matrix()

    @property
    def output_dim(self):
        """``d`` of Eq. 6."""
        return self.config.spatial_dim

    @property
    def topology_features(self):
        """The frozen per-edge topology feature matrix."""
        return self._topology_features

    def forward(self, edge_id_batch):
        """Embed a padded batch of edge-id sequences.

        Parameters
        ----------
        edge_id_batch:
            Integer array of shape ``(batch, max_len)``.  Padding positions
            hold the reserved :data:`~repro.core.encoder.PAD_EDGE_ID`
            sentinel (any negative id); they embed to exactly zero vectors,
            so padded steps contribute neither activations nor gradients.

        Returns
        -------
        Tensor of shape ``(batch, max_len, spatial_dim)``.
        """
        edge_ids = np.asarray(edge_id_batch, dtype=np.int64)
        padded = edge_ids < 0
        has_padding = bool(padded.any())
        safe_ids = np.where(padded, 0, edge_ids) if has_padding else edge_ids
        categories = self._edge_categories[safe_ids]          # (B, T, 4)

        road_type = self.road_type_embedding(categories[..., 0])
        lanes = self.lanes_embedding(categories[..., 1])
        one_way = self.one_way_embedding(categories[..., 2])
        signals = self.signals_embedding(categories[..., 3])
        type_embedding = nn.Tensor.concatenate(
            [road_type, lanes, one_way, signals], axis=-1
        )                                                      # Eq. 4

        # Match the trainable embeddings' dtype so float32 training does not
        # silently upcast through the frozen topology buffer.
        dtype = type_embedding.data.dtype
        topology_features = self._topology_features[safe_ids].astype(dtype, copy=False)
        if has_padding:
            keep = (~padded).astype(dtype)[..., None]
            topology_features = topology_features * keep
            type_embedding = type_embedding * nn.Tensor(keep)

        topology = nn.Tensor(topology_features)                # Eq. 5, frozen
        return nn.Tensor.concatenate([topology, type_embedding], axis=-1)  # Eq. 6
