"""Training loops for the WSC (basic) framework.

:class:`WSCTrainer` trains one :class:`~repro.core.model.WSCModel` with the
combined global/local weakly-supervised contrastive loss over minibatches of
temporal paths.  It is reused by the curriculum stage (to train experts and
to run the staged curriculum) and by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import nn
from .losses import combined_wsc_loss
from .sampling import augment_with_positive_views, build_contrast_sets, sample_edge_sets

__all__ = ["TrainingHistory", "WSCTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch average loss values recorded during training."""

    epoch_losses: list = field(default_factory=list)

    def record(self, value):
        self.epoch_losses.append(float(value))

    @property
    def final_loss(self):
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    def improved(self):
        """True when the last epoch's loss is below the first epoch's."""
        if len(self.epoch_losses) < 2:
            return False
        return self.epoch_losses[-1] < self.epoch_losses[0]


class WSCTrainer:
    """Minibatch trainer for the weakly-supervised contrastive objective.

    Parameters
    ----------
    model:
        The :class:`~repro.core.model.WSCModel` to train.
    config:
        Hyper-parameters (λ, temperature, batch size, learning rate, ...).
        Defaults to the model's own config.
    """

    def __init__(self, model, config=None, seed=None):
        self.model = model
        self.config = config or model.config
        self.rng = np.random.default_rng(self.config.seed if seed is None else seed)
        self.optimizer = nn.Adam(model.parameters(), lr=self.config.learning_rate)
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def train_step(self, batch, weak_labeler):
        """One optimisation step on a minibatch of ``(TemporalPath, label)``.

        Returns the scalar loss value of the step.
        """
        augmented = augment_with_positive_views(batch, weak_labeler, self.rng)
        temporal_paths = [tp for tp, _ in augmented]
        contrast_sets = build_contrast_sets(augmented)

        self.model.train()
        encoded = self.model(temporal_paths)
        edge_sets = sample_edge_sets(
            augmented, contrast_sets, encoded.mask, self.rng,
            edges_per_path=self.config.local_edges_per_path,
        )
        loss = combined_wsc_loss(
            encoded.tprs,
            encoded.edge_representations,
            contrast_sets,
            edge_sets,
            lambda_balance=self.config.lambda_balance,
            temperature=self.config.temperature,
        )
        if not loss.requires_grad:
            return float(loss.data)

        self.optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return float(loss.data)

    # ------------------------------------------------------------------
    def train_epoch(self, dataset, batches=None):
        """One pass over a :class:`~repro.datasets.temporal_paths.TemporalPathDataset`.

        ``batches`` optionally limits the number of minibatches (useful for
        smoke tests and benchmarks).  Returns the mean step loss.
        """
        losses = []
        for index, batch in enumerate(
            dataset.minibatches(self.config.batch_size, rng=self.rng)
        ):
            if batches is not None and index >= batches:
                break
            losses.append(self.train_step(batch, dataset.weak_labeler))
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        self.history.record(mean_loss)
        return mean_loss

    def fit(self, dataset, epochs=None, batches_per_epoch=None):
        """Train for ``epochs`` passes (default: the config's epoch count)."""
        epochs = self.config.epochs if epochs is None else epochs
        for _ in range(epochs):
            self.train_epoch(dataset, batches=batches_per_epoch)
        return self.history

    def fit_on_samples(self, samples, weak_labeler, epochs=1, batches_per_epoch=None):
        """Train on a plain list of ``(TemporalPath, label)`` pairs.

        Used by the curriculum stages, which operate on explicit sample lists
        rather than dataset objects.
        """
        samples = list(samples)
        losses = []
        for _ in range(epochs):
            order = np.arange(len(samples))
            self.rng.shuffle(order)
            count = 0
            for start in range(0, len(order), self.config.batch_size):
                if batches_per_epoch is not None and count >= batches_per_epoch:
                    break
                chunk = [samples[i] for i in order[start:start + self.config.batch_size]]
                if len(chunk) < 2:
                    continue
                losses.append(self.train_step(chunk, weak_labeler))
                count += 1
            if losses:
                self.history.record(float(np.mean(losses)))
        return self.history
