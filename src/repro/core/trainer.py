"""Training loops for the WSC (basic) framework.

:class:`WSCTrainer` trains one :class:`~repro.core.model.WSCModel` with the
combined global/local weakly-supervised contrastive loss over minibatches of
temporal paths.  It is reused by the curriculum stage (to train experts and
to run the staged curriculum) and by the ablation benchmarks.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from .losses import _reference_combined_wsc_loss, combined_wsc_loss
from .sampling import (
    _reference_build_contrast_sets,
    _reference_sample_edge_sets,
    augment_with_positive_views,
    build_contrast_sets,
    sample_edge_sets,
)

__all__ = ["TrainingHistory", "WSCTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch average loss values recorded during training."""

    epoch_losses: list = field(default_factory=list)

    def record(self, value):
        self.epoch_losses.append(float(value))

    @property
    def final_loss(self):
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    def improved(self):
        """True when the last epoch's loss is below the first epoch's."""
        if len(self.epoch_losses) < 2:
            return False
        return self.epoch_losses[-1] < self.epoch_losses[0]


class WSCTrainer:
    """Minibatch trainer for the weakly-supervised contrastive objective.

    Parameters
    ----------
    model:
        The :class:`~repro.core.model.WSCModel` to train.
    config:
        Hyper-parameters (λ, temperature, batch size, learning rate, ...).
        Defaults to the model's own config.
    impl:
        ``"vectorized"`` (default) uses the matrix-form losses and the
        dict-grouped contrast-set construction; ``"reference"`` uses the
        original per-query loop implementations.  The two are equivalent to
        numerical tolerance — ``"reference"`` exists for the loop-baseline
        rows of the training-throughput benchmark and for debugging.
    """

    def __init__(self, model, config=None, seed=None, impl="vectorized"):
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"impl must be 'vectorized' or 'reference', got {impl!r}")
        self.model = model
        self.config = config or model.config
        self.rng = np.random.default_rng(self.config.seed if seed is None else seed)
        self.optimizer = nn.Adam(model.parameters(), lr=self.config.learning_rate)
        self.history = TrainingHistory()
        self.impl = impl
        if impl == "vectorized":
            self._loss_fn = combined_wsc_loss
            self._contrast_fn = build_contrast_sets
            self._edge_fn = sample_edge_sets
        else:
            self._loss_fn = _reference_combined_wsc_loss
            self._contrast_fn = _reference_build_contrast_sets
            self._edge_fn = _reference_sample_edge_sets

    def _attention_scope(self):
        """Scope the encoder's attention impl to this trainer's knob.

        Applied around each step (not at construction) so a trainer never
        permanently mutates a model shared with other trainers or with the
        serving layer.  No-op for encoders without a fused/loop choice.
        """
        encoder = getattr(self.model, "encoder", self.model)
        if hasattr(encoder, "attention_impl"):
            return encoder.attention_impl(self.impl == "vectorized")
        return contextlib.nullcontext()

    # ------------------------------------------------------------------
    def train_step(self, batch, weak_labeler):
        """One optimisation step on a minibatch of ``(TemporalPath, label)``.

        Returns the scalar loss value of the step.
        """
        augmented = augment_with_positive_views(batch, weak_labeler, self.rng)
        temporal_paths = [tp for tp, _ in augmented]
        contrast_sets = self._contrast_fn(augmented)

        self.model.train()
        with self._attention_scope():
            encoded = self.model(temporal_paths)
        edge_sets = self._edge_fn(
            augmented, contrast_sets, encoded.mask, self.rng,
            edges_per_path=self.config.local_edges_per_path,
        )
        loss = self._loss_fn(
            encoded.tprs,
            encoded.edge_representations,
            contrast_sets,
            edge_sets,
            lambda_balance=self.config.lambda_balance,
            temperature=self.config.temperature,
        )
        if not loss.requires_grad:
            return float(loss.data)

        self.optimizer.zero_grad()
        loss.backward()
        nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
        self.optimizer.step()
        return float(loss.data)

    # ------------------------------------------------------------------
    def train_epoch(self, dataset, batches=None):
        """One pass over a :class:`~repro.datasets.temporal_paths.TemporalPathDataset`.

        ``batches`` optionally limits the number of minibatches (useful for
        smoke tests and benchmarks).  Returns the mean step loss.
        """
        losses = []
        for index, batch in enumerate(
            dataset.minibatches(self.config.batch_size, rng=self.rng)
        ):
            if batches is not None and index >= batches:
                break
            losses.append(self.train_step(batch, dataset.weak_labeler))
        mean_loss = float(np.mean(losses)) if losses else float("nan")
        self.history.record(mean_loss)
        return mean_loss

    def fit(self, dataset, epochs=None, batches_per_epoch=None):
        """Train for ``epochs`` passes (default: the config's epoch count)."""
        epochs = self.config.epochs if epochs is None else epochs
        for _ in range(epochs):
            self.train_epoch(dataset, batches=batches_per_epoch)
        return self.history

    def fit_on_samples(self, samples, weak_labeler, epochs=1, batches_per_epoch=None):
        """Train on a plain list of ``(TemporalPath, label)`` pairs.

        Used by the curriculum stages, which operate on explicit sample lists
        rather than dataset objects.
        """
        samples = list(samples)
        losses = []
        for _ in range(epochs):
            order = np.arange(len(samples))
            self.rng.shuffle(order)
            count = 0
            for start in range(0, len(order), self.config.batch_size):
                if batches_per_epoch is not None and count >= batches_per_epoch:
                    break
                chunk = [samples[i] for i in order[start:start + self.config.batch_size]]
                if len(chunk) < 2:
                    continue
                losses.append(self.train_step(chunk, weak_labeler))
                count += 1
            if losses:
                self.history.record(float(np.mean(losses)))
        return self.history
