"""Temporal Path Encoder (paper §IV).

The encoder turns a batch of temporal paths into

* spatio-temporal edge representations (STERs) — the per-step outputs of the
  LSTM over concatenated spatial/temporal edge features (Eq. 7), and
* temporal path representations (TPRs) — the masked mean of the STERs over
  the path (Eq. 8).
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from .. import nn
from .spatial import SpatialEmbedding
from .temporal_embedding import TemporalEmbedding

__all__ = ["TemporalPathEncoder", "EncodedBatch", "pad_paths", "PAD_EDGE_ID"]

#: Reserved edge id marking padding positions.  It is never a valid edge
#: index; :class:`~repro.core.spatial.SpatialEmbedding` maps it to an exactly
#: zero feature vector so padded steps cannot leak activations or gradients.
PAD_EDGE_ID = -1


def pad_paths(temporal_paths, pad_value=PAD_EDGE_ID):
    """Pad a list of temporal paths into dense arrays.

    Returns
    -------
    edge_ids:
        ``(batch, max_len)`` int array; padding positions hold the reserved
        :data:`PAD_EDGE_ID` sentinel (embedded as zeros and masked
        downstream).
    mask:
        ``(batch, max_len)`` float array with 1.0 on real steps.
    """
    if not temporal_paths:
        raise ValueError("cannot pad an empty batch")
    if pad_value != int(pad_value) or int(pad_value) >= 0:
        # Non-negative (or truncating-to-0) pads would alias a real edge id
        # and be embedded as it.
        raise ValueError(f"pad_value must be a negative integer, got {pad_value}")
    batch = len(temporal_paths)
    lengths = np.fromiter((len(tp) for tp in temporal_paths),
                          dtype=np.int64, count=batch)
    max_len = int(lengths.max())
    valid = np.arange(max_len)[None, :] < lengths[:, None]
    edge_ids = np.full((batch, max_len), int(pad_value), dtype=np.int64)
    edge_ids[valid] = np.fromiter(
        chain.from_iterable(tp.path for tp in temporal_paths),
        dtype=np.int64, count=int(lengths.sum()))
    return edge_ids, valid.astype(np.float64)


class EncodedBatch:
    """Output of the encoder for one batch of temporal paths."""

    def __init__(self, tprs, edge_representations, mask, edge_ids):
        #: Tensor (batch, hidden_dim): the TPRs.
        self.tprs = tprs
        #: Tensor (batch, max_len, hidden_dim): the STERs.
        self.edge_representations = edge_representations
        #: numpy (batch, max_len): validity mask.
        self.mask = mask
        #: numpy (batch, max_len): edge ids (padded).
        self.edge_ids = edge_ids


class TemporalPathEncoder(nn.Module):
    """Encode temporal paths into TPRs.

    Parameters
    ----------
    network:
        The road network the paths live on.
    config:
        :class:`~repro.core.config.WSCCLConfig`.
    spatial_embedding, temporal_embedding:
        Optional pre-built embedding modules.  Sharing the (frozen) node2vec
        features across several encoders — the curriculum experts, the
        WSCCL-NT ablation — avoids recomputing walks.
    use_temporal:
        When False the temporal embedding is replaced with zeros; this is the
        WSCCL-NT ablation of Table VIII.
    """

    def __init__(self, network, config, spatial_embedding=None,
                 temporal_embedding=None, use_temporal=True, rng=None):
        super().__init__()
        self.config = config
        self.network = network
        self.use_temporal = use_temporal
        rng = rng or np.random.default_rng(config.seed)

        self.spatial = spatial_embedding or SpatialEmbedding(network, config, rng=rng)
        self.temporal = temporal_embedding or TemporalEmbedding(config)
        self.lstm = nn.LSTM(
            input_size=config.encoder_input_dim,
            hidden_size=config.hidden_dim,
            num_layers=config.lstm_layers,
            rng=rng,
        )

    @property
    def output_dim(self):
        """``d_h``: dimensionality of the TPRs."""
        return self.config.hidden_dim

    # ------------------------------------------------------------------
    def forward(self, temporal_paths):
        """Encode a list of :class:`~repro.datasets.temporal_paths.TemporalPath`.

        Returns an :class:`EncodedBatch`.
        """
        edge_ids, mask = pad_paths(temporal_paths)
        batch, max_len = edge_ids.shape

        spatial = self.spatial(edge_ids)                      # (B, T, d)
        departure_times = [tp.departure_time for tp in temporal_paths]
        temporal = self.temporal(departure_times)             # (B, d_tem)
        if not self.use_temporal:
            temporal = nn.Tensor(np.zeros_like(temporal.data))
        # Broadcast the temporal embedding to every step of the path, in the
        # trainable embeddings' dtype so float32 models stay float32.
        temporal_steps = nn.Tensor(
            np.repeat(temporal.data[:, None, :], max_len, axis=1)
            .astype(spatial.data.dtype, copy=False)
        )
        inputs = nn.Tensor.concatenate([temporal_steps, spatial], axis=-1)

        outputs, _ = self.lstm(inputs, mask=mask)             # (B, T, d_h), Eq. 7

        # Masked mean over valid steps (Eq. 8).
        dtype = outputs.data.dtype
        mask_tensor = nn.Tensor(mask[:, :, None].astype(dtype))
        counts = nn.Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0).astype(dtype))
        summed = (outputs * mask_tensor).sum(axis=1)
        tprs = summed / counts

        return EncodedBatch(tprs=tprs, edge_representations=outputs,
                            mask=mask, edge_ids=edge_ids)

    # ------------------------------------------------------------------
    def encode(self, temporal_paths, batch_size=64):
        """Encode paths to a plain numpy TPR matrix without tracking gradients.

        This is the inference entry point used by the downstream tasks, the
        curriculum difficulty scoring, and the baselines' evaluation harness.
        """
        representations = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                encoded = self.forward(chunk)
                representations.append(encoded.tprs.data.copy())
        if not representations:
            return np.zeros((0, self.output_dim))
        return np.concatenate(representations, axis=0)
