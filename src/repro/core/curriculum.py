"""Contrastive curriculum learning (paper §VI).

Two stages:

1. **Curriculum sample evaluation** — the training data is sorted by path
   length and split into ``N`` non-overlapping meta-sets.  An independent
   WSC *expert* is trained on each meta-set.  The difficulty score of a
   temporal path from meta-set ``j`` is the summed cosine similarity between
   its representation under expert ``j`` (the "ground truth") and its
   representations under every other expert (Eq. 13).  High score = the
   experts agree = an easy sample.

2. **Curriculum sample selection** — samples are ranked by difficulty score
   and distributed over ``M`` stages from easy to hard; the model is trained
   for one epoch per stage, then for a final stage over the full training
   set.

A *heuristic* curriculum (sorting by number of edges, Table V's baseline) is
also provided for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .model import WSCModel
from .trainer import WSCTrainer

__all__ = [
    "split_into_meta_sets",
    "train_experts",
    "difficulty_scores",
    "build_curriculum_stages",
    "heuristic_curriculum_stages",
    "CurriculumPlan",
]


def split_into_meta_sets(samples, num_meta_sets):
    """Sort samples by path length and split into ``N`` contiguous meta-sets.

    ``samples`` is a list of ``(TemporalPath, weak_label)``.  Returns a list
    of ``N`` lists plus, per sample, the index of its meta-set (aligned with
    the *original* ordering of ``samples``).
    """
    if num_meta_sets < 1:
        raise ValueError("num_meta_sets must be >= 1")
    lengths = np.array([len(tp) for tp, _ in samples])
    order = np.argsort(lengths, kind="stable")
    assignments = np.zeros(len(samples), dtype=np.int64)
    meta_sets = [[] for _ in range(num_meta_sets)]
    splits = np.array_split(order, num_meta_sets)
    for set_index, indices in enumerate(splits):
        for sample_index in indices:
            meta_sets[set_index].append(samples[sample_index])
            assignments[sample_index] = set_index
    return meta_sets, assignments


def train_experts(network, meta_sets, config, resources=None, weak_labeler=None,
                  batches_per_epoch=None):
    """Train one independent WSC expert per meta-set.

    Each expert starts from a different random initialisation (seeded by its
    meta-set index) and sees only its own meta-set, per the paper.

    A ``weak_labeler`` is required whenever any meta-set holds samples:
    without one the experts would silently stay at their random
    initialisation and the difficulty scores downstream would be noise.
    """
    if weak_labeler is None and any(meta_sets):
        raise ValueError(
            "train_experts needs a weak_labeler when meta-sets are non-empty; "
            "untrained experts would yield meaningless difficulty scores")
    experts = []
    for set_index, meta_set in enumerate(meta_sets):
        expert = WSCModel(
            network, config=config, resources=resources,
            seed=config.seed + 100 + set_index,
        )
        trainer = WSCTrainer(expert, config=config, seed=config.seed + set_index)
        if meta_set:
            trainer.fit_on_samples(
                meta_set, weak_labeler,
                epochs=config.expert_epochs,
                batches_per_epoch=batches_per_epoch,
            )
        experts.append(expert)
    return experts


def difficulty_scores(samples, assignments, experts, batch_size=64):
    """Difficulty score per sample (Eq. 13).

    For a sample from meta-set ``j``, the score is the sum over all other
    experts ``k`` of the cosine similarity between expert ``j``'s and expert
    ``k``'s representation of the sample.  Higher = easier.
    """
    if len(experts) < 2:
        # With a single expert every sample is equally "easy".
        return np.zeros(len(samples))

    temporal_paths = [tp for tp, _ in samples]
    representations = [
        expert.encode(temporal_paths, batch_size=batch_size) for expert in experts
    ]
    normalized = []
    for matrix in representations:
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        normalized.append(matrix / np.maximum(norms, 1e-12))

    scores = np.zeros(len(samples))
    for index, own_set in enumerate(assignments):
        own = normalized[own_set][index]
        total = 0.0
        for other_set in range(len(experts)):
            if other_set == own_set:
                continue
            total += float(own @ normalized[other_set][index])
        scores[index] = total
    return scores


@dataclass
class CurriculumPlan:
    """The ordered training stages produced by curriculum selection.

    ``stages`` is a list of sample lists ordered easy → hard; ``final_stage``
    covers the entire training set (the paper's ``S_{M+1}``).
    """

    stages: list = field(default_factory=list)
    final_stage: list = field(default_factory=list)
    scores: np.ndarray = None

    @property
    def num_stages(self):
        return len(self.stages)


def build_curriculum_stages(samples, scores, num_stages, rng=None):
    """Rank samples by difficulty score and split them into ``M`` stages.

    Samples are sorted easiest-first (descending score) and distributed
    evenly; samples within each stage are shuffled "to ensure some local
    variations" as the paper puts it.

    When ``num_stages`` exceeds the sample count, the stages are merged down
    to one per sample instead of emitting empty stages (which would reach
    ``WSCTrainer.fit_on_samples`` as no-op epochs and silently skew the
    curriculum's stage count).
    """
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    samples = list(samples)
    scores = np.asarray(scores)
    if len(samples) != len(scores):
        raise ValueError("samples and scores must have the same length")
    rng = rng or np.random.default_rng(0)
    order = np.argsort(-scores, kind="stable")
    effective_stages = min(num_stages, len(samples))
    stages = []
    if effective_stages:
        for indices in np.array_split(order, effective_stages):
            indices = indices.copy()
            rng.shuffle(indices)
            stages.append([samples[i] for i in indices])
    return CurriculumPlan(stages=stages, final_stage=samples, scores=scores)


def heuristic_curriculum_stages(samples, num_stages, rng=None):
    """Heuristic curriculum baseline: order by number of edges (Table V)."""
    lengths = np.array([len(tp) for tp, _ in samples])
    # Short paths are treated as easy: score = -length so that the generic
    # "descending score = easiest first" ordering applies.
    return build_curriculum_stages(samples, -lengths, num_stages, rng=rng)
