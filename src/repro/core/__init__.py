"""Core WSCCL implementation (the paper's primary contribution)."""

from .config import WSCCLConfig
from .curriculum import (
    CurriculumPlan,
    build_curriculum_stages,
    difficulty_scores,
    heuristic_curriculum_stages,
    split_into_meta_sets,
    train_experts,
)
from .encoder import PAD_EDGE_ID, EncodedBatch, TemporalPathEncoder, pad_paths
from .losses import combined_wsc_loss, global_wsc_loss, local_wsc_loss
from .model import SharedResources, WSCModel
from .sampling import (
    ContrastSets,
    EdgeSampleSets,
    augment_with_positive_views,
    build_contrast_sets,
    sample_edge_sets,
)
from .persistence import load_model, save_model
from .spatial import SpatialEmbedding, compute_edge_topology_features
from .temporal_embedding import TemporalEmbedding
from .trainer import TrainingHistory, WSCTrainer
from .transformer import TransformerPathEncoder
from .wsccl import WSCCL

__all__ = [
    "WSCCLConfig",
    "SpatialEmbedding",
    "compute_edge_topology_features",
    "TemporalEmbedding",
    "TemporalPathEncoder",
    "EncodedBatch",
    "pad_paths",
    "PAD_EDGE_ID",
    "augment_with_positive_views",
    "build_contrast_sets",
    "sample_edge_sets",
    "ContrastSets",
    "EdgeSampleSets",
    "global_wsc_loss",
    "local_wsc_loss",
    "combined_wsc_loss",
    "WSCModel",
    "SharedResources",
    "WSCTrainer",
    "TrainingHistory",
    "split_into_meta_sets",
    "train_experts",
    "difficulty_scores",
    "build_curriculum_stages",
    "heuristic_curriculum_stages",
    "CurriculumPlan",
    "WSCCL",
    "TransformerPathEncoder",
    "save_model",
    "load_model",
]
