"""Weakly-supervised contrastive losses (paper §V).

Both functions return losses to *minimise*; they are the negations of the
paper's objectives (Eq. 10, Eq. 11) so they can be fed directly to an
optimiser.  :func:`combined_wsc_loss` implements Eq. 12's λ-weighted sum.

The public functions are the vectorized training fast path: one
``(batch, batch)`` cosine-similarity matrix plus boolean positive/negative
masks, with the per-query log-sum-exp done as a masked row-wise reduction —
no Python loop over queries.  The original per-query loop implementations
are retained as :func:`_reference_global_wsc_loss` /
:func:`_reference_local_wsc_loss`; they are the oracles for the equivalence
test suite and the loop-reference rows of the training-throughput benchmark.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["global_wsc_loss", "local_wsc_loss", "combined_wsc_loss"]

# Removes an entry from a row-wise log-sum-exp (see nn.functional docs).
_EXCLUDED_BIAS = F.EXCLUDED_BIAS


def _normalized(tprs, eps=1e-12):
    norm = (tprs * tprs).sum(axis=-1, keepdims=True) ** 0.5
    return tprs / (norm + eps)


def _zero_loss(dtype=None):
    return nn.Tensor(np.zeros((), dtype=dtype or np.float64), requires_grad=False)


def global_wsc_loss(tprs, contrast_sets, temperature=0.1):
    """Global weakly-supervised contrastive loss (negated Eq. 10), matrix form.

    Parameters
    ----------
    tprs:
        Tensor of shape ``(batch, hidden_dim)``.
    contrast_sets:
        :class:`~repro.core.sampling.ContrastSets` for the batch.
    temperature:
        Softmax temperature applied to the cosine similarities.

    Returns
    -------
    A scalar Tensor.  Returns a zero tensor when no query has both a
    positive and a negative sample (degenerate batch).
    """
    size = len(contrast_sets.positives)
    positive_mask = np.zeros((size, size), dtype=bool)
    negative_mask = np.zeros((size, size), dtype=bool)
    valid = []
    for i in range(size):
        positives = contrast_sets.positives[i]
        negatives = contrast_sets.negatives[i]
        if len(positives) == 0 or len(negatives) == 0:
            continue
        positive_mask[i, positives] = True
        negative_mask[i, negatives] = True
        valid.append(i)
    if not valid:
        return _zero_loss(tprs.data.dtype)
    valid = np.asarray(valid, dtype=np.int64)

    normalized = _normalized(tprs)
    similarities = (normalized @ normalized.transpose()) * (1.0 / temperature)

    # mean_{j in S_i} sim(i, j): one weighted row-sum instead of a gather per
    # query.  Rows without positives have all-zero weights (and are dropped
    # by the ``valid`` selection below).
    dtype = similarities.data.dtype
    counts = np.maximum(positive_mask.sum(axis=1, keepdims=True), 1).astype(dtype)
    positive_weights = positive_mask.astype(dtype) / counts
    positive_term = (similarities * nn.Tensor(positive_weights)).sum(axis=1)

    # log sum_{k in N_i} exp(sim(i, k)): masked row-wise log-sum-exp.
    negative_bias = np.where(negative_mask, 0.0, _EXCLUDED_BIAS)
    masked = similarities + nn.Tensor(negative_bias.astype(similarities.data.dtype))
    negative_lse = F.logsumexp(masked, axis=-1)

    objective = (positive_term - negative_lse)[valid]
    return -objective.mean()


def _reference_global_wsc_loss(tprs, contrast_sets, temperature=0.1):
    """Per-query loop implementation of Eq. 10 (equivalence oracle)."""
    normalized = _normalized(tprs)
    similarities = (normalized @ normalized.transpose()) * (1.0 / temperature)

    terms = []
    for i in range(len(contrast_sets.positives)):
        positives = contrast_sets.positives[i]
        negatives = contrast_sets.negatives[i]
        if len(positives) == 0 or len(negatives) == 0:
            continue
        positive_sims = similarities[i, positives]
        negative_sims = similarities[i, negatives]
        denominator = F.logsumexp(negative_sims, axis=-1)
        # (1/|S_i|) * sum_j [ sim(i, j) - log sum_k exp(sim(i, k)) ]
        objective = (positive_sims - denominator).mean()
        terms.append(objective)

    if not terms:
        return _zero_loss(tprs.data.dtype)
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return -(total * (1.0 / len(terms)))


def _padded_logsumexp(flat_sims, segment_lengths):
    """Row-wise log-sum-exp over a flat Tensor split into ragged segments.

    ``flat_sims`` is a 1-D Tensor of concatenated per-query similarity
    values; ``segment_lengths`` gives each query's run length.  The segments
    are gathered into one padded ``(num_queries, max_len)`` matrix (padding
    biased by :data:`_EXCLUDED_BIAS`, so it contributes exactly zero) and
    reduced with a single log-sum-exp — no Python loop over queries.
    """
    lengths = np.asarray(segment_lengths, dtype=np.int64)
    num_queries = len(lengths)
    max_len = int(lengths.max())
    pad_index = np.zeros((num_queries, max_len), dtype=np.int64)
    pad_bias = np.full((num_queries, max_len), _EXCLUDED_BIAS)
    offset = 0
    for row, length in enumerate(lengths):
        pad_index[row, :length] = np.arange(offset, offset + length)
        pad_bias[row, :length] = 0.0
        offset += int(length)
    padded = flat_sims[pad_index] + nn.Tensor(pad_bias.astype(flat_sims.data.dtype))
    return F.logsumexp(padded, axis=-1)


def local_wsc_loss(tprs, edge_representations, edge_sets, temperature=0.1):
    """Local weakly-supervised contrastive loss (negated Eq. 11), matrix form.

    Parameters
    ----------
    tprs:
        Tensor ``(batch, hidden_dim)`` — the query TPRs.
    edge_representations:
        Tensor ``(batch, max_len, hidden_dim)`` — the STERs.
    edge_sets:
        :class:`~repro.core.sampling.EdgeSampleSets` giving the sampled
        positive/negative edge positions per query.
    """
    batch = tprs.shape[0]
    valid = [i for i in range(batch)
             if len(edge_sets.positive_rows[i]) > 0
             and len(edge_sets.negative_rows[i]) > 0]
    if not valid:
        return _zero_loss(tprs.data.dtype)

    def gather_sims(rows_per_query, cols_per_query):
        rows = np.concatenate([rows_per_query[i] for i in valid])
        cols = np.concatenate([cols_per_query[i] for i in valid])
        query_index = np.concatenate(
            [np.full(len(rows_per_query[i]), i, dtype=np.int64) for i in valid])
        # One gather for every (query, edge) pair in the batch.
        edges = edge_representations[rows, cols]
        queries = tprs[query_index]
        sims = F.cosine_similarity(queries, edges) * (1.0 / temperature)
        lengths = [len(rows_per_query[i]) for i in valid]
        return _padded_logsumexp(sims, lengths)

    positive_lse = gather_sims(edge_sets.positive_rows, edge_sets.positive_cols)
    negative_lse = gather_sims(edge_sets.negative_rows, edge_sets.negative_cols)

    weights = np.asarray(
        [1.0 / len(edge_sets.positive_rows[i]) for i in valid],
        dtype=positive_lse.data.dtype)
    per_query = (positive_lse - negative_lse) * nn.Tensor(weights)
    return -(per_query.sum() * (1.0 / len(valid)))


def _reference_local_wsc_loss(tprs, edge_representations, edge_sets, temperature=0.1):
    """Per-query loop implementation of Eq. 11 (equivalence oracle)."""
    terms = []
    batch = tprs.shape[0]
    for i in range(batch):
        pos_rows = edge_sets.positive_rows[i]
        pos_cols = edge_sets.positive_cols[i]
        neg_rows = edge_sets.negative_rows[i]
        neg_cols = edge_sets.negative_cols[i]
        if len(pos_rows) == 0 or len(neg_rows) == 0:
            continue
        query = tprs[i:i + 1, :]                               # (1, d_h)
        positive_edges = edge_representations[pos_rows, pos_cols]  # (P, d_h)
        negative_edges = edge_representations[neg_rows, neg_cols]  # (N, d_h)

        positive_sims = F.cosine_similarity(query, positive_edges) * (1.0 / temperature)
        negative_sims = F.cosine_similarity(query, negative_edges) * (1.0 / temperature)

        objective = (
            F.logsumexp(positive_sims, axis=-1) - F.logsumexp(negative_sims, axis=-1)
        ) * (1.0 / len(pos_rows))
        terms.append(objective)

    if not terms:
        return _zero_loss(tprs.data.dtype)
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return -(total * (1.0 / len(terms)))


def combined_wsc_loss(tprs, edge_representations, contrast_sets, edge_sets,
                      lambda_balance=0.8, temperature=0.1,
                      global_loss=None, local_loss=None):
    """λ-weighted combination of the global and local losses (negated Eq. 12).

    ``lambda_balance = 1`` uses only the global loss ("w/o Local" ablation);
    ``lambda_balance = 0`` uses only the local loss ("w/o Global").
    ``global_loss`` / ``local_loss`` override the implementations (used by
    :func:`_reference_combined_wsc_loss`).
    """
    global_loss = global_loss or global_wsc_loss
    local_loss = local_loss or local_wsc_loss
    if lambda_balance >= 1.0:
        return global_loss(tprs, contrast_sets, temperature=temperature)
    if lambda_balance <= 0.0:
        return local_loss(tprs, edge_representations, edge_sets, temperature=temperature)
    global_term = global_loss(tprs, contrast_sets, temperature=temperature)
    local_term = local_loss(tprs, edge_representations, edge_sets, temperature=temperature)
    return global_term * lambda_balance + local_term * (1.0 - lambda_balance)


def _reference_combined_wsc_loss(tprs, edge_representations, contrast_sets,
                                 edge_sets, lambda_balance=0.8, temperature=0.1):
    """Eq. 12 built from the per-query loop losses (benchmark baseline)."""
    return combined_wsc_loss(
        tprs, edge_representations, contrast_sets, edge_sets,
        lambda_balance=lambda_balance, temperature=temperature,
        global_loss=_reference_global_wsc_loss,
        local_loss=_reference_local_wsc_loss,
    )
