"""Weakly-supervised contrastive losses (paper §V).

Both functions return losses to *minimise*; they are the negations of the
paper's objectives (Eq. 10, Eq. 11) so they can be fed directly to an
optimiser.  :func:`combined_wsc_loss` implements Eq. 12's λ-weighted sum.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F

__all__ = ["global_wsc_loss", "local_wsc_loss", "combined_wsc_loss"]


def _normalized(tprs, eps=1e-12):
    norm = (tprs * tprs).sum(axis=-1, keepdims=True) ** 0.5
    return tprs / (norm + eps)


def global_wsc_loss(tprs, contrast_sets, temperature=0.1):
    """Global weakly-supervised contrastive loss (negated Eq. 10).

    Parameters
    ----------
    tprs:
        Tensor of shape ``(batch, hidden_dim)``.
    contrast_sets:
        :class:`~repro.core.sampling.ContrastSets` for the batch.
    temperature:
        Softmax temperature applied to the cosine similarities.

    Returns
    -------
    A scalar Tensor.  Returns a zero tensor when no query has both a
    positive and a negative sample (degenerate batch).
    """
    normalized = _normalized(tprs)
    similarities = (normalized @ normalized.transpose()) * (1.0 / temperature)

    terms = []
    for i in range(len(contrast_sets.positives)):
        positives = contrast_sets.positives[i]
        negatives = contrast_sets.negatives[i]
        if len(positives) == 0 or len(negatives) == 0:
            continue
        positive_sims = similarities[i, positives]
        negative_sims = similarities[i, negatives]
        denominator = F.logsumexp(negative_sims, axis=-1)
        # (1/|S_i|) * sum_j [ sim(i, j) - log sum_k exp(sim(i, k)) ]
        objective = (positive_sims - denominator).mean()
        terms.append(objective)

    if not terms:
        return nn.Tensor(np.zeros(()), requires_grad=False)
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return -(total * (1.0 / len(terms)))


def local_wsc_loss(tprs, edge_representations, edge_sets, temperature=0.1):
    """Local weakly-supervised contrastive loss (negated Eq. 11).

    Parameters
    ----------
    tprs:
        Tensor ``(batch, hidden_dim)`` — the query TPRs.
    edge_representations:
        Tensor ``(batch, max_len, hidden_dim)`` — the STERs.
    edge_sets:
        :class:`~repro.core.sampling.EdgeSampleSets` giving the sampled
        positive/negative edge positions per query.
    """
    terms = []
    batch = tprs.shape[0]
    for i in range(batch):
        pos_rows = edge_sets.positive_rows[i]
        pos_cols = edge_sets.positive_cols[i]
        neg_rows = edge_sets.negative_rows[i]
        neg_cols = edge_sets.negative_cols[i]
        if len(pos_rows) == 0 or len(neg_rows) == 0:
            continue
        query = tprs[i:i + 1, :]                               # (1, d_h)
        positive_edges = edge_representations[pos_rows, pos_cols]  # (P, d_h)
        negative_edges = edge_representations[neg_rows, neg_cols]  # (N, d_h)

        positive_sims = F.cosine_similarity(query, positive_edges) * (1.0 / temperature)
        negative_sims = F.cosine_similarity(query, negative_edges) * (1.0 / temperature)

        objective = (
            F.logsumexp(positive_sims, axis=-1) - F.logsumexp(negative_sims, axis=-1)
        ) * (1.0 / len(pos_rows))
        terms.append(objective)

    if not terms:
        return nn.Tensor(np.zeros(()), requires_grad=False)
    total = terms[0]
    for term in terms[1:]:
        total = total + term
    return -(total * (1.0 / len(terms)))


def combined_wsc_loss(tprs, edge_representations, contrast_sets, edge_sets,
                      lambda_balance=0.8, temperature=0.1):
    """λ-weighted combination of the global and local losses (negated Eq. 12).

    ``lambda_balance = 1`` uses only the global loss ("w/o Local" ablation);
    ``lambda_balance = 0`` uses only the local loss ("w/o Global").
    """
    if lambda_balance >= 1.0:
        return global_wsc_loss(tprs, contrast_sets, temperature=temperature)
    if lambda_balance <= 0.0:
        return local_wsc_loss(tprs, edge_representations, edge_sets, temperature=temperature)
    global_term = global_wsc_loss(tprs, contrast_sets, temperature=temperature)
    local_term = local_wsc_loss(tprs, edge_representations, edge_sets, temperature=temperature)
    return global_term * lambda_balance + local_term * (1.0 - lambda_balance)
