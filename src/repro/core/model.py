"""The WSC model: a temporal path encoder trained with WSC losses.

:class:`WSCModel` bundles the encoder with the shared frozen embedding
resources (node2vec features) so that the curriculum stage can create many
expert models over the same network without recomputing walks.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .config import WSCCLConfig
from .encoder import TemporalPathEncoder
from .spatial import SpatialEmbedding
from .temporal_embedding import TemporalEmbedding

__all__ = ["WSCModel", "SharedResources"]


class SharedResources:
    """Frozen node2vec features shared between WSC models on one network.

    Computing the topology and temporal embeddings is the most expensive
    preprocessing step; experts, ablation variants and the final model can
    all reuse one instance of this class.  Pre-computed arrays can be passed
    in directly (used when loading a persisted model) to skip the node2vec
    runs entirely.
    """

    def __init__(self, network, config=None, topology_features=None,
                 temporal_embeddings=None):
        self.network = network
        self.config = config or WSCCLConfig()
        if topology_features is None:
            topology_features = SpatialEmbedding(network, self.config).topology_features
        if temporal_embeddings is None:
            temporal_embeddings = TemporalEmbedding(self.config).embeddings
        self._topology_features = np.asarray(topology_features, dtype=np.float64)
        self._temporal_embeddings = np.asarray(temporal_embeddings, dtype=np.float64)

    @property
    def topology_features(self):
        return self._topology_features

    @property
    def temporal_embeddings(self):
        return self._temporal_embeddings

    def new_spatial_embedding(self, rng=None):
        """A fresh trainable spatial embedding reusing the frozen topology."""
        return SpatialEmbedding(
            self.network, self.config,
            topology_features=self.topology_features, rng=rng,
        )

    def new_temporal_embedding(self):
        """A temporal embedding module reusing the frozen slot embeddings."""
        return TemporalEmbedding(self.config, embeddings=self.temporal_embeddings)


class WSCModel(nn.Module):
    """Weakly-Supervised Contrastive model (the paper's basic framework).

    Parameters
    ----------
    network:
        Road network the model's paths live on.
    config:
        Hyper-parameters.
    resources:
        Optional :class:`SharedResources`; created on demand otherwise.
    use_temporal:
        Set False for the WSCCL-NT ablation (Table VIII).
    encoder_type:
        ``"lstm"`` (the paper's encoder, default) or ``"transformer"`` (the
        extension the paper suggests in §IV-C).
    seed:
        Seed for the trainable parameter initialisation (each curriculum
        expert gets a different seed).
    """

    def __init__(self, network, config=None, resources=None, use_temporal=True,
                 encoder_type="lstm", seed=None):
        super().__init__()
        self.config = config or WSCCLConfig()
        self.network = network
        self.resources = resources or SharedResources(network, self.config)
        self.encoder_type = encoder_type
        seed = self.config.seed if seed is None else seed
        rng = np.random.default_rng(seed)

        if encoder_type == "lstm":
            encoder_cls = TemporalPathEncoder
        elif encoder_type == "transformer":
            from .transformer import TransformerPathEncoder

            encoder_cls = TransformerPathEncoder
        else:
            raise ValueError(f"unknown encoder_type {encoder_type!r}")

        self.encoder = encoder_cls(
            network=network,
            config=self.config,
            spatial_embedding=self.resources.new_spatial_embedding(rng=rng),
            temporal_embedding=self.resources.new_temporal_embedding(),
            use_temporal=use_temporal,
            rng=rng,
        )

    @property
    def representation_dim(self):
        """Dimensionality of the produced TPRs."""
        return self.encoder.output_dim

    def forward(self, temporal_paths):
        """Encode a batch; returns an :class:`~repro.core.encoder.EncodedBatch`."""
        return self.encoder(temporal_paths)

    def encode(self, temporal_paths, batch_size=64):
        """Numpy TPR matrix for a list of temporal paths (no gradients)."""
        return self.encoder.encode(temporal_paths, batch_size=batch_size)

    def embed(self, temporal_paths, batch_size=64):
        """Alias of :meth:`encode`, matching the serving layer's vocabulary."""
        return self.encode(temporal_paths, batch_size=batch_size)

    def represent(self, temporal_path):
        """Convenience: the TPR of a single temporal path as a 1-D array."""
        return self.encode([temporal_path])[0]
