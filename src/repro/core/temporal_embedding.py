"""Temporal embedding layer (paper §IV-A, Eq. 2).

A temporal graph over ``(day of week, time slot)`` nodes is embedded with
node2vec; the temporal embedding of a departure time is the embedding of its
slot node.  The embedding is kept frozen during WSC training, matching the
paper's pipeline where node2vec is a pre-processing step.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import Node2Vec, Node2VecConfig
from ..temporal.temporal_graph import build_temporal_graph
from ..temporal.timeslots import DAYS_PER_WEEK

__all__ = ["TemporalEmbedding"]


class TemporalEmbedding(nn.Module):
    """Map departure times to temporal feature vectors ``t_all``.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.WSCCLConfig`; ``temporal_dim`` and
        ``slots_per_day`` control the embedding size and graph granularity.
    embeddings:
        Optional pre-computed ``(slots_per_day * 7, temporal_dim)`` array to
        reuse across models (e.g. the curriculum experts).
    """

    def __init__(self, config, embeddings=None):
        super().__init__()
        self.config = config
        self.slots_per_day = config.slots_per_day
        self.num_nodes = self.slots_per_day * DAYS_PER_WEEK
        # Captured at construction (like Parameter dtypes), not at call time:
        # a float32 model keeps producing float32 temporal features even when
        # forward runs outside the dtype context it was built in.
        self._dtype = nn.get_default_dtype()

        if embeddings is None:
            embeddings = self._fit_node2vec(config)
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.shape != (self.num_nodes, config.temporal_dim):
            raise ValueError(
                f"temporal embeddings have shape {embeddings.shape}, "
                f"expected {(self.num_nodes, config.temporal_dim)}"
            )
        # One cast at construction (not per forward): the gather in
        # :meth:`forward` then reads and returns the module dtype directly.
        self._embeddings = embeddings.astype(self._dtype, copy=False)

    def _fit_node2vec(self, config):
        graph = build_temporal_graph(slots_per_day=self.slots_per_day)
        node2vec = Node2Vec(Node2VecConfig(
            dim=config.temporal_dim,
            walks_per_node=config.node2vec_walks,
            walk_length=config.node2vec_walk_length,
            window=config.node2vec_window,
            epochs=config.node2vec_epochs,
            seed=config.seed,
            impl=config.node2vec_impl,
        ))
        return node2vec.fit_temporal_graph(graph)

    @property
    def output_dim(self):
        """``d_tem``."""
        return self.config.temporal_dim

    @property
    def embeddings(self):
        """The frozen slot-node embedding matrix."""
        return self._embeddings

    def slot_index(self, departure_time):
        """Temporal-graph node index of a departure time at this granularity."""
        seconds_per_slot = 86400.0 / self.slots_per_day
        slot = int(departure_time.seconds // seconds_per_slot)
        slot = min(slot, self.slots_per_day - 1)
        return departure_time.day_of_week * self.slots_per_day + slot

    def slot_indices(self, departure_times):
        """Vectorised :meth:`slot_index` for a batch of departure times."""
        count = len(departure_times)
        seconds = np.fromiter((t.seconds for t in departure_times),
                              dtype=np.float64, count=count)
        days = np.fromiter((t.day_of_week for t in departure_times),
                           dtype=np.int64, count=count)
        seconds_per_slot = 86400.0 / self.slots_per_day
        slots = np.minimum((seconds // seconds_per_slot).astype(np.int64),
                           self.slots_per_day - 1)
        return days * self.slots_per_day + slots

    def forward(self, departure_times):
        """Temporal embedding ``t_all`` for a batch of departure times.

        Returns a constant (non-trainable) Tensor of shape
        ``(batch, temporal_dim)`` in the module's construction-time dtype.
        """
        return nn.Tensor(self._embeddings[self.slot_indices(departure_times)])
