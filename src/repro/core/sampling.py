"""Positive / negative sample generation from weak labels (paper §V-A).

Given a minibatch of temporal paths with weak labels:

* positives of a query are the other temporal paths in the batch with the
  *same path* and the *same weak label* (their exact departure times differ),
* negatives are everything else: same path / different label, different path /
  same label, and different path / different label.

Real minibatches rarely contain two trips over the exact same path, so —
like the original artifact — we *augment* each batch: every temporal path is
paired with a second view that keeps the path and weak label but re-samples
the departure time inside the same label window.  This guarantees at least
one positive per query while preserving the paper's definition.

For the local loss (Eq. 11), positive/negative *edge* samples are drawn at
random from the positive/negative temporal paths of each query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.temporal_paths import TemporalPath

__all__ = [
    "augment_with_positive_views",
    "build_contrast_sets",
    "sample_edge_sets",
    "ContrastSets",
    "EdgeSampleSets",
]


def _jitter_departure(departure_time, weak_labeler, rng, max_shift_minutes=45, attempts=8):
    """Shift a departure time while keeping its weak label unchanged."""
    label = weak_labeler.label(departure_time)
    for _ in range(attempts):
        shift = float(rng.uniform(-max_shift_minutes, max_shift_minutes)) * 60.0
        candidate = departure_time.shift(shift)
        if weak_labeler.label(candidate) == label:
            return candidate
    return departure_time


def augment_with_positive_views(batch, weak_labeler, rng, max_shift_minutes=45):
    """Return the batch with one positive view appended for each sample.

    ``batch`` is a list of ``(TemporalPath, weak_label)``; the result has
    length ``2 * len(batch)`` and positive views carry the same weak label.
    """
    augmented = list(batch)
    for temporal_path, label in batch:
        view_time = _jitter_departure(
            temporal_path.departure_time, weak_labeler, rng,
            max_shift_minutes=max_shift_minutes,
        )
        view = TemporalPath(path=temporal_path.path, departure_time=view_time)
        augmented.append((view, label))
    return augmented


@dataclass
class ContrastSets:
    """Positive and negative index sets per query within a batch.

    ``positives[i]`` / ``negatives[i]`` are numpy index arrays into the batch
    (the paper's ``S_tpi`` and ``N_tpi``).
    """

    positives: list
    negatives: list

    def queries_with_positives(self):
        """Indices of queries whose positive set is non-empty."""
        return [i for i, pos in enumerate(self.positives) if len(pos) > 0]


def build_contrast_sets(batch):
    """Compute ``S_tpi`` and ``N_tpi`` for every sample in the batch.

    ``batch`` is a list of ``(TemporalPath, weak_label)``.

    Samples are grouped by their ``(path, weak_label)`` key in one pass, so
    construction is O(n) expected in the batch size instead of the O(n²)
    pairwise scan (kept as :func:`_reference_build_contrast_sets` for the
    regression test).  Positives of query ``i`` are its group minus itself;
    negatives are the group's complement, shared by every group member.
    """
    size = len(batch)
    keys = [(tuple(tp.path), label) for tp, label in batch]
    groups = {}
    for index, key in enumerate(keys):
        groups.setdefault(key, []).append(index)

    all_indices = np.arange(size, dtype=np.int64)
    group_members = {}
    group_complement = {}
    for key, members in groups.items():
        members = np.asarray(members, dtype=np.int64)
        group_members[key] = members
        outside = np.ones(size, dtype=bool)
        outside[members] = False
        group_complement[key] = all_indices[outside]

    positives = []
    negatives = []
    for index, key in enumerate(keys):
        members = group_members[key]
        positives.append(members[members != index])
        negatives.append(group_complement[key])
    return ContrastSets(positives=positives, negatives=negatives)


def _reference_build_contrast_sets(batch):
    """The original O(n²) pairwise scan (oracle for the regression test)."""
    paths = [tuple(tp.path) for tp, _ in batch]
    labels = [label for _, label in batch]
    size = len(batch)
    positives = []
    negatives = []
    for i in range(size):
        positive = [j for j in range(size)
                    if j != i and paths[j] == paths[i] and labels[j] == labels[i]]
        negative = [j for j in range(size) if j != i and j not in positive]
        positives.append(np.asarray(positive, dtype=np.int64))
        negatives.append(np.asarray(negative, dtype=np.int64))
    return ContrastSets(positives=positives, negatives=negatives)


@dataclass
class EdgeSampleSets:
    """Sampled positive/negative edge positions for the local loss.

    For query ``i``, ``positive_rows[i]`` / ``positive_cols[i]`` index into
    the (batch, time) grid of spatio-temporal edge representations; likewise
    for negatives.  Empty arrays mean the query has no usable samples.
    """

    positive_rows: list
    positive_cols: list
    negative_rows: list
    negative_cols: list


def sample_edge_sets(batch, contrast_sets, mask, rng, edges_per_path=2):
    """Draw positive/negative edge samples for the local WSC loss.

    Positive edges come from the query's positive temporal paths (including
    the query itself, whose edges trivially share its path and weak label);
    negative edges come from its negative temporal paths.

    All ``(query, path)`` pairs are drawn in one batched pass: a single
    uniform matrix is ranked per pair (invalid columns pushed to the end), so
    each pair's first ``min(edges_per_path, length)`` ranks are a uniform
    sample without replacement — no per-pair ``rng.choice`` calls, which
    dominated the training step.  The per-query loop sampler is kept as
    :func:`_reference_sample_edge_sets` (same distribution, different random
    stream).
    """
    size = len(batch)
    lengths = mask.sum(axis=1).astype(np.int64)
    max_len = int(mask.shape[1])

    def draw_group(paths_per_query):
        group_sizes = np.fromiter((len(p) for p in paths_per_query),
                                  dtype=np.int64, count=size)
        total_pairs = int(group_sizes.sum())
        if total_pairs == 0:
            empty = np.asarray([], dtype=np.int64)
            return [empty] * size, [empty] * size
        pair_rows = np.concatenate(
            [np.asarray(p, dtype=np.int64) for p in paths_per_query if len(p)])
        query_of_pair = np.repeat(np.arange(size, dtype=np.int64), group_sizes)

        pair_lengths = lengths[pair_rows]
        counts = np.minimum(edges_per_path, pair_lengths)
        counts = np.maximum(counts, 0)

        # Rank a uniform matrix per pair; +inf on out-of-range columns keeps
        # them past every valid rank.  The first ``counts`` ranked columns
        # are a uniform without-replacement sample of the valid positions.
        # Only the smallest ``edges_per_path`` ranks are consumed, so an
        # O(T) argpartition plus a tiny prefix sort replaces the full
        # O(T log T) argsort when paths are longer than the sample size.
        scores = rng.random((total_pairs, max_len))
        scores[np.arange(max_len)[None, :] >= pair_lengths[:, None]] = np.inf
        candidates = min(edges_per_path, max_len)
        if candidates < max_len:
            prefix = np.argpartition(scores, candidates - 1, axis=1)[:, :candidates]
            prefix_scores = np.take_along_axis(scores, prefix, axis=1)
            order = np.argsort(prefix_scores, axis=1)
            ranked_cols = np.take_along_axis(prefix, order, axis=1)
        else:
            ranked_cols = np.argsort(scores, axis=1)

        take = np.arange(ranked_cols.shape[1])[None, :] < counts[:, None]
        rows = np.repeat(pair_rows, counts)
        cols = ranked_cols[take]
        chosen_query = np.repeat(query_of_pair, counts)

        # Pairs are ordered by query, so one split recovers the per-query lists.
        per_query = np.bincount(chosen_query, minlength=size)
        splits = np.cumsum(per_query)[:-1]
        return np.split(rows, splits), np.split(cols, splits)

    positive_paths = [
        np.concatenate(([i], contrast_sets.positives[i])).astype(np.int64)
        for i in range(size)
    ]
    positive_rows, positive_cols = draw_group(positive_paths)
    negative_rows, negative_cols = draw_group(contrast_sets.negatives)

    return EdgeSampleSets(
        positive_rows=positive_rows,
        positive_cols=positive_cols,
        negative_rows=negative_rows,
        negative_cols=negative_cols,
    )


def _reference_sample_edge_sets(batch, contrast_sets, mask, rng, edges_per_path=2):
    """The original per-query ``rng.choice`` sampler (loop baseline)."""
    size = len(batch)
    lengths = mask.sum(axis=1).astype(np.int64)

    positive_rows, positive_cols = [], []
    negative_rows, negative_cols = [], []
    for i in range(size):
        pos_paths = np.concatenate(([i], contrast_sets.positives[i])).astype(np.int64)
        neg_paths = contrast_sets.negatives[i]

        rows_p, cols_p = _draw_edges(pos_paths, lengths, rng, edges_per_path)
        rows_n, cols_n = _draw_edges(neg_paths, lengths, rng, edges_per_path)
        positive_rows.append(rows_p)
        positive_cols.append(cols_p)
        negative_rows.append(rows_n)
        negative_cols.append(cols_n)

    return EdgeSampleSets(
        positive_rows=positive_rows,
        positive_cols=positive_cols,
        negative_rows=negative_rows,
        negative_cols=negative_cols,
    )


def _draw_edges(path_indices, lengths, rng, edges_per_path):
    rows = []
    cols = []
    for row in path_indices:
        valid = int(lengths[row])
        if valid <= 0:
            continue
        count = min(edges_per_path, valid)
        chosen = rng.choice(valid, size=count, replace=False)
        rows.extend([int(row)] * count)
        cols.extend(int(c) for c in chosen)
    return np.asarray(rows, dtype=np.int64), np.asarray(cols, dtype=np.int64)
