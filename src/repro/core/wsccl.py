"""WSCCL: the advanced framework combining WSC with curriculum learning.

:class:`WSCCL` is the library's main entry point.  ``fit`` runs the full
pipeline of the paper: expert training on length-sorted meta-sets, difficulty
scoring, curriculum construction, staged training easy → hard, and a final
stage over the whole corpus.  ``fit_without_curriculum`` gives the "w/o CL"
ablation, and ``fit_with_heuristic_curriculum`` the Table V baseline.
"""

from __future__ import annotations

import numpy as np

from .config import WSCCLConfig
from .curriculum import (
    build_curriculum_stages,
    difficulty_scores,
    heuristic_curriculum_stages,
    split_into_meta_sets,
    train_experts,
)
from .model import SharedResources, WSCModel
from .trainer import WSCTrainer

__all__ = ["WSCCL"]


class WSCCL:
    """Weakly-Supervised Contrastive Curriculum Learning.

    Parameters
    ----------
    network:
        Road network the temporal paths live on.
    config:
        :class:`~repro.core.config.WSCCLConfig`; defaults are CPU-scaled.
    resources:
        Optional shared frozen node2vec features (reused across models).
    use_temporal:
        Set False for the WSCCL-NT ablation.

    Attributes
    ----------
    model:
        The trained :class:`~repro.core.model.WSCModel` after ``fit``.
    plan:
        The :class:`~repro.core.curriculum.CurriculumPlan` used (if any).
    """

    def __init__(self, network, config=None, resources=None, use_temporal=True,
                 encoder_type="lstm"):
        self.config = config or WSCCLConfig()
        self.network = network
        self.resources = resources or SharedResources(network, self.config)
        self.use_temporal = use_temporal
        self.encoder_type = encoder_type
        self.model = WSCModel(
            network, config=self.config, resources=self.resources,
            use_temporal=use_temporal, encoder_type=encoder_type,
        )
        self.trainer = WSCTrainer(self.model, config=self.config)
        self.plan = None
        self.experts = []

    # ------------------------------------------------------------------
    # Training entry points
    # ------------------------------------------------------------------
    def fit(self, dataset, batches_per_epoch=None, expert_batches=None):
        """Full WSCCL training (curriculum learned from expert agreement)."""
        samples = list(dataset)
        meta_sets, assignments = split_into_meta_sets(samples, self.config.num_meta_sets)
        self.experts = train_experts(
            self.network, meta_sets, self.config,
            resources=self.resources, weak_labeler=dataset.weak_labeler,
            batches_per_epoch=expert_batches,
        )
        scores = difficulty_scores(samples, assignments, self.experts)
        self.plan = build_curriculum_stages(
            samples, scores, self.config.num_stages,
            rng=np.random.default_rng(self.config.seed),
        )
        self._train_on_plan(self.plan, dataset.weak_labeler, batches_per_epoch)
        return self

    def fit_with_heuristic_curriculum(self, dataset, batches_per_epoch=None):
        """Table V baseline: curriculum ordered by path length only."""
        samples = list(dataset)
        self.plan = heuristic_curriculum_stages(
            samples, self.config.num_stages,
            rng=np.random.default_rng(self.config.seed),
        )
        self._train_on_plan(self.plan, dataset.weak_labeler, batches_per_epoch)
        return self

    def fit_without_curriculum(self, dataset, batches_per_epoch=None):
        """"w/o CL" ablation: plain WSC training on shuffled data."""
        self.trainer.fit(dataset, epochs=self.config.epochs,
                         batches_per_epoch=batches_per_epoch)
        return self

    def _train_on_plan(self, plan, weak_labeler, batches_per_epoch):
        for stage in plan.stages:
            if len(stage) < 2:
                continue
            self.trainer.fit_on_samples(
                stage, weak_labeler, epochs=1, batches_per_epoch=batches_per_epoch
            )
        if len(plan.final_stage) >= 2:
            self.trainer.fit_on_samples(
                plan.final_stage, weak_labeler,
                epochs=self.config.final_stage_epochs,
                batches_per_epoch=batches_per_epoch,
            )

    # ------------------------------------------------------------------
    # Representation interface (shared with the baselines)
    # ------------------------------------------------------------------
    @property
    def representation_dim(self):
        return self.model.representation_dim

    def encode(self, temporal_paths, batch_size=64):
        """TPR matrix for a list of temporal paths."""
        return self.model.encode(temporal_paths, batch_size=batch_size)

    def represent(self, temporal_path):
        """TPR of a single temporal path."""
        return self.model.represent(temporal_path)

    # ------------------------------------------------------------------
    def encoder_state_dict(self):
        """Trainable encoder parameters, for use as pre-training (Fig. 7)."""
        return self.model.encoder.state_dict()

    @property
    def history(self):
        """Training history of the main model."""
        return self.trainer.history
