"""Transformer-based temporal path encoder (paper §IV-C extension).

The paper notes that the LSTM in Eq. 7 could be replaced by "more advanced
sequential models, e.g., Transformer".  This module provides that extension: a
small pre-norm Transformer encoder over the same spatio-temporal edge features,
drop-in compatible with :class:`~repro.core.encoder.TemporalPathEncoder` (same
constructor signature and :class:`EncodedBatch` output), so it can be used by
``WSCModel``/``WSCCL`` via the ``encoder_factory`` hook or standalone.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .encoder import EncodedBatch, pad_paths
from .spatial import SpatialEmbedding
from .temporal_embedding import TemporalEmbedding

__all__ = ["MultiHeadSelfAttention", "TransformerBlock", "TransformerPathEncoder"]


def _sinusoidal_positions(length, dim):
    """Standard sinusoidal positional encodings, shape (length, dim)."""
    positions = np.arange(length)[:, None]
    dimensions = np.arange(dim)[None, :]
    angles = positions / np.power(10000.0, (2 * (dimensions // 2)) / dim)
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class MultiHeadSelfAttention(nn.Module):
    """Masked multi-head self-attention over (batch, time, dim) tensors."""

    def __init__(self, dim, num_heads=2, rng=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = nn.Linear(dim, dim, rng=rng)
        self.key = nn.Linear(dim, dim, rng=rng)
        self.value = nn.Linear(dim, dim, rng=rng)
        self.output = nn.Linear(dim, dim, rng=rng)

    def forward(self, x, mask=None):
        """``x`` is (batch, time, dim); ``mask`` is (batch, time) with 1 = valid."""
        batch, time_steps, _ = x.shape
        queries = self.query(x)
        keys = self.key(x)
        values = self.value(x)

        head_outputs = []
        scale = 1.0 / np.sqrt(self.head_dim)
        for head in range(self.num_heads):
            start = head * self.head_dim
            stop = start + self.head_dim
            q = queries[:, :, start:stop]
            k = keys[:, :, start:stop]
            v = values[:, :, start:stop]
            scores = (q @ k.transpose(0, 2, 1)) * scale        # (B, T, T)
            if mask is not None:
                bias = (mask[:, None, :] - 1.0) * 1e9          # 0 valid, -1e9 pad
                scores = scores + nn.Tensor(bias)
            attention = F.softmax(scores, axis=-1)
            head_outputs.append(attention @ v)
        combined = nn.Tensor.concatenate(head_outputs, axis=-1)
        return self.output(combined)


class TransformerBlock(nn.Module):
    """Pre-norm Transformer block: attention + feed-forward with residuals."""

    def __init__(self, dim, num_heads=2, hidden_multiplier=2, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention_norm = nn.LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, num_heads=num_heads, rng=rng)
        self.feedforward_norm = nn.LayerNorm(dim)
        self.feedforward_in = nn.Linear(dim, dim * hidden_multiplier, rng=rng)
        self.feedforward_out = nn.Linear(dim * hidden_multiplier, dim, rng=rng)

    def forward(self, x, mask=None):
        x = x + self.attention(self.attention_norm(x), mask=mask)
        hidden = self.feedforward_in(self.feedforward_norm(x)).relu()
        return x + self.feedforward_out(hidden)


class TransformerPathEncoder(nn.Module):
    """Transformer alternative to the LSTM temporal path encoder.

    Produces the same :class:`EncodedBatch` interface (TPRs + per-edge
    spatio-temporal representations + mask), so the WSC losses, curriculum
    machinery and downstream evaluators work unchanged.
    """

    def __init__(self, network, config, spatial_embedding=None,
                 temporal_embedding=None, use_temporal=True,
                 num_layers=2, num_heads=2, max_path_length=256, rng=None):
        super().__init__()
        self.config = config
        self.network = network
        self.use_temporal = use_temporal
        rng = rng or np.random.default_rng(config.seed)

        self.spatial = spatial_embedding or SpatialEmbedding(network, config, rng=rng)
        self.temporal = temporal_embedding or TemporalEmbedding(config)
        self.input_projection = nn.Linear(config.encoder_input_dim, config.hidden_dim, rng=rng)
        self._block_names = []
        for layer in range(num_layers):
            name = f"block{layer}"
            setattr(self, name, TransformerBlock(config.hidden_dim, num_heads=num_heads, rng=rng))
            self._block_names.append(name)
        self._positional = _sinusoidal_positions(max_path_length, config.hidden_dim)

    @property
    def output_dim(self):
        """Dimensionality of the produced TPRs."""
        return self.config.hidden_dim

    def forward(self, temporal_paths):
        """Encode a batch of temporal paths into an :class:`EncodedBatch`."""
        edge_ids, mask = pad_paths(temporal_paths)
        batch, max_len = edge_ids.shape
        if max_len > self._positional.shape[0]:
            raise ValueError(
                f"path of length {max_len} exceeds max_path_length "
                f"{self._positional.shape[0]}")

        spatial = self.spatial(edge_ids)
        temporal = self.temporal([tp.departure_time for tp in temporal_paths])
        if not self.use_temporal:
            temporal = nn.Tensor(np.zeros_like(temporal.data))
        temporal_steps = nn.Tensor(np.repeat(temporal.data[:, None, :], max_len, axis=1))
        inputs = nn.Tensor.concatenate([temporal_steps, spatial], axis=-1)

        hidden = self.input_projection(inputs)
        hidden = hidden + nn.Tensor(self._positional[:max_len][None, :, :])
        for name in self._block_names:
            hidden = getattr(self, name)(hidden, mask=mask)

        mask_tensor = nn.Tensor(mask[:, :, None])
        counts = nn.Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        tprs = (hidden * mask_tensor).sum(axis=1) / counts
        return EncodedBatch(tprs=tprs, edge_representations=hidden,
                            mask=mask, edge_ids=edge_ids)

    def encode(self, temporal_paths, batch_size=64):
        """Numpy TPR matrix without gradient tracking (same as the LSTM encoder)."""
        chunks = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                chunks.append(self.forward(chunk).tprs.data.copy())
        if not chunks:
            return np.zeros((0, self.output_dim))
        return np.concatenate(chunks, axis=0)
