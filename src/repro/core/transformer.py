"""Transformer-based temporal path encoder (paper §IV-C extension).

The paper notes that the LSTM in Eq. 7 could be replaced by "more advanced
sequential models, e.g., Transformer".  This module provides that extension: a
small pre-norm Transformer encoder over the same spatio-temporal edge features,
drop-in compatible with :class:`~repro.core.encoder.TemporalPathEncoder` (same
constructor signature and :class:`EncodedBatch` output), so it can be used by
``WSCModel``/``WSCCL`` via the ``encoder_factory`` hook or standalone.

Attention runs as a single fused 4-D computation — one reshape to
``(batch, heads, time, head_dim)``, one batched matmul, one fused masked
softmax, one batched matmul back — instead of a Python loop over heads.  The
original per-head loop is kept as
:meth:`MultiHeadSelfAttention._reference_forward` and is the oracle for the
equivalence test suite; set ``attention.fused = False`` (or
:meth:`TransformerPathEncoder.set_fused_attention`) to run it end to end,
which the training-throughput benchmark does for its loop-reference rows.
"""

from __future__ import annotations

import contextlib

import numpy as np

from .. import nn
from ..nn import functional as F
from .encoder import EncodedBatch, pad_paths
from .spatial import SpatialEmbedding
from .temporal_embedding import TemporalEmbedding

__all__ = [
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "TransformerPathEncoder",
    "attention_mask_bias",
]

#: Additive bias applied to masked attention scores; the shared
#: :data:`repro.nn.functional.EXCLUDED_BIAS` underflows the softmax weight
#: to exactly zero in both float32 and float64.
MASK_BIAS_VALUE = F.EXCLUDED_BIAS


def _sinusoidal_positions(length, dim):
    """Standard sinusoidal positional encodings, shape (length, dim)."""
    positions = np.arange(length)[:, None]
    dimensions = np.arange(dim)[None, :]
    angles = positions / np.power(10000.0, (2 * (dimensions // 2)) / dim)
    encoding = np.zeros((length, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


def attention_mask_bias(mask, dtype=None):
    """Precompute the additive attention bias for a (batch, time) mask.

    Returns a constant ``(batch, 1, 1, time)`` numpy array with 0 on valid
    key positions and :data:`MASK_BIAS_VALUE` on padding, broadcastable
    against ``(batch, heads, time, time)`` score tensors.  Computing it once
    per encoder forward (instead of once per head per layer) is part of the
    training fast path.
    """
    mask = np.asarray(mask)
    bias = np.where(mask > 0, 0.0, MASK_BIAS_VALUE)
    if dtype is not None:
        bias = bias.astype(dtype)
    return bias[:, None, None, :]


class MultiHeadSelfAttention(nn.Module):
    """Masked multi-head self-attention over (batch, time, dim) tensors.

    The default forward is the fused 4-D path; ``fused = False`` switches to
    the original per-head Python loop (kept for equivalence testing and the
    loop-reference benchmark rows).
    """

    def __init__(self, dim, num_heads=2, rng=None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.fused = True
        self.query = nn.Linear(dim, dim, rng=rng)
        self.key = nn.Linear(dim, dim, rng=rng)
        self.value = nn.Linear(dim, dim, rng=rng)
        self.output = nn.Linear(dim, dim, rng=rng)

    def forward(self, x, mask=None, mask_bias=None):
        """``x`` is (batch, time, dim); ``mask`` is (batch, time) with 1 = valid.

        ``mask_bias`` optionally supplies the precomputed
        :func:`attention_mask_bias` array so stacked layers share one bias
        instead of each rebuilding it from ``mask``.
        """
        if not self.fused:
            if mask is None and mask_bias is not None:
                # Recover the (batch, time) key mask so the loop path honours
                # a precomputed bias instead of silently running unmasked.
                mask = (np.asarray(mask_bias)[:, 0, 0, :] == 0.0).astype(x.data.dtype)
            return self._reference_forward(x, mask=mask)
        batch, time_steps, _ = x.shape
        heads, head_dim = self.num_heads, self.head_dim
        if mask_bias is None and mask is not None:
            mask_bias = attention_mask_bias(mask, dtype=x.data.dtype)

        # (B, T, D) -> (B, H, T, d): project once, split heads by reshape.
        queries = self.query(x).reshape(batch, time_steps, heads, head_dim).transpose(0, 2, 1, 3)
        keys = self.key(x).reshape(batch, time_steps, heads, head_dim).transpose(0, 2, 3, 1)
        values = self.value(x).reshape(batch, time_steps, heads, head_dim).transpose(0, 2, 1, 3)

        scale = 1.0 / np.sqrt(head_dim)
        scores = (queries @ keys) * scale                      # (B, H, T, T)
        attention = F.masked_softmax(scores, mask_bias=mask_bias, axis=-1)
        context = attention @ values                           # (B, H, T, d)
        combined = context.transpose(0, 2, 1, 3).reshape(batch, time_steps, self.dim)
        return self.output(combined)

    def _reference_forward(self, x, mask=None):
        """The original per-head loop; oracle for the fused path."""
        batch, time_steps, _ = x.shape
        queries = self.query(x)
        keys = self.key(x)
        values = self.value(x)

        head_outputs = []
        scale = 1.0 / np.sqrt(self.head_dim)
        for head in range(self.num_heads):
            start = head * self.head_dim
            stop = start + self.head_dim
            q = queries[:, :, start:stop]
            k = keys[:, :, start:stop]
            v = values[:, :, start:stop]
            scores = (q @ k.transpose(0, 2, 1)) * scale        # (B, T, T)
            if mask is not None:
                bias = ((mask[:, None, :] - 1.0) * 1e9)        # 0 valid, -1e9 pad
                scores = scores + nn.Tensor(bias.astype(x.data.dtype))
            attention = F.softmax(scores, axis=-1)
            head_outputs.append(attention @ v)
        combined = nn.Tensor.concatenate(head_outputs, axis=-1)
        return self.output(combined)


class TransformerBlock(nn.Module):
    """Pre-norm Transformer block: attention + feed-forward with residuals."""

    def __init__(self, dim, num_heads=2, hidden_multiplier=2, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.attention_norm = nn.LayerNorm(dim)
        self.attention = MultiHeadSelfAttention(dim, num_heads=num_heads, rng=rng)
        self.feedforward_norm = nn.LayerNorm(dim)
        self.feedforward_in = nn.Linear(dim, dim * hidden_multiplier, rng=rng)
        self.feedforward_out = nn.Linear(dim * hidden_multiplier, dim, rng=rng)

    def forward(self, x, mask=None, mask_bias=None):
        x = x + self.attention(self.attention_norm(x), mask=mask, mask_bias=mask_bias)
        hidden = self.feedforward_in(self.feedforward_norm(x)).relu()
        return x + self.feedforward_out(hidden)


class TransformerPathEncoder(nn.Module):
    """Transformer alternative to the LSTM temporal path encoder.

    Produces the same :class:`EncodedBatch` interface (TPRs + per-edge
    spatio-temporal representations + mask), so the WSC losses, curriculum
    machinery and downstream evaluators work unchanged.
    """

    def __init__(self, network, config, spatial_embedding=None,
                 temporal_embedding=None, use_temporal=True,
                 num_layers=2, num_heads=2, max_path_length=256, rng=None):
        super().__init__()
        self.config = config
        self.network = network
        self.use_temporal = use_temporal
        rng = rng or np.random.default_rng(config.seed)

        self.spatial = spatial_embedding or SpatialEmbedding(network, config, rng=rng)
        self.temporal = temporal_embedding or TemporalEmbedding(config)
        self.input_projection = nn.Linear(config.encoder_input_dim, config.hidden_dim, rng=rng)
        self._block_names = []
        for layer in range(num_layers):
            name = f"block{layer}"
            setattr(self, name, TransformerBlock(config.hidden_dim, num_heads=num_heads, rng=rng))
            self._block_names.append(name)
        self._positional = _sinusoidal_positions(max_path_length, config.hidden_dim)
        # (max_len, dtype) -> constant Tensor; avoids re-slicing/re-wrapping
        # the positional table on every forward.
        self._positional_cache = {}

    @property
    def output_dim(self):
        """Dimensionality of the produced TPRs."""
        return self.config.hidden_dim

    def set_fused_attention(self, fused):
        """Toggle the fused attention path on every block (chainable)."""
        for name in self._block_names:
            getattr(self, name).attention.fused = bool(fused)
        return self

    @contextlib.contextmanager
    def attention_impl(self, fused):
        """Scope the fused/loop attention choice; restores prior flags on exit.

        Used by :class:`~repro.core.trainer.WSCTrainer` so an ``impl`` knob
        on one trainer cannot permanently change a model shared with other
        trainers or with the serving layer.
        """
        blocks = [getattr(self, name) for name in self._block_names]
        previous = [block.attention.fused for block in blocks]
        self.set_fused_attention(fused)
        try:
            yield self
        finally:
            for block, flag in zip(blocks, previous):
                block.attention.fused = flag

    def _positional_tensor(self, max_len, dtype):
        key = (max_len, np.dtype(dtype).name)
        cached = self._positional_cache.get(key)
        if cached is None:
            cached = nn.Tensor(
                self._positional[:max_len][None, :, :].astype(dtype))
            self._positional_cache[key] = cached
        return cached

    def forward(self, temporal_paths):
        """Encode a batch of temporal paths into an :class:`EncodedBatch`."""
        edge_ids, mask = pad_paths(temporal_paths)
        batch, max_len = edge_ids.shape
        if max_len > self._positional.shape[0]:
            raise ValueError(
                f"path of length {max_len} exceeds max_path_length "
                f"{self._positional.shape[0]}")

        spatial = self.spatial(edge_ids)
        temporal = self.temporal([tp.departure_time for tp in temporal_paths])
        if not self.use_temporal:
            temporal = nn.Tensor(np.zeros_like(temporal.data))
        temporal_steps = nn.Tensor(
            np.repeat(temporal.data[:, None, :], max_len, axis=1)
            .astype(spatial.data.dtype, copy=False))
        inputs = nn.Tensor.concatenate([temporal_steps, spatial], axis=-1)

        hidden = self.input_projection(inputs)
        hidden = hidden + self._positional_tensor(max_len, hidden.data.dtype)
        # One bias for all layers instead of one Tensor wrap per head per layer.
        mask_bias = attention_mask_bias(mask, dtype=hidden.data.dtype)
        for name in self._block_names:
            hidden = getattr(self, name)(hidden, mask=mask, mask_bias=mask_bias)

        dtype = hidden.data.dtype
        mask_tensor = nn.Tensor(mask[:, :, None].astype(dtype))
        counts = nn.Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0).astype(dtype))
        tprs = (hidden * mask_tensor).sum(axis=1) / counts
        return EncodedBatch(tprs=tprs, edge_representations=hidden,
                            mask=mask, edge_ids=edge_ids)

    def encode(self, temporal_paths, batch_size=64):
        """Numpy TPR matrix without gradient tracking (same as the LSTM encoder)."""
        chunks = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                chunks.append(self.forward(chunk).tprs.data.copy())
        if not chunks:
            return np.zeros((0, self.output_dim))
        return np.concatenate(chunks, axis=0)
