"""Datasets: synthetic city corpora, temporal paths, task labels, splits."""

from .splits import grouped_train_test_split, train_test_split
from .synthetic import (
    DATASET_BUILDERS,
    CityDataset,
    DatasetScale,
    aalborg,
    build_city_dataset,
    chengdu,
    harbin,
    mapmatch_trips,
)
from .tasks import (
    RankingExample,
    RecommendationExample,
    TaskDatasets,
    TravelTimeExample,
    build_task_datasets,
    ranking_arrays,
    recommendation_arrays,
    travel_time_arrays,
)
from .temporal_paths import TemporalPath, TemporalPathDataset

__all__ = [
    "TemporalPath",
    "TemporalPathDataset",
    "TravelTimeExample",
    "RankingExample",
    "RecommendationExample",
    "TaskDatasets",
    "build_task_datasets",
    "travel_time_arrays",
    "ranking_arrays",
    "recommendation_arrays",
    "train_test_split",
    "grouped_train_test_split",
    "DatasetScale",
    "CityDataset",
    "build_city_dataset",
    "mapmatch_trips",
    "aalborg",
    "harbin",
    "chengdu",
    "DATASET_BUILDERS",
]
