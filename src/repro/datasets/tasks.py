"""Labelled datasets for the three downstream tasks (paper §VII-A2).

* Travel-time estimation: each temporal path carries its simulated travel
  time in seconds.
* Path ranking: each trajectory path plus its alternatives carry ranking
  scores in [0, 1] — the driven path scores 1.0, alternatives score their
  length-weighted overlap with it.
* Path recommendation: the driven path is labelled 1, alternatives 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..roadnet.search import path_similarity
from .temporal_paths import TemporalPath

__all__ = [
    "TravelTimeExample",
    "RankingExample",
    "RecommendationExample",
    "TaskDatasets",
    "build_task_datasets",
]


@dataclass(frozen=True)
class TravelTimeExample:
    """A temporal path with its ground-truth travel time in seconds."""

    temporal_path: TemporalPath
    travel_time: float


@dataclass(frozen=True)
class RankingExample:
    """A temporal path (candidate route) with its ranking score in [0, 1]."""

    temporal_path: TemporalPath
    score: float
    group: int  # identifies which trip the candidate belongs to


@dataclass(frozen=True)
class RecommendationExample:
    """A temporal path labelled 1 if the driver actually chose it, else 0."""

    temporal_path: TemporalPath
    chosen: int
    group: int


@dataclass
class TaskDatasets:
    """Bundle of the three labelled task datasets built from one trip corpus."""

    travel_time: list = field(default_factory=list)
    ranking: list = field(default_factory=list)
    recommendation: list = field(default_factory=list)


def build_task_datasets(network, trips, max_labeled=None):
    """Derive the three labelled datasets from simulated trips.

    Parameters
    ----------
    network:
        The road network, used to compute ranking similarities.
    trips:
        Iterable of :class:`~repro.trajectory.simulator.Trip`.
    max_labeled:
        Optional cap on how many trips contribute labels (the paper uses a
        15 000-path labelled subset out of a larger unlabeled corpus).
    """
    datasets = TaskDatasets()
    for group, trip in enumerate(trips):
        if max_labeled is not None and group >= max_labeled:
            break
        driven = TemporalPath(path=trip.path, departure_time=trip.departure_time)

        datasets.travel_time.append(
            TravelTimeExample(temporal_path=driven, travel_time=trip.travel_time)
        )

        datasets.ranking.append(RankingExample(temporal_path=driven, score=1.0, group=group))
        datasets.recommendation.append(
            RecommendationExample(temporal_path=driven, chosen=1, group=group)
        )
        for alternative in trip.alternatives:
            if not alternative:
                continue
            candidate = TemporalPath(path=alternative, departure_time=trip.departure_time)
            score = path_similarity(network, trip.path, alternative)
            datasets.ranking.append(
                RankingExample(temporal_path=candidate, score=float(score), group=group)
            )
            datasets.recommendation.append(
                RecommendationExample(temporal_path=candidate, chosen=0, group=group)
            )
    return datasets


def travel_time_arrays(examples):
    """Split travel-time examples into (temporal_paths, target array)."""
    paths = [e.temporal_path for e in examples]
    targets = np.array([e.travel_time for e in examples], dtype=np.float64)
    return paths, targets


def ranking_arrays(examples):
    """Split ranking examples into (temporal_paths, scores, groups)."""
    paths = [e.temporal_path for e in examples]
    scores = np.array([e.score for e in examples], dtype=np.float64)
    groups = np.array([e.group for e in examples], dtype=np.int64)
    return paths, scores, groups


def recommendation_arrays(examples):
    """Split recommendation examples into (temporal_paths, labels, groups)."""
    paths = [e.temporal_path for e in examples]
    labels = np.array([e.chosen for e in examples], dtype=np.int64)
    groups = np.array([e.group for e in examples], dtype=np.int64)
    return paths, labels, groups
