"""Train/test splitting utilities.

The paper trains WSCCL on all unlabeled paths, then fits GBR/GBC on 80% of
the labelled paths and evaluates on the remaining 20%.  Grouped splitting is
provided for the ranking/recommendation tasks so candidates of one trip never
straddle the train/test boundary.
"""

from __future__ import annotations

import numpy as np

__all__ = ["train_test_split", "grouped_train_test_split"]


def train_test_split(items, test_fraction=0.2, seed=0):
    """Random split of a sequence into (train, test) lists."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    items = list(items)
    rng = np.random.default_rng(seed)
    order = np.arange(len(items))
    rng.shuffle(order)
    cut = max(1, int(round(len(items) * test_fraction)))
    test_idx = set(order[:cut].tolist())
    train = [item for i, item in enumerate(items) if i not in test_idx]
    test = [item for i, item in enumerate(items) if i in test_idx]
    return train, test


def grouped_train_test_split(items, groups, test_fraction=0.2, seed=0):
    """Split so that all items sharing a group id land on the same side."""
    if len(items) != len(groups):
        raise ValueError("items and groups must have the same length")
    items = list(items)
    groups = np.asarray(groups)
    unique_groups = np.unique(groups)
    rng = np.random.default_rng(seed)
    rng.shuffle(unique_groups)
    cut = max(1, int(round(len(unique_groups) * test_fraction)))
    test_groups = set(unique_groups[:cut].tolist())
    train = [item for item, g in zip(items, groups) if g not in test_groups]
    test = [item for item, g in zip(items, groups) if g in test_groups]
    return train, test
