"""Synthetic city datasets mirroring the paper's three corpora.

Each builder produces a :class:`CityDataset` containing the road network, the
speed model, the simulated trips, the unlabeled temporal-path corpus with
weak labels, and the three labelled task datasets.  The relative structure of
the three cities is preserved (Chengdu is the densest, Aalborg the sparsest,
Harbin in between), but every scale knob is reduced so experiments run on a
CPU in seconds-to-minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..roadnet.generator import CityConfig, generate_city_network
from ..temporal.weak_labels import CongestionIndexLabeler, PeakOffPeakLabeler
from ..trajectory.gps import GPSSampler
from ..trajectory.mapmatching import HMMMapMatcher
from ..trajectory.simulator import TripSimulator
from ..trajectory.speeds import CongestionProfile, SpeedModel
from .tasks import TaskDatasets, build_task_datasets
from .temporal_paths import TemporalPath, TemporalPathDataset

__all__ = ["DatasetScale", "CityDataset", "build_city_dataset", "mapmatch_trips",
           "aalborg", "harbin", "chengdu", "DATASET_BUILDERS"]


@dataclass(frozen=True)
class DatasetScale:
    """Scale knobs for a synthetic dataset build.

    ``tiny`` is for unit tests, ``small`` for benchmarks, ``medium`` for the
    examples.  The paper-scale corpora (tens of thousands of paths over
    ~10k-node networks) are out of reach for pure-numpy training, which the
    DESIGN.md substitution table documents.
    """

    grid_rows: int
    grid_cols: int
    num_trips: int
    num_labeled: int

    @classmethod
    def tiny(cls):
        return cls(grid_rows=5, grid_cols=5, num_trips=40, num_labeled=30)

    @classmethod
    def benchmark(cls):
        return cls(grid_rows=6, grid_cols=6, num_trips=100, num_labeled=80)

    @classmethod
    def small(cls):
        return cls(grid_rows=8, grid_cols=8, num_trips=160, num_labeled=120)

    @classmethod
    def medium(cls):
        return cls(grid_rows=12, grid_cols=12, num_trips=400, num_labeled=300)


@dataclass
class CityDataset:
    """Everything derived from one synthetic city."""

    name: str
    network: object
    speed_model: object
    trips: list
    unlabeled: TemporalPathDataset
    tasks: TaskDatasets
    pop_labeler: PeakOffPeakLabeler
    tci_labeler: CongestionIndexLabeler

    def statistics(self):
        """Dataset statistics in the shape of the paper's Table II."""
        return {
            "name": self.name,
            "num_nodes": self.network.num_nodes,
            "num_edges": self.network.num_edges,
            "unlabeled_paths": len(self.unlabeled),
            "labeled_paths": len(self.tasks.travel_time),
            "weak_label_distribution": self.unlabeled.label_distribution(),
        }


# City-specific layout parameters.  Grid aspect, arterial spacing and the
# congestion profile differ per city so the three datasets are genuinely
# different distributions, mirroring (at reduced scale) the differences in
# network density and traffic regime between Aalborg, Harbin and Chengdu.
_CITY_LAYOUTS = {
    # One-way fractions decrease from Aalborg to Chengdu so the edge/node
    # density ordering of the paper's Table II (Chengdu densest, Aalborg
    # sparsest) carries over to the synthetic networks.
    # The "gps" block scales the paper's sampling regimes down to the
    # synthetic networks: Aalborg's fleet logs at 1 Hz (dense, precise),
    # Harbin's taxis at 1/30 Hz (sparse, noisy), Chengdu in between
    # (1/4-1/2 Hz).  Used by the paths_from="mapmatched" scenario.
    "aalborg": {
        "arterial_every": 5,
        "one_way_fraction": 0.45,
        "signal_fraction": 0.25,
        "profile": CongestionProfile(morning_intensity=0.65, afternoon_intensity=0.55),
        "seed": 11,
        "gps": {"sample_interval": 5.0, "noise_std": 5.0},
    },
    "harbin": {
        "arterial_every": 4,
        "one_way_fraction": 0.20,
        "signal_fraction": 0.35,
        "profile": CongestionProfile(morning_intensity=0.85, afternoon_intensity=0.80),
        "seed": 23,
        "gps": {"sample_interval": 30.0, "noise_std": 12.0},
    },
    "chengdu": {
        "arterial_every": 3,
        "one_way_fraction": 0.05,
        "signal_fraction": 0.45,
        "profile": CongestionProfile(morning_intensity=0.90, afternoon_intensity=0.85),
        "seed": 37,
        "gps": {"sample_interval": 10.0, "noise_std": 8.0},
    },
}


def mapmatch_trips(network, speed_model, trips, gps_settings, seed, impl):
    """Replace each trip's path with the one recovered from noisy GPS.

    Samples a GPS trace along every trip's true path with
    :class:`~repro.trajectory.gps.GPSSampler`, recovers a path with the HMM
    map matcher (one :meth:`~repro.trajectory.mapmatching.HMMMapMatcher.match_batch`
    call so the Dijkstra cache is shared), and rebuilds the trips on the
    recovered paths.  Trips whose trace cannot be matched to a non-empty
    path keep their true path, so downstream corpus sizes are unchanged.
    """
    sampler = GPSSampler(network, speed_model, seed=seed, **gps_settings)
    matcher = HMMMapMatcher(network, impl=impl)
    trajectories = [sampler.sample(trip.path, trip.departure_time)
                    for trip in trips]
    matched_paths = matcher.match_batch(trajectories)
    rebuilt = []
    for trip, matched in zip(trips, matched_paths):
        path = list(matched) if matched else list(trip.path)
        rebuilt.append(replace(trip, path=path))
    return rebuilt


def build_city_dataset(name, scale=None, seed=None, impl="vectorized",
                       paths_from="simulator"):
    """Build a synthetic :class:`CityDataset` for one of the three cities.

    ``impl`` selects the trip-simulation engine (``"vectorized"`` batched
    candidate pricing vs the ``"reference"`` per-edge loops); both produce
    bit-identical corpora, the vectorized engine is just faster.

    ``paths_from`` selects where the corpus paths come from:

    * ``"simulator"`` (default) — ground-truth simulator paths, as before;
    * ``"mapmatched"`` — each trip's path is re-derived by sampling a noisy
      GPS trace along it (at the city's rate/noise regime) and recovering a
      path with the HMM map matcher, mimicking the paper's real ingestion
      pipeline where pretraining corpora come from map-matched GPS.
    """
    if name not in _CITY_LAYOUTS:
        raise KeyError(f"unknown city {name!r}; expected one of {sorted(_CITY_LAYOUTS)}")
    if paths_from not in ("simulator", "mapmatched"):
        raise ValueError(
            f"paths_from must be 'simulator' or 'mapmatched', got {paths_from!r}")
    layout = _CITY_LAYOUTS[name]
    scale = scale or DatasetScale.small()
    seed = layout["seed"] if seed is None else seed

    config = CityConfig(
        name=name,
        grid_rows=scale.grid_rows,
        grid_cols=scale.grid_cols,
        arterial_every=layout["arterial_every"],
        one_way_fraction=layout["one_way_fraction"],
        signal_fraction=layout["signal_fraction"],
        seed=seed,
    )
    network = generate_city_network(config)
    speed_model = SpeedModel(network, profile=layout["profile"], seed=seed)
    simulator = TripSimulator(network, speed_model=speed_model, seed=seed, impl=impl)
    trips = simulator.simulate(scale.num_trips)
    if paths_from == "mapmatched":
        trips = mapmatch_trips(network, speed_model, trips, layout["gps"],
                               seed, impl)

    pop_labeler = PeakOffPeakLabeler()
    tci_labeler = CongestionIndexLabeler(speed_model.congestion_level)

    temporal_paths = [
        TemporalPath(path=trip.path, departure_time=trip.departure_time)
        for trip in trips
    ]
    unlabeled = TemporalPathDataset(temporal_paths, pop_labeler)
    tasks = build_task_datasets(network, trips, max_labeled=scale.num_labeled)

    return CityDataset(
        name=name,
        network=network,
        speed_model=speed_model,
        trips=trips,
        unlabeled=unlabeled,
        tasks=tasks,
        pop_labeler=pop_labeler,
        tci_labeler=tci_labeler,
    )


def aalborg(scale=None, seed=None, impl="vectorized", paths_from="simulator"):
    """Synthetic stand-in for the Aalborg, Denmark dataset."""
    return build_city_dataset("aalborg", scale=scale, seed=seed, impl=impl,
                              paths_from=paths_from)


def harbin(scale=None, seed=None, impl="vectorized", paths_from="simulator"):
    """Synthetic stand-in for the Harbin, China dataset."""
    return build_city_dataset("harbin", scale=scale, seed=seed, impl=impl,
                              paths_from=paths_from)


def chengdu(scale=None, seed=None, impl="vectorized", paths_from="simulator"):
    """Synthetic stand-in for the Chengdu, China dataset."""
    return build_city_dataset("chengdu", scale=scale, seed=seed, impl=impl,
                              paths_from=paths_from)


#: Name -> builder mapping used by the benchmark harness.
DATASET_BUILDERS = {"aalborg": aalborg, "harbin": harbin, "chengdu": chengdu}
