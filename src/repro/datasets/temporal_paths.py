"""Temporal path containers (paper Definition 4) and dataset objects."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TemporalPath", "TemporalPathDataset"]


@dataclass(frozen=True)
class TemporalPath:
    """A temporal path ``tp = (p, t)``: an edge sequence plus a departure time."""

    path: tuple
    departure_time: object

    def __post_init__(self):
        object.__setattr__(self, "path", tuple(int(e) for e in self.path))
        if not self.path:
            raise ValueError("temporal path must contain at least one edge")

    def __len__(self):
        return len(self.path)

    @property
    def num_edges(self):
        return len(self.path)


class TemporalPathDataset:
    """A collection of temporal paths with weak labels.

    This is the unlabeled (in the strong sense) corpus WSCCL trains on: every
    temporal path carries only a weak label derived from its departure time.
    """

    def __init__(self, temporal_paths, weak_labeler):
        self.temporal_paths = list(temporal_paths)
        self.weak_labeler = weak_labeler
        self.weak_labels = np.array(
            [weak_labeler.label(tp.departure_time) for tp in self.temporal_paths],
            dtype=np.int64,
        )

    def __len__(self):
        return len(self.temporal_paths)

    def __getitem__(self, index):
        return self.temporal_paths[index], int(self.weak_labels[index])

    def __iter__(self):
        for index in range(len(self)):
            yield self[index]

    # ------------------------------------------------------------------
    def path_lengths(self):
        """Number of edges of every temporal path."""
        return np.array([len(tp) for tp in self.temporal_paths], dtype=np.int64)

    def relabel(self, weak_labeler):
        """Return a new dataset with the same paths but a different weak labeler."""
        return TemporalPathDataset(self.temporal_paths, weak_labeler)

    def subset(self, indices):
        """Return a new dataset restricted to ``indices`` (keeps the labeler)."""
        selected = [self.temporal_paths[i] for i in indices]
        return TemporalPathDataset(selected, self.weak_labeler)

    def label_distribution(self):
        """Mapping weak label -> count, useful for sanity checks and reports."""
        values, counts = np.unique(self.weak_labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def minibatches(self, batch_size, rng=None, shuffle=True):
        """Yield lists of ``(TemporalPath, weak_label)`` pairs of size ``batch_size``."""
        if batch_size < 2:
            raise ValueError("contrastive training needs batch_size >= 2")
        order = np.arange(len(self))
        if shuffle:
            rng = rng or np.random.default_rng()
            rng.shuffle(order)
        for start in range(0, len(order), batch_size):
            chunk = order[start:start + batch_size]
            if len(chunk) < 2:
                continue
            yield [self[i] for i in chunk]
