"""Synthetic city road-network generator.

The paper evaluates on OpenStreetMap extracts of Aalborg, Harbin and Chengdu.
Those extracts are not available offline, so this module generates synthetic
city networks with the same *structure* the WSCCL spatial embedding relies
on: a grid of residential/tertiary streets, arterial primary/secondary roads
every few blocks, an orbital/diagonal motorway, heterogeneous lane counts,
one-way streets and signalised intersections.

Each generated network is deterministic given its seed, and the three named
configurations in :mod:`repro.datasets.synthetic` mirror the relative size
and density differences between the three cities (scaled down for CPU).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .features import MAX_LANES, EdgeFeatures
from .network import RoadNetwork

__all__ = ["CityConfig", "generate_city_network"]


#: Free-flow speed limits (km/h) per road type.
_SPEED_LIMITS = {
    "motorway": 110.0,
    "trunk": 90.0,
    "primary": 70.0,
    "secondary": 60.0,
    "tertiary": 50.0,
    "residential": 40.0,
    "service": 30.0,
}

#: Typical lane counts per road type (mean used for sampling).
_TYPICAL_LANES = {
    "motorway": 3,
    "trunk": 3,
    "primary": 2,
    "secondary": 2,
    "tertiary": 1,
    "residential": 1,
    "service": 1,
}


@dataclass(frozen=True)
class CityConfig:
    """Parameters controlling the synthetic city layout.

    Attributes
    ----------
    name:
        Human-readable city name ("aalborg", "harbin", "chengdu", ...).
    grid_rows, grid_cols:
        Size of the street grid; the number of nodes is roughly
        ``grid_rows * grid_cols``.
    block_length:
        Spacing between grid intersections in metres.
    arterial_every:
        Every n-th row/column becomes an arterial (primary/secondary) road.
    highway_ring:
        Whether to add a high-speed orbital motorway around the grid.
    one_way_fraction:
        Fraction of residential streets that are one-way.
    signal_fraction:
        Fraction of edges ending in a signalised intersection.
    seed:
        RNG seed; networks are fully deterministic given the config.
    """

    name: str
    grid_rows: int
    grid_cols: int
    block_length: float = 250.0
    arterial_every: int = 4
    highway_ring: bool = True
    one_way_fraction: float = 0.15
    signal_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self):
        if self.grid_rows < 2 or self.grid_cols < 2:
            raise ValueError("grid must be at least 2x2")
        if not 0.0 <= self.one_way_fraction <= 1.0:
            raise ValueError("one_way_fraction must be in [0, 1]")
        if not 0.0 <= self.signal_fraction <= 1.0:
            raise ValueError("signal_fraction must be in [0, 1]")
        if self.arterial_every < 2:
            raise ValueError("arterial_every must be >= 2")


def generate_city_network(config):
    """Build a :class:`RoadNetwork` from a :class:`CityConfig`."""
    rng = np.random.default_rng(config.seed)
    network = RoadNetwork(name=config.name)

    # --- grid nodes, with small positional jitter so lengths vary ---------
    node_ids = {}
    for row in range(config.grid_rows):
        for col in range(config.grid_cols):
            jitter_x = rng.uniform(-0.08, 0.08) * config.block_length
            jitter_y = rng.uniform(-0.08, 0.08) * config.block_length
            x = col * config.block_length + jitter_x
            y = row * config.block_length + jitter_y
            node_ids[(row, col)] = network.add_node(x, y)

    def road_type_for(row_or_col, horizontal):
        if row_or_col % config.arterial_every == 0:
            return "primary" if (row_or_col // config.arterial_every) % 2 == 0 else "secondary"
        return "residential" if rng.random() < 0.7 else "tertiary"

    def make_features(road_type, length):
        typical = _TYPICAL_LANES[road_type]
        lanes = int(np.clip(typical + rng.integers(-1, 2), 1, MAX_LANES))
        one_way = (road_type in ("residential", "service")
                   and rng.random() < config.one_way_fraction)
        signals = rng.random() < config.signal_fraction
        return EdgeFeatures(
            road_type=road_type,
            lanes=lanes,
            one_way=one_way,
            traffic_signals=signals,
            length=float(length),
            speed_limit=_SPEED_LIMITS[road_type],
        )

    def connect(a, b, road_type):
        ax, ay = network.node_coordinates(a)
        bx, by = network.node_coordinates(b)
        length = float(np.hypot(bx - ax, by - ay))
        forward = make_features(road_type, length)
        network.add_edge(a, b, forward)
        if not forward.one_way:
            backward = EdgeFeatures(
                road_type=forward.road_type,
                lanes=forward.lanes,
                one_way=False,
                traffic_signals=forward.traffic_signals,
                length=length,
                speed_limit=forward.speed_limit,
            )
            network.add_edge(b, a, backward)

    # --- horizontal and vertical streets -----------------------------------
    for row in range(config.grid_rows):
        for col in range(config.grid_cols - 1):
            connect(node_ids[(row, col)], node_ids[(row, col + 1)],
                    road_type_for(row, horizontal=True))
    for col in range(config.grid_cols):
        for row in range(config.grid_rows - 1):
            connect(node_ids[(row, col)], node_ids[(row + 1, col)],
                    road_type_for(col, horizontal=False))

    # --- orbital motorway ring ---------------------------------------------
    if config.highway_ring:
        _add_highway_ring(network, config, node_ids, rng)

    return network


def _add_highway_ring(network, config, node_ids, rng):
    """Add motorway nodes around the grid, linked by trunk on/off ramps."""
    margin = 2.0 * config.block_length
    width = (config.grid_cols - 1) * config.block_length
    height = (config.grid_rows - 1) * config.block_length

    corners = [
        (-margin, -margin),
        (width + margin, -margin),
        (width + margin, height + margin),
        (-margin, height + margin),
    ]
    ring_nodes = [network.add_node(x, y) for x, y in corners]

    def motorway_features(length):
        return EdgeFeatures(
            road_type="motorway",
            lanes=3,
            one_way=False,
            traffic_signals=False,
            length=float(length),
            speed_limit=_SPEED_LIMITS["motorway"],
        )

    # Connect ring corners in both directions.
    for index in range(len(ring_nodes)):
        a = ring_nodes[index]
        b = ring_nodes[(index + 1) % len(ring_nodes)]
        ax, ay = network.node_coordinates(a)
        bx, by = network.node_coordinates(b)
        length = float(np.hypot(bx - ax, by - ay))
        network.add_edge(a, b, motorway_features(length))
        network.add_edge(b, a, motorway_features(length))

    # Ramps from each ring corner to the nearest grid corner.
    grid_corners = [
        node_ids[(0, 0)],
        node_ids[(0, config.grid_cols - 1)],
        node_ids[(config.grid_rows - 1, config.grid_cols - 1)],
        node_ids[(config.grid_rows - 1, 0)],
    ]
    for ring_node, grid_node in zip(ring_nodes, grid_corners):
        ax, ay = network.node_coordinates(ring_node)
        bx, by = network.node_coordinates(grid_node)
        length = float(np.hypot(bx - ax, by - ay))
        ramp = EdgeFeatures(
            road_type="trunk",
            lanes=2,
            one_way=False,
            traffic_signals=False,
            length=length,
            speed_limit=_SPEED_LIMITS["trunk"],
        )
        network.add_edge(ring_node, grid_node, ramp)
        network.add_edge(grid_node, ring_node, ramp)
