"""Path search over road networks.

The path-ranking and path-recommendation downstream tasks (paper §VII-A2)
need, for every observed trajectory path, a set of *alternative* paths
connecting the same source and destination.  The paper uses "a path finding
algorithm" for this; we provide Dijkstra shortest paths and a Yen-style
k-shortest-path enumeration, both expressed over edge travel costs.
"""

from __future__ import annotations

import heapq

__all__ = ["shortest_path", "k_shortest_paths", "path_similarity"]


def shortest_path(network, source, target, edge_cost=None, banned_edges=None):
    """Dijkstra shortest path from ``source`` to ``target`` node.

    Parameters
    ----------
    network:
        A :class:`~repro.roadnet.network.RoadNetwork`.
    source, target:
        Node ids.
    edge_cost:
        Optional callable ``edge_id -> cost``.  Defaults to free-flow time.
    banned_edges:
        Optional set of edge ids that must not be used.

    Returns
    -------
    list of edge ids, or ``None`` when the target is unreachable.
    """
    if edge_cost is None:
        edge_cost = lambda e: network.edge_features(e).free_flow_time
    banned = banned_edges or frozenset()

    best = {source: 0.0}
    back_edge = {}
    heap = [(0.0, source)]
    visited = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for edge in network.out_edges(node):
            if edge in banned:
                continue
            _, neighbour = network.edge_endpoints(edge)
            step = edge_cost(edge)
            if step < 0:
                raise ValueError("edge costs must be non-negative for Dijkstra")
            candidate = cost + step
            if candidate < best.get(neighbour, float("inf")):
                best[neighbour] = candidate
                back_edge[neighbour] = edge
                heapq.heappush(heap, (candidate, neighbour))

    if target not in back_edge and source != target:
        return None
    if source == target:
        return []

    # Reconstruct edge sequence.
    edges = []
    node = target
    while node != source:
        edge = back_edge[node]
        edges.append(edge)
        node = network.edge_endpoints(edge)[0]
    edges.reverse()
    return edges


def k_shortest_paths(network, source, target, k, edge_cost=None):
    """Return up to ``k`` loop-free paths ordered by cost (Yen's algorithm).

    The deviation-path construction bans one edge of the current best path at
    a time, which yields genuinely different alternatives — exactly what the
    ranking/recommendation tasks need as negative candidates.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if edge_cost is None:
        edge_cost = lambda e: network.edge_features(e).free_flow_time

    first = shortest_path(network, source, target, edge_cost=edge_cost)
    if first is None:
        return []

    def cost_of(path):
        return sum(edge_cost(e) for e in path)

    accepted = [first]
    candidates = []
    seen = {tuple(first)}

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(len(previous)):
            spur_node = network.edge_endpoints(previous[spur_index])[0]
            root = previous[:spur_index]
            banned = set()
            for path in accepted:
                if list(path[:spur_index]) == list(root) and spur_index < len(path):
                    banned.add(path[spur_index])
            spur = shortest_path(network, spur_node, target,
                                 edge_cost=edge_cost, banned_edges=banned)
            if spur is None:
                continue
            candidate = list(root) + spur
            key = tuple(candidate)
            if key in seen or not network.is_connected_path(candidate):
                continue
            seen.add(key)
            heapq.heappush(candidates, (cost_of(candidate), len(candidates), candidate))
        if not candidates:
            break
        _, _, best_candidate = heapq.heappop(candidates)
        accepted.append(best_candidate)

    # The deviation search can occasionally surface a cheaper alternative after
    # a more expensive one has been accepted; sort so the documented
    # "ordered by cost" contract always holds (the true shortest stays first).
    accepted.sort(key=cost_of)
    return accepted


def path_similarity(network, path_a, path_b):
    """Length-weighted Jaccard similarity between two paths.

    This is the score the paper uses to rank generated alternatives against
    the observed trajectory path: the trajectory path scores 1.0 against
    itself, and alternatives score according to how much of their length
    they share with it.
    """
    edges_a = set(path_a)
    edges_b = set(path_b)
    if not edges_a or not edges_b:
        return 0.0
    if edges_a == edges_b:
        return 1.0
    # Iterate in sorted order so equal edge sets always sum identically.
    shared = sorted(edges_a & edges_b)
    union = sorted(edges_a | edges_b)
    shared_length = sum(network.edge_length(e) for e in shared)
    union_length = sum(network.edge_length(e) for e in union)
    if union_length <= 0:
        return 0.0
    return float(shared_length / union_length)
