"""Path search over road networks.

The path-ranking and path-recommendation downstream tasks (paper §VII-A2)
need, for every observed trajectory path, a set of *alternative* paths
connecting the same source and destination.  The paper uses "a path finding
algorithm" for this; we provide Dijkstra shortest paths and a Yen-style
k-shortest-path enumeration, both expressed over edge travel costs.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

__all__ = ["shortest_path", "k_shortest_paths", "path_similarity",
           "multi_target_distances", "DijkstraCache"]


def shortest_path(network, source, target, edge_cost=None, banned_edges=None,
                  banned_nodes=None):
    """Dijkstra shortest path from ``source`` to ``target`` node.

    Parameters
    ----------
    network:
        A :class:`~repro.roadnet.network.RoadNetwork`.
    source, target:
        Node ids.
    edge_cost:
        Optional callable ``edge_id -> cost``.  Defaults to free-flow time.
    banned_edges:
        Optional set of edge ids that must not be used.
    banned_nodes:
        Optional set of node ids that must not be visited (the source itself
        is exempt).  Yen's spur searches use this to stay loop-free.

    Returns
    -------
    list of edge ids, or ``None`` when the target is unreachable.
    """
    if edge_cost is None:
        edge_cost = lambda e: network.edge_features(e).free_flow_time
    banned = banned_edges or frozenset()
    banned_node_set = banned_nodes or frozenset()

    best = {source: 0.0}
    back_edge = {}
    heap = [(0.0, source)]
    visited = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        if node == target:
            break
        for edge in network.out_edges(node):
            if edge in banned:
                continue
            _, neighbour = network.edge_endpoints(edge)
            if neighbour in banned_node_set:
                continue
            step = edge_cost(edge)
            if step < 0:
                raise ValueError("edge costs must be non-negative for Dijkstra")
            candidate = cost + step
            if candidate < best.get(neighbour, float("inf")):
                best[neighbour] = candidate
                back_edge[neighbour] = edge
                heapq.heappush(heap, (candidate, neighbour))

    if target not in back_edge and source != target:
        return None
    if source == target:
        return []

    # Reconstruct edge sequence.
    edges = []
    node = target
    while node != source:
        edge = back_edge[node]
        edges.append(edge)
        node = network.edge_endpoints(edge)[0]
    edges.reverse()
    return edges


def k_shortest_paths(network, source, target, k, edge_cost=None):
    """Return up to ``k`` loop-free paths ordered by cost (Yen's algorithm).

    The deviation-path construction bans one edge of the current best path at
    a time, which yields genuinely different alternatives — exactly what the
    ranking/recommendation tasks need as negative candidates.  Each spur
    search additionally bans the root path's nodes, so a spur can never
    revisit a node already used by its root — without this, the returned
    "loop-free" paths could repeat nodes and edges.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if edge_cost is None:
        edge_cost = lambda e: network.edge_features(e).free_flow_time

    first = shortest_path(network, source, target, edge_cost=edge_cost)
    if first is None:
        return []

    def cost_of(path):
        return sum(edge_cost(e) for e in path)

    accepted = [first]
    candidates = []
    seen = {tuple(first)}

    while len(accepted) < k:
        previous = accepted[-1]
        for spur_index in range(len(previous)):
            spur_node = network.edge_endpoints(previous[spur_index])[0]
            root = previous[:spur_index]
            banned = set()
            for path in accepted:
                if list(path[:spur_index]) == list(root) and spur_index < len(path):
                    banned.add(path[spur_index])
            # Nodes already visited by the root (everything before the spur
            # node) must stay off-limits, otherwise the spur path can loop
            # back through the root.
            root_nodes = {network.edge_endpoints(edge)[0] for edge in root}
            spur = shortest_path(network, spur_node, target,
                                 edge_cost=edge_cost, banned_edges=banned,
                                 banned_nodes=root_nodes)
            if spur is None:
                continue
            candidate = list(root) + spur
            key = tuple(candidate)
            if key in seen or not network.is_connected_path(candidate):
                continue
            seen.add(key)
            heapq.heappush(candidates, (cost_of(candidate), len(candidates), candidate))
        if not candidates:
            break
        _, _, best_candidate = heapq.heappop(candidates)
        accepted.append(best_candidate)

    # The deviation search can occasionally surface a cheaper alternative after
    # a more expensive one has been accepted; sort so the documented
    # "ordered by cost" contract always holds (the true shortest stays first).
    accepted.sort(key=cost_of)
    return accepted


def multi_target_distances(network, source, targets, edge_cost=None,
                           max_cost=None):
    """Bounded multi-target Dijkstra: distances from ``source`` to ``targets``.

    One heap run prices every requested target, stopping as soon as all of
    them are settled (or, with ``max_cost``, as soon as the search frontier
    exceeds the bound).  The relaxation order and float accumulation are
    identical to :func:`shortest_path`, so for any reachable target the
    returned distance is bit-identical to summing the edge costs of the
    corresponding :func:`shortest_path` result.

    Parameters
    ----------
    network:
        A :class:`~repro.roadnet.network.RoadNetwork`.
    source:
        Source node id.
    targets:
        Iterable of target node ids.
    edge_cost:
        Optional callable ``edge_id -> cost``.  Defaults to free-flow time.
    max_cost:
        Optional search bound; targets farther than this come back infinite.

    Returns
    -------
    dict mapping each target to its distance (``float("inf")`` when the
    target is unreachable or beyond ``max_cost``).
    """
    if edge_cost is None:
        edge_cost = lambda e: network.edge_features(e).free_flow_time
    state = _DijkstraState(source)
    state.settle(targets, _NetworkAdjacency(network, edge_cost),
                 max_cost=max_cost)
    infinity = float("inf")
    return {target: state.settled.get(target, infinity) for target in targets}


class _NetworkAdjacency:
    """Lazy per-node ``[(cost, head), ...]`` rows computed from the network.

    Rows are built (and edge costs validated) on first access, so one-shot
    searches touch only the nodes they actually relax.
    """

    __slots__ = ("_network", "_edge_cost", "_rows")

    def __init__(self, network, edge_cost):
        self._network = network
        self._edge_cost = edge_cost
        self._rows = {}

    def __getitem__(self, node):
        rows = self._rows.get(node)
        if rows is None:
            rows = []
            for edge in self._network.out_edges(node):
                step = self._edge_cost(edge)
                if step < 0:
                    raise ValueError("edge costs must be non-negative for Dijkstra")
                rows.append((step, self._network.edge_endpoints(edge)[1]))
            self._rows[node] = rows
        return rows


class _DijkstraState:
    """A resumable single-source Dijkstra run over an adjacency table."""

    __slots__ = ("best", "settled", "heap")

    def __init__(self, source):
        self.best = {source: 0.0}
        self.settled = {}
        self.heap = [(0.0, source)]

    def settle(self, targets, adjacency, max_cost=None):
        """Pop until every node in ``targets`` is settled (or the heap dries
        up, or the frontier exceeds ``max_cost``)."""
        remaining = {t for t in targets if t not in self.settled}
        heap = self.heap
        settled = self.settled
        best = self.best
        while heap and remaining:
            cost, node = heapq.heappop(heap)
            if node in settled:
                continue
            if max_cost is not None and cost > max_cost:
                # Keep the frontier intact so a later unbounded resume can
                # continue from here.
                heapq.heappush(heap, (cost, node))
                break
            settled[node] = cost
            remaining.discard(node)
            for step, neighbour in adjacency[node]:
                candidate = cost + step
                if candidate < best.get(neighbour, float("inf")):
                    best[neighbour] = candidate
                    heapq.heappush(heap, (candidate, neighbour))


class DijkstraCache:
    """LRU cache of resumable single-source Dijkstra searches.

    The HMM map matcher prices the network distance between every pair of
    consecutive candidate edges; without caching, that is one full Dijkstra
    per Viterbi cell.  This cache keys a resumable search state by source
    node, so each unique source is explored once — later queries (from any
    Viterbi step, or any trajectory in a batch) resume the existing frontier
    only as far as the new targets require.

    Distances are bit-identical to :func:`shortest_path` edge-cost sums: the
    relaxation order (``network.out_edges`` order) and the float accumulation
    (``cost + step`` along the shortest-path tree) are the same.

    Parameters
    ----------
    network:
        A :class:`~repro.roadnet.network.RoadNetwork`.
    edge_cost:
        Optional callable ``edge_id -> cost``.  Defaults to free-flow time.
    max_sources:
        How many source states to keep (least recently used are evicted).
    """

    def __init__(self, network, edge_cost=None, max_sources=4096):
        if max_sources < 1:
            raise ValueError("max_sources must be >= 1")
        if edge_cost is None:
            edge_cost = lambda e: network.edge_features(e).free_flow_time
        self.max_sources = max_sources
        # Adjacency rows — (cost, head) per outgoing edge in out_edges order
        # — are materialised once per touched node and shared by every cached
        # state, keeping resumed relaxations free of per-edge method calls.
        self._adjacency = _NetworkAdjacency(network, edge_cost)
        self._states = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._states)

    def distances(self, source, targets):
        """Distances from ``source`` to each node in ``targets``.

        Returns a dict ``target -> distance`` with ``float("inf")`` for
        unreachable targets.
        """
        state = self._states.get(source)
        if state is None:
            self.misses += 1
            state = _DijkstraState(source)
            self._states[source] = state
            if len(self._states) > self.max_sources:
                self._states.popitem(last=False)
        else:
            self.hits += 1
        self._states.move_to_end(source)
        state.settle(targets, self._adjacency)
        infinity = float("inf")
        settled = state.settled
        return {target: settled.get(target, infinity) for target in targets}

    def clear(self):
        """Drop all cached states (and reset the hit/miss counters)."""
        self._states.clear()
        self.hits = 0
        self.misses = 0


def path_similarity(network, path_a, path_b):
    """Length-weighted Jaccard similarity between two paths.

    This is the score the paper uses to rank generated alternatives against
    the observed trajectory path: the trajectory path scores 1.0 against
    itself, and alternatives score according to how much of their length
    they share with it.
    """
    edges_a = set(path_a)
    edges_b = set(path_b)
    if not edges_a or not edges_b:
        return 0.0
    if edges_a == edges_b:
        return 1.0
    # Iterate in sorted order so equal edge sets always sum identically.
    shared = sorted(edges_a & edges_b)
    union = sorted(edges_a | edges_b)
    shared_length = sum(network.edge_length(e) for e in shared)
    union_length = sum(network.edge_length(e) for e in union)
    if union_length <= 0:
        return 0.0
    return float(shared_length / union_length)
