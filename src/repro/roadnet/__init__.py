"""Road-network substrate: graph model, edge features, generator, search."""

from .features import MAX_LANES, ROAD_TYPES, EdgeFeatures, FeatureEncoder
from .generator import CityConfig, generate_city_network
from .network import Path, RoadNetwork
from .search import (
    DijkstraCache,
    k_shortest_paths,
    multi_target_distances,
    path_similarity,
    shortest_path,
)
from .spatial_index import SegmentGridIndex

__all__ = [
    "EdgeFeatures",
    "FeatureEncoder",
    "ROAD_TYPES",
    "MAX_LANES",
    "RoadNetwork",
    "Path",
    "CityConfig",
    "generate_city_network",
    "shortest_path",
    "k_shortest_paths",
    "path_similarity",
    "multi_target_distances",
    "DijkstraCache",
    "SegmentGridIndex",
]
