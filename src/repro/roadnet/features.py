"""Edge feature schema for road networks.

The paper's spatial embedding (§IV-B) uses four categorical features per
edge: road type, number of lanes, one-way flag and traffic signals.  This
module defines those categories, the container for per-edge features, and the
conversion from features to categorical indices / one-hot vectors consumed by
the spatial embedding layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ROAD_TYPES", "MAX_LANES", "EdgeFeatures", "FeatureEncoder"]


#: Road type vocabulary, ordered from high-capacity to low-capacity roads.
ROAD_TYPES = (
    "motorway",
    "trunk",
    "primary",
    "secondary",
    "tertiary",
    "residential",
    "service",
)

#: Number of lanes is bucketed into 1..MAX_LANES.
MAX_LANES = 6


@dataclass(frozen=True)
class EdgeFeatures:
    """Static attributes of one road segment.

    Attributes
    ----------
    road_type:
        One of :data:`ROAD_TYPES`.
    lanes:
        Number of traffic lanes, between 1 and :data:`MAX_LANES`.
    one_way:
        Whether the edge may be traversed in one direction only.
    traffic_signals:
        Whether the edge ends in (or contains) a signalised intersection.
    length:
        Segment length in metres.
    speed_limit:
        Free-flow speed in km/h.
    """

    road_type: str
    lanes: int
    one_way: bool
    traffic_signals: bool
    length: float
    speed_limit: float

    def __post_init__(self):
        if self.road_type not in ROAD_TYPES:
            raise ValueError(f"unknown road type: {self.road_type!r}")
        if not 1 <= self.lanes <= MAX_LANES:
            raise ValueError(f"lanes must be in [1, {MAX_LANES}], got {self.lanes}")
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.speed_limit <= 0:
            raise ValueError("speed_limit must be positive")

    @property
    def free_flow_time(self):
        """Traversal time in seconds at the speed limit."""
        return self.length / (self.speed_limit / 3.6)


class FeatureEncoder:
    """Convert :class:`EdgeFeatures` into categorical indices and one-hots.

    The categorical cardinalities correspond to the paper's ``n_rt``, ``n_l``,
    ``n_o`` and ``n_ts``.
    """

    def __init__(self):
        self.road_type_index = {name: i for i, name in enumerate(ROAD_TYPES)}

    @property
    def num_road_types(self):
        return len(ROAD_TYPES)

    @property
    def num_lane_buckets(self):
        return MAX_LANES

    @property
    def num_one_way(self):
        return 2

    @property
    def num_signals(self):
        return 2

    def categorical_indices(self, features):
        """Return (road_type_idx, lanes_idx, one_way_idx, signals_idx)."""
        return (
            self.road_type_index[features.road_type],
            features.lanes - 1,
            int(features.one_way),
            int(features.traffic_signals),
        )

    def one_hot(self, features):
        """Concatenated one-hot encoding of the four categorical features."""
        rt, lanes, ow, ts = self.categorical_indices(features)
        pieces = [
            _one_hot(rt, self.num_road_types),
            _one_hot(lanes, self.num_lane_buckets),
            _one_hot(ow, self.num_one_way),
            _one_hot(ts, self.num_signals),
        ]
        return np.concatenate(pieces)

    def encode_edges(self, edge_features):
        """Vectorise a sequence of :class:`EdgeFeatures` into an index matrix.

        Returns an integer array of shape ``(num_edges, 4)`` whose columns
        are road type, lane bucket, one-way flag and traffic-signal flag.
        """
        matrix = np.zeros((len(edge_features), 4), dtype=np.int64)
        for row, features in enumerate(edge_features):
            matrix[row] = self.categorical_indices(features)
        return matrix


def _one_hot(index, size):
    vector = np.zeros(size)
    vector[index] = 1.0
    return vector
