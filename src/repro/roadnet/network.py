"""Directed road network model (paper Definition 1).

A :class:`RoadNetwork` is a directed graph whose vertices are intersections
and whose edges are road segments carrying :class:`~repro.roadnet.features.EdgeFeatures`.
Paths (Definition 3) are sequences of adjacent edge ids.
"""

from __future__ import annotations

import numpy as np

from .features import EdgeFeatures, FeatureEncoder

__all__ = ["RoadNetwork", "Path"]


class Path:
    """A path is a sequence of adjacent edge ids (paper Definition 3)."""

    __slots__ = ("edges",)

    def __init__(self, edges):
        self.edges = tuple(int(e) for e in edges)
        if not self.edges:
            raise ValueError("a path must contain at least one edge")

    def __len__(self):
        return len(self.edges)

    def __iter__(self):
        return iter(self.edges)

    def __getitem__(self, index):
        return self.edges[index]

    def __eq__(self, other):
        if isinstance(other, Path):
            return self.edges == other.edges
        return NotImplemented

    def __hash__(self):
        return hash(self.edges)

    def __repr__(self):
        return f"Path(num_edges={len(self.edges)})"


class RoadNetwork:
    """A directed road network with per-edge features and coordinates.

    Nodes are integers ``0..num_nodes-1``; edges are integers
    ``0..num_edges-1``.  Each edge stores its endpoints and an
    :class:`EdgeFeatures` record.
    """

    def __init__(self, name="roadnet"):
        self.name = name
        self._node_coords = []
        self._edge_endpoints = []
        self._edge_features = []
        self._out_edges = {}
        self._in_edges = {}
        self._edge_lookup = {}
        self.feature_encoder = FeatureEncoder()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, x, y):
        """Add an intersection at coordinates ``(x, y)`` (metres). Returns id."""
        node_id = len(self._node_coords)
        self._node_coords.append((float(x), float(y)))
        self._out_edges[node_id] = []
        self._in_edges[node_id] = []
        return node_id

    def add_edge(self, source, target, features):
        """Add a directed road segment.  Returns the new edge id."""
        if source == target:
            raise ValueError("self-loop edges are not allowed in a road network")
        for node in (source, target):
            if not 0 <= node < len(self._node_coords):
                raise KeyError(f"unknown node id {node}")
        if not isinstance(features, EdgeFeatures):
            raise TypeError("features must be an EdgeFeatures instance")
        edge_id = len(self._edge_endpoints)
        self._edge_endpoints.append((source, target))
        self._edge_features.append(features)
        self._out_edges[source].append(edge_id)
        self._in_edges[target].append(edge_id)
        self._edge_lookup[(source, target)] = edge_id
        return edge_id

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self):
        return len(self._node_coords)

    @property
    def num_edges(self):
        return len(self._edge_endpoints)

    def node_coordinates(self, node_id):
        """(x, y) position of a node in metres."""
        return self._node_coords[node_id]

    def edge_endpoints(self, edge_id):
        """(source, target) node ids of an edge."""
        return self._edge_endpoints[edge_id]

    def edge_features(self, edge_id):
        """The :class:`EdgeFeatures` of an edge."""
        return self._edge_features[edge_id]

    def edge_length(self, edge_id):
        """Length of the edge in metres."""
        return self._edge_features[edge_id].length

    def edge_id(self, source, target):
        """Edge id for a (source, target) pair, or None if absent."""
        return self._edge_lookup.get((source, target))

    def out_edges(self, node_id):
        """Edge ids leaving ``node_id``."""
        return tuple(self._out_edges[node_id])

    def in_edges(self, node_id):
        """Edge ids entering ``node_id``."""
        return tuple(self._in_edges[node_id])

    def all_edge_features(self):
        """List of all edge feature records, indexed by edge id."""
        return list(self._edge_features)

    def edge_feature_matrix(self):
        """Integer matrix of categorical feature indices, shape (E, 4)."""
        return self.feature_encoder.encode_edges(self._edge_features)

    def edge_midpoint(self, edge_id):
        """Geometric midpoint of the edge, used by the GPS sampler."""
        source, target = self._edge_endpoints[edge_id]
        sx, sy = self._node_coords[source]
        tx, ty = self._node_coords[target]
        return ((sx + tx) / 2.0, (sy + ty) / 2.0)

    def point_along_edge(self, edge_id, fraction):
        """Point at ``fraction`` in [0, 1] along the straight-line edge."""
        source, target = self._edge_endpoints[edge_id]
        sx, sy = self._node_coords[source]
        tx, ty = self._node_coords[target]
        fraction = float(np.clip(fraction, 0.0, 1.0))
        return (sx + fraction * (tx - sx), sy + fraction * (ty - sy))

    # ------------------------------------------------------------------
    # Path validation and statistics
    # ------------------------------------------------------------------
    def is_connected_path(self, edge_ids):
        """True when consecutive edges share a node head-to-tail."""
        edge_ids = list(edge_ids)
        if not edge_ids:
            return False
        for previous, current in zip(edge_ids, edge_ids[1:]):
            if self._edge_endpoints[previous][1] != self._edge_endpoints[current][0]:
                return False
        return True

    def path_length(self, path):
        """Total length in metres of a path."""
        return float(sum(self.edge_length(e) for e in path))

    def path_free_flow_time(self, path):
        """Sum of free-flow traversal times in seconds along the path."""
        return float(sum(self._edge_features[e].free_flow_time for e in path))

    def path_nodes(self, path):
        """Node sequence visited by a path (length = edges + 1)."""
        edges = list(path)
        nodes = [self._edge_endpoints[edges[0]][0]]
        for edge in edges:
            nodes.append(self._edge_endpoints[edge][1])
        return nodes

    def statistics(self):
        """Summary statistics used by the Table II bench."""
        lengths = np.array([f.length for f in self._edge_features]) if self._edge_features else np.zeros(1)
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "total_length_km": float(lengths.sum() / 1000.0),
            "mean_edge_length_m": float(lengths.mean()),
        }

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` with edge attributes.

        Useful for interoperability and for tests that cross-check shortest
        paths against networkx.
        """
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for node_id, (x, y) in enumerate(self._node_coords):
            graph.add_node(node_id, x=x, y=y)
        for edge_id, (source, target) in enumerate(self._edge_endpoints):
            features = self._edge_features[edge_id]
            graph.add_edge(
                source,
                target,
                edge_id=edge_id,
                length=features.length,
                road_type=features.road_type,
                free_flow_time=features.free_flow_time,
            )
        return graph
