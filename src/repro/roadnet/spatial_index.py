"""Coarse uniform-grid spatial index over road-segment geometry.

The HMM map matcher needs, for every GPS fix, the road segments within a
search radius.  Scanning every edge per fix is O(T·E); this index buckets
segments into a uniform grid once, so each query touches only the cells
overlapping the fix's search square.

The index is conservative: :meth:`SegmentGridIndex.query` returns a
*superset* of the edges within ``radius`` of the point (every edge is
registered in all cells its bounding box overlaps, and the query covers all
cells intersecting the radius square), so exact segment distances computed
on the returned subset select exactly the same candidates as a full scan.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SegmentGridIndex"]


class SegmentGridIndex:
    """Uniform grid over 2-D segments supporting radius candidate queries.

    Parameters
    ----------
    starts, ends:
        ``(E, 2)`` arrays of segment endpoint coordinates (metres).
    cell_size:
        Grid cell edge length in metres.  Around the typical query radius is
        a good choice: smaller cells prune better but cost more memory.
    """

    def __init__(self, starts, ends, cell_size):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if starts.shape != ends.shape or starts.ndim != 2 or starts.shape[1] != 2:
            raise ValueError("starts and ends must both have shape (E, 2)")
        self.cell_size = float(cell_size)
        self.num_segments = int(starts.shape[0])

        lower = np.minimum(starts, ends)
        upper = np.maximum(starts, ends)
        self._origin = (lower.min(axis=0) if self.num_segments
                        else np.zeros(2))

        low_cells = np.floor((lower - self._origin) / self.cell_size).astype(np.int64)
        high_cells = np.floor((upper - self._origin) / self.cell_size).astype(np.int64)

        self._cells = {}
        for edge in range(self.num_segments):
            for ci in range(low_cells[edge, 0], high_cells[edge, 0] + 1):
                for cj in range(low_cells[edge, 1], high_cells[edge, 1] + 1):
                    self._cells.setdefault((ci, cj), []).append(edge)

    def query(self, point, radius):
        """Edge ids possibly within ``radius`` of ``point``, sorted ascending.

        Guaranteed to contain every segment whose true distance to ``point``
        is at most ``radius``; may contain farther segments (callers filter
        with exact distances).
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        point = np.asarray(point, dtype=np.float64)
        low = np.floor((point - radius - self._origin) / self.cell_size).astype(np.int64)
        high = np.floor((point + radius - self._origin) / self.cell_size).astype(np.int64)
        # Gather the touched cells' buckets and sorted-dedupe in plain
        # Python: neighbouring cells share edges, the hit counts are tiny,
        # and this stays O(hits log hits) regardless of total edge count.
        gathered = []
        for ci in range(int(low[0]), int(high[0]) + 1):
            for cj in range(int(low[1]), int(high[1]) + 1):
                bucket = self._cells.get((ci, cj))
                if bucket is not None:
                    gathered.extend(bucket)
        if not gathered:
            return np.empty(0, dtype=np.int64)
        return np.array(sorted(set(gathered)), dtype=np.int64)
