"""Length-bucketing policies for micro-batched path encoding.

Padding a mini-batch to its longest path wastes compute on every shorter
path.  A bucket policy groups paths of similar length so each micro-batch is
padded only to its own bucket's maximum, bounding the waste instead of paying
the worst case:

``"none"``
    No length grouping: paths are batched in arrival order.  This is the
    pre-serving behaviour and the baseline the benchmark compares against.
``"fixed"``
    Lengths are grouped into buckets of a fixed width ``w``: paths of length
    ``1..w`` share a bucket, ``w+1..2w`` the next, and so on.  Per-step
    padding waste is bounded by ``(w - 1) / length``.
``"pow2"``
    Bucket boundaries at powers of two (1, 2, 3–4, 5–8, 9–16, ...): padding
    waste is bounded by a factor of two while keeping the bucket count
    logarithmic in the maximum length.
``"exact"``
    One bucket per distinct length: zero padding, but the most
    micro-batches.  Best when the workload has few distinct lengths.

Every policy produces deterministic plans: bucket keys are visited in sorted
order and paths keep their relative order within a bucket, so serving results
are reproducible run to run.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "BucketPolicy",
    "SingleBucketPolicy",
    "FixedWidthBucketPolicy",
    "PowerOfTwoBucketPolicy",
    "ExactLengthBucketPolicy",
    "BUCKET_POLICIES",
    "get_bucket_policy",
]


class BucketPolicy:
    """Assign path lengths to buckets and plan micro-batches."""

    #: Registry name of the policy ("none", "fixed", ...).
    name = "base"

    def bucket_key(self, length):
        """Hashable bucket identifier for a path of ``length`` edges."""
        raise NotImplementedError

    def plan(self, lengths, max_batch_size):
        """Plan micro-batches over paths with the given lengths.

        Parameters
        ----------
        lengths:
            Sequence of path lengths (number of edges per path).
        max_batch_size:
            Upper bound on the number of paths per micro-batch.

        Returns
        -------
        List of 1-D ``int64`` index arrays into ``lengths``; every index
        appears in exactly one micro-batch.
        """
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        lengths = np.asarray(lengths, dtype=np.int64)
        buckets = {}
        for index, length in enumerate(lengths):
            buckets.setdefault(self.bucket_key(int(length)), []).append(index)
        batches = []
        for key in sorted(buckets):
            members = buckets[key]
            for start in range(0, len(members), max_batch_size):
                chunk = members[start:start + max_batch_size]
                batches.append(np.asarray(chunk, dtype=np.int64))
        return batches

    def describe(self):
        """Short human-readable description used in metrics scrapes."""
        return self.name


class SingleBucketPolicy(BucketPolicy):
    """No length grouping — arrival-order batching (the baseline)."""

    name = "none"

    def bucket_key(self, length):
        return 0

    def plan(self, lengths, max_batch_size):
        # Preserve arrival order exactly instead of sorting by bucket.
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        count = len(lengths)
        return [np.arange(start, min(start + max_batch_size, count), dtype=np.int64)
                for start in range(0, count, max_batch_size)]


class FixedWidthBucketPolicy(BucketPolicy):
    """Buckets of a fixed length width (default 8)."""

    name = "fixed"

    def __init__(self, width=8):
        width = int(width)
        if width < 1:
            raise ValueError("bucket width must be >= 1")
        self.width = width

    def bucket_key(self, length):
        return (length - 1) // self.width

    def describe(self):
        return f"fixed(width={self.width})"


class PowerOfTwoBucketPolicy(BucketPolicy):
    """Bucket boundaries at powers of two: 1, 2, 3-4, 5-8, 9-16, ..."""

    name = "pow2"

    def bucket_key(self, length):
        # ceil(log2(length)) via bit_length; length 1 -> 0, 2 -> 1, 3..4 -> 2.
        return (length - 1).bit_length()


class ExactLengthBucketPolicy(BucketPolicy):
    """One bucket per distinct path length — zero padding."""

    name = "exact"

    def bucket_key(self, length):
        return length


#: name -> policy class, for :func:`get_bucket_policy`.
BUCKET_POLICIES = {
    SingleBucketPolicy.name: SingleBucketPolicy,
    FixedWidthBucketPolicy.name: FixedWidthBucketPolicy,
    PowerOfTwoBucketPolicy.name: PowerOfTwoBucketPolicy,
    ExactLengthBucketPolicy.name: ExactLengthBucketPolicy,
}


def get_bucket_policy(policy, **kwargs):
    """Resolve a policy instance from a name or pass an instance through.

    ``get_bucket_policy("fixed", width=4)`` builds a fresh policy;
    ``get_bucket_policy(my_policy)`` returns ``my_policy`` unchanged (extra
    kwargs are rejected in that case).
    """
    if isinstance(policy, BucketPolicy):
        if kwargs:
            raise ValueError("cannot pass kwargs with a policy instance")
        return policy
    try:
        policy_cls = BUCKET_POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(BUCKET_POLICIES))
        raise ValueError(f"unknown bucket policy {policy!r} (known: {known})")
    return policy_cls(**kwargs)
