"""The batched path-embedding service.

:class:`PathEmbeddingService` fronts any representation model that exposes
``encode(list_of_temporal_paths) -> (N, D) array`` — a trained
:class:`~repro.core.model.WSCModel`, either path encoder, or any baseline
implementing :class:`~repro.baselines.base.RepresentationModel` — and serves
embeddings at batch granularity:

1. **Cache lookup.**  Each requested path is first looked up in an LRU cache
   keyed on ``(edge sequence, departure time)`` — exact by default, so a hit
   is always correct whatever the model's temporal granularity.  Models that
   only distinguish coarser time slots can widen the key with
   :func:`slot_cache_key` (or any custom ``cache_key_fn``) for a higher hit
   rate.
2. **Deduplication.**  With the cache enabled, misses are deduplicated
   within the request: the same temporal path requested twice is encoded
   once.  With the cache disabled every occurrence is encoded
   independently, so models whose embeddings are not a pure function of
   the key keep their semantics.
3. **Length-bucketed micro-batching.**  Remaining unique misses are grouped
   by a :class:`~repro.serving.bucketing.BucketPolicy` so each micro-batch
   is padded to its own bucket's maximum length instead of the global one.
4. **Metrics.**  Per-request latency, throughput, padding efficiency and
   cache counters are recorded in a
   :class:`~repro.serving.metrics.ServiceMetrics` and exposed via
   :meth:`PathEmbeddingService.scrape`.

The service is *bit-faithful*: whatever the bucket policy, batch size or
cache state, the returned matrix matches what one-at-a-time
``model.encode([tp])`` calls produce (see ``tests/serving/``).
"""

from __future__ import annotations

import inspect
import time

import numpy as np

from .bucketing import get_bucket_policy
from .cache import LRUEmbeddingCache
from .metrics import ServiceMetrics

__all__ = ["PathEmbeddingService", "default_cache_key", "slot_cache_key"]


def default_cache_key(temporal_path):
    """Cache key ``(edge sequence, exact departure time)`` for a temporal path.

    Keying on the exact ``(day of week, seconds)`` departure time never
    merges two requests a model could distinguish, whatever its temporal
    granularity — so the default is safe for any served model.  Repeated
    requests for the same temporal path (the common traffic pattern) still
    hit.  To additionally merge requests within one model time slot, pass
    ``cache_key_fn=slot_cache_key(model_slots_per_day)``.
    """
    departure = temporal_path.departure_time
    day = getattr(departure, "day_of_week", None)
    seconds = getattr(departure, "seconds", None)
    if day is None or seconds is None:
        return (temporal_path.path, repr(departure))
    return (temporal_path.path, int(day), float(seconds))


def slot_cache_key(slots_per_day):
    """Key factory merging departure times within one ``(day, slot)`` bucket.

    Safe whenever the served model consumes departure times at a granularity
    no finer than ``slots_per_day`` slots (e.g. pass the model's
    ``config.slots_per_day``); coarser keys than the model's own slots would
    serve wrong embeddings.
    """
    slots_per_day = int(slots_per_day)
    if slots_per_day < 1:
        raise ValueError("slots_per_day must be >= 1")
    seconds_per_slot = 86400.0 / slots_per_day

    def key(temporal_path):
        departure = temporal_path.departure_time
        slot = min(int(departure.seconds // seconds_per_slot), slots_per_day - 1)
        return (temporal_path.path,
                departure.day_of_week * slots_per_day + slot)

    return key


class PathEmbeddingService:
    """Serve path embeddings from a model with batching and caching.

    Parameters
    ----------
    model:
        Any object exposing ``encode(temporal_paths) -> (N, D) array``.
    bucket_policy:
        A :class:`~repro.serving.bucketing.BucketPolicy` instance or registry
        name (``"none"``, ``"fixed"``, ``"pow2"``, ``"exact"``).
    max_batch_size:
        Upper bound on paths per model micro-batch.
    cache_capacity:
        LRU capacity in entries; ignored when ``cache_enabled`` is False.
    cache_enabled:
        Disable to force every request through the model (benchmarking,
        or models whose embeddings are not a pure function of the key).
    cache_key_fn:
        Override the exact ``(edge sequence, departure time)`` key, e.g.
        :func:`slot_cache_key` for slot-granular models.
    """

    def __init__(self, model, bucket_policy="fixed", max_batch_size=64,
                 cache_capacity=4096, cache_enabled=True, cache_key_fn=None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.model = model
        self.bucket_policy = get_bucket_policy(bucket_policy)
        self.max_batch_size = int(max_batch_size)
        self.cache = LRUEmbeddingCache(cache_capacity) if cache_enabled else None
        self.cache_key_fn = cache_key_fn or default_cache_key
        self.metrics = ServiceMetrics()
        self._output_dim = None
        try:
            encode_params = inspect.signature(model.encode).parameters
            self._encode_accepts_batch_size = "batch_size" in encode_params
        except (TypeError, ValueError):
            self._encode_accepts_batch_size = False

    # ------------------------------------------------------------------
    @property
    def output_dim(self):
        """Embedding dimensionality, if known (None before the first batch)."""
        if self._output_dim is not None:
            return self._output_dim
        for attribute in ("representation_dim", "output_dim", "hidden_dim"):
            dim = getattr(self.model, attribute, None)
            if isinstance(dim, (int, np.integer)):
                self._output_dim = int(dim)
                return self._output_dim
        return None

    def _encode_batch(self, temporal_paths):
        """One model call; validates the result and records padding stats."""
        if self._encode_accepts_batch_size:
            # Encoders with an internal default batch_size (e.g. 64) would
            # otherwise re-chunk our micro-batch, invalidating the padding
            # stats and capping the effective batch below max_batch_size.
            raw = self.model.encode(temporal_paths,
                                    batch_size=len(temporal_paths))
        else:
            raw = self.model.encode(temporal_paths)
        embeddings = np.asarray(raw, dtype=np.float64)
        if embeddings.ndim != 2 or len(embeddings) != len(temporal_paths):
            raise ValueError(
                f"model returned shape {embeddings.shape} for "
                f"{len(temporal_paths)} paths")
        lengths = [len(tp) for tp in temporal_paths]
        self.metrics.record_batch(len(temporal_paths), max(lengths), sum(lengths))
        self._output_dim = embeddings.shape[1]
        return embeddings

    # ------------------------------------------------------------------
    def embed(self, temporal_paths):
        """Embeddings for ``temporal_paths`` as an ``(N, D)`` float64 matrix.

        Rows are in request order.  Equivalent to stacking one-at-a-time
        ``model.encode([tp])`` results, but batched, bucketed and cached.
        """
        temporal_paths = list(temporal_paths)
        started = time.perf_counter()
        count = len(temporal_paths)
        if count == 0:
            dim = self.output_dim or 0
            self.metrics.record_request(0, time.perf_counter() - started)
            return np.zeros((0, dim))

        rows = [None] * count
        # key -> list of request positions wanting that embedding.
        pending = {}
        pending_paths = []
        for position, path in enumerate(temporal_paths):
            if self.cache is None:
                # No cache: no dedup either, so every occurrence is encoded
                # independently (models need not be pure functions of the key).
                pending[position] = [position]
                pending_paths.append((position, path))
                continue
            key = self.cache_key_fn(path)
            cached = self.cache.get(key)
            if cached is not None:
                rows[position] = cached
            elif key in pending:
                pending[key].append(position)
            else:
                pending[key] = [position]
                pending_paths.append((key, path))

        if pending_paths:
            lengths = [len(path) for _, path in pending_paths]
            plan = self.bucket_policy.plan(lengths, self.max_batch_size)
            for batch_indices in plan:
                batch = [pending_paths[i] for i in batch_indices]
                embeddings = self._encode_batch([path for _, path in batch])
                for (key, _), embedding in zip(batch, embeddings):
                    if self.cache is not None:
                        self.cache.put(key, embedding)
                    for position in pending[key]:
                        rows[position] = embedding

        result = np.stack(rows, axis=0).astype(np.float64, copy=False)
        self.metrics.record_request(count, time.perf_counter() - started)
        return result

    # ------------------------------------------------------------------
    # RepresentationModel-compatible interface
    # ------------------------------------------------------------------
    def encode(self, temporal_paths):
        """Alias of :meth:`embed` (the downstream evaluators' interface)."""
        return self.embed(temporal_paths)

    def represent(self, temporal_path):
        """Embedding of a single temporal path as a 1-D array."""
        return self.embed([temporal_path])[0]

    # ------------------------------------------------------------------
    def scrape(self):
        """Metrics snapshot: throughput, latency, padding, cache and config."""
        cache_stats = self.cache.stats() if self.cache is not None else None
        scraped = self.metrics.scrape(cache_stats=cache_stats)
        scraped["bucket_policy"] = self.bucket_policy.describe()
        scraped["max_batch_size"] = self.max_batch_size
        scraped["cache_enabled"] = self.cache is not None
        return scraped

    def reset_metrics(self):
        """Zero serving metrics and cache counters (cache contents stay)."""
        self.metrics.reset()
        if self.cache is not None:
            self.cache.reset_stats()
