"""LRU cache for path embeddings.

The cache maps a hashable key — by default ``(edge sequence, departure
time)``, see :func:`repro.serving.service.default_cache_key` — to the
embedding vector the model computed for it.  Entries are stored as read-only copies and served
back as fresh copies, so neither the service nor its callers can corrupt a
cached value by mutating an array in place.

Eviction is least-recently-used: both hits and overwrites refresh an entry's
recency.  The cache keeps running ``hits`` / ``misses`` / ``evictions`` /
``inserts`` counters which :class:`~repro.serving.metrics.ServiceMetrics`
folds into its scrape output.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["LRUEmbeddingCache"]


class LRUEmbeddingCache:
    """A bounded mapping ``key -> embedding vector`` with LRU eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries; must be positive.  When a ``put`` would
        exceed it, the least recently used entry is evicted.
    """

    def __init__(self, capacity):
        capacity = int(capacity)
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, key):
        """Membership test; does not touch recency or counters."""
        return key in self._entries

    # ------------------------------------------------------------------
    def get(self, key):
        """Return a copy of the cached embedding, or ``None`` on a miss.

        A hit refreshes the entry's recency.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.copy()

    def put(self, key, embedding):
        """Store a copy of ``embedding`` under ``key``, evicting if full."""
        value = np.array(embedding, dtype=np.float64, copy=True)
        value.setflags(write=False)
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return
        self._entries[key] = value
        self.inserts += 1
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self):
        """Drop every entry; counters are preserved (use :meth:`reset_stats`)."""
        self._entries.clear()

    def reset_stats(self):
        """Zero the hit/miss/eviction/insert counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0

    # ------------------------------------------------------------------
    @property
    def hit_rate(self):
        """Fraction of lookups served from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self):
        """Counter snapshot as a plain dict (scrape-friendly)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "inserts": self.inserts,
            "hit_rate": self.hit_rate,
        }
