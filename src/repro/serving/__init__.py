"""Batched path-embedding serving layer (``repro.serving``).

This package turns a trained representation model into a serving component
sized for the ROADMAP's traffic goals.  It is the seam later scaling work
(sharding, async request handling, multiple model backends) plugs into.

Components
----------
:class:`PathEmbeddingService`
    Fronts any ``encode``-capable model with length-bucketed micro-batching,
    an LRU embedding cache and a metrics scrape, while remaining numerically
    faithful to one-at-a-time encoding.
:class:`LRUEmbeddingCache`
    Bounded ``(edge sequence, departure time) -> embedding`` store with
    hit/miss/eviction counters (widen the key per model with
    :func:`slot_cache_key`).
Bucket policies (``"none"``, ``"fixed"``, ``"pow2"``, ``"exact"``)
    Control how much padding waste micro-batches may carry; see
    :mod:`repro.serving.bucketing` for the trade-offs.
:class:`ServiceMetrics`
    Throughput, p50/p95 latency, padding efficiency and cache hit rate in
    one scrape dictionary.

Quick start::

    from repro.serving import PathEmbeddingService

    service = PathEmbeddingService(model, bucket_policy="fixed",
                                   max_batch_size=64, cache_capacity=4096)
    embeddings = service.embed(temporal_paths)   # (N, D), request order
    print(service.scrape())                      # metrics snapshot

``benchmarks/bench_serving_throughput.py`` measures the serving
configurations against per-path encoding and emits a run-table JSON
(schema documented in the repository README).
"""

from .bucketing import (
    BUCKET_POLICIES,
    BucketPolicy,
    ExactLengthBucketPolicy,
    FixedWidthBucketPolicy,
    PowerOfTwoBucketPolicy,
    SingleBucketPolicy,
    get_bucket_policy,
)
from .cache import LRUEmbeddingCache
from .metrics import ServiceMetrics
from .service import PathEmbeddingService, default_cache_key, slot_cache_key

__all__ = [
    "BUCKET_POLICIES",
    "BucketPolicy",
    "ExactLengthBucketPolicy",
    "FixedWidthBucketPolicy",
    "PowerOfTwoBucketPolicy",
    "SingleBucketPolicy",
    "get_bucket_policy",
    "LRUEmbeddingCache",
    "ServiceMetrics",
    "PathEmbeddingService",
    "default_cache_key",
    "slot_cache_key",
]
