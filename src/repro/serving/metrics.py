"""Serving metrics: throughput, latency percentiles and padding efficiency.

:class:`ServiceMetrics` follows the experiment-runner scrape idiom: the
service records raw observations (per-request latency and path counts,
per-micro-batch padding stats) and :meth:`ServiceMetrics.scrape` renders one
flat dictionary a monitoring loop or benchmark can collect.

Definitions
-----------
throughput
    Paths embedded per second of wall time spent inside ``embed`` calls.
latency p50 / p95
    Percentiles over the most recent per-request ``embed`` latencies
    (bounded window), in milliseconds.
padding efficiency
    ``real steps / padded steps`` over all model micro-batches: 1.0 means no
    wasted computation, 0.5 means half the encoder steps were padding.
cache hit rate
    Supplied by the cache at scrape time (see
    :class:`~repro.serving.cache.LRUEmbeddingCache`).
"""

from __future__ import annotations

from collections import deque

import numpy as np

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Accumulates serving observations and renders a scrape dictionary.

    Latency percentiles are computed over a bounded window of the most
    recent ``latency_window`` requests, so a long-lived service scrapes at
    constant cost and memory regardless of uptime; the counters and
    throughput cover the full lifetime.
    """

    def __init__(self, latency_window=4096):
        if latency_window < 1:
            raise ValueError("latency_window must be >= 1")
        self.latency_window = int(latency_window)
        self.reset()

    def reset(self):
        """Drop every recorded observation."""
        self.requests = 0
        self.paths_served = 0
        self.batches = 0
        self.real_steps = 0
        self.padded_steps = 0
        self.elapsed_seconds = 0.0
        self._latencies = deque(maxlen=self.latency_window)

    # ------------------------------------------------------------------
    def record_request(self, num_paths, elapsed_seconds):
        """Record one ``embed`` call serving ``num_paths`` paths."""
        self.requests += 1
        self.paths_served += int(num_paths)
        self.elapsed_seconds += float(elapsed_seconds)
        self._latencies.append(float(elapsed_seconds))

    def record_batch(self, num_paths, max_length, total_real_steps):
        """Record one model micro-batch padded to ``max_length`` steps."""
        self.batches += 1
        self.real_steps += int(total_real_steps)
        self.padded_steps += int(num_paths) * int(max_length)

    # ------------------------------------------------------------------
    @property
    def throughput(self):
        """Paths per second across all recorded requests."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.paths_served / self.elapsed_seconds

    @property
    def padding_efficiency(self):
        """real steps / padded steps in [0, 1]; 1.0 when nothing was padded."""
        if self.padded_steps == 0:
            return 1.0
        return self.real_steps / self.padded_steps

    def latency_percentile(self, percentile):
        """Recent-window latency percentile in ms (0.0 with no data)."""
        if not self._latencies:
            return 0.0
        return float(np.percentile(list(self._latencies), percentile)) * 1000.0

    # ------------------------------------------------------------------
    def scrape(self, cache_stats=None):
        """Render the metrics as one flat dictionary.

        ``cache_stats`` (the dict from ``LRUEmbeddingCache.stats()``) is
        merged in under the ``cache_`` prefix when provided.
        """
        scraped = {
            "requests": self.requests,
            "paths_served": self.paths_served,
            "batches": self.batches,
            "throughput_paths_per_s": self.throughput,
            "latency_p50_ms": self.latency_percentile(50),
            "latency_p95_ms": self.latency_percentile(95),
            "real_steps": self.real_steps,
            "padded_steps": self.padded_steps,
            "padding_efficiency": self.padding_efficiency,
        }
        if cache_stats is not None:
            scraped.update({f"cache_{key}": value
                            for key, value in cache_stats.items()})
        return scraped
