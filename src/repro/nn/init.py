"""Weight initialisation schemes for ``repro.nn`` layers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "uniform", "zeros", "orthogonal"]


def xavier_uniform(shape, rng, gain=1.0):
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape, rng, gain=1.0):
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def uniform(shape, rng, low=-0.1, high=0.1):
    """Plain uniform initialisation (used for embedding tables)."""
    return rng.uniform(low, high, size=shape)


def zeros(shape):
    """All-zero initialisation (biases)."""
    return np.zeros(shape)


def orthogonal(shape, rng, gain=1.0):
    """Orthogonal initialisation, recommended for recurrent weights."""
    if len(shape) < 2:
        raise ValueError("orthogonal initialisation needs at least 2 dimensions")
    rows, cols = shape[0], int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(rows, cols))
    q, r = np.linalg.qr(flat if rows >= cols else flat.T)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols].reshape(shape)


def _fans(shape):
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = shape[-1]
    fan_out = shape[-2]
    return fan_in, fan_out
