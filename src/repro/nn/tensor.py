"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the ``repro.nn`` package.  It provides a
:class:`Tensor` class that wraps a numpy array and records the operations
applied to it so that gradients can be propagated backwards through the
resulting computation graph — the same define-by-run model that PyTorch uses,
which the original WSCCL artifact depends on.

The engine intentionally supports only the operations the WSCCL pipeline and
its baselines need (dense linear algebra, element-wise math, reductions,
indexing, concatenation and stacking), but supports them with full
broadcasting semantics so that model code reads like idiomatic numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
]


_GRAD_ENABLED = [True]

#: Floating dtypes the engine supports.  float64 is the historical default
#: (and what the 1e-10 serving-equivalence suites rely on); float32 is the
#: training fast path's default, halving memory traffic per step.
_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_DEFAULT_DTYPE = [np.dtype(np.float64)]


def _canonical_dtype(dtype):
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported dtype {dtype!r}: expected one of "
            f"{[d.name for d in _SUPPORTED_DTYPES]}")
    return resolved


def set_default_dtype(dtype):
    """Set the dtype new tensors are created with; returns the previous one.

    Accepts ``np.float32`` / ``np.float64`` or their string names.  Tensors
    built from plain lists, scalars or integer arrays are cast to this dtype;
    float32/float64 numpy arrays keep their own dtype (per-tensor dtype), so a
    float64 model keeps computing in float64 even while the default is
    float32.
    """
    previous = _DEFAULT_DTYPE[0]
    _DEFAULT_DTYPE[0] = _canonical_dtype(dtype)
    return previous


def get_default_dtype():
    """The dtype currently used for new tensors (``np.dtype``)."""
    return _DEFAULT_DTYPE[0]


class default_dtype:
    """Context manager scoping :func:`set_default_dtype`.

    >>> with default_dtype("float32"):
    ...     model = build_model()   # float32 parameters
    """

    def __init__(self, dtype):
        self._dtype = _canonical_dtype(dtype)

    def __enter__(self):
        self._previous = set_default_dtype(self._dtype)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        set_default_dtype(self._previous)
        return False


class no_grad:
    """Context manager that disables gradient tracking.

    Used during evaluation and during expert inference in the curriculum
    stage, where building the autograd graph would only waste memory.
    """

    def __enter__(self):
        self._previous = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        _GRAD_ENABLED[0] = self._previous
        return False


def is_grad_enabled():
    """Return True when operations should record gradient information."""
    return _GRAD_ENABLED[0]


def _as_array(data, dtype=None):
    if dtype is None:
        # Per-tensor dtype: float32/float64 arrays (and numpy scalars, which
        # full reductions like ``arr.sum()`` produce) keep their own dtype so
        # mixed-precision graphs are possible; everything else (lists, python
        # scalars, integer arrays) is cast to the configurable default.
        if isinstance(data, (np.ndarray, np.generic)) and data.dtype in _SUPPORTED_DTYPES:
            return np.asarray(data)
        dtype = _DEFAULT_DTYPE[0]
    else:
        dtype = _canonical_dtype(dtype)
    if isinstance(data, np.ndarray) and data.dtype == dtype:
        return data
    return np.asarray(data, dtype=dtype)


def _sum_to_shape(grad, shape):
    """Reduce ``grad`` so that it has ``shape``.

    Inverse of numpy broadcasting: gradients flowing into a broadcast operand
    must be summed over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as the configurable default floating
        dtype (:func:`set_default_dtype`; float64 unless changed), except
        that float32/float64 numpy arrays keep their own dtype.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` when
        :meth:`backward` is called on a downstream tensor.
    dtype:
        Optional explicit dtype (``np.float32`` / ``np.float64``) overriding
        both the payload's dtype and the default.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data, requires_grad=False, _parents=(), _op="", dtype=None):
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad = None
        self._backward = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._op = _op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self):
        return self.transpose()

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    def numpy(self):
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self):
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data)

    def detach(self):
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def astype(self, dtype):
        """Differentiable dtype cast; gradients are cast back on the way in."""
        dtype = _canonical_dtype(dtype)
        if dtype == self.data.dtype:
            return self
        out_data = self.data.astype(dtype)
        source_dtype = self.data.dtype

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.astype(source_dtype))

        return self._make_result(out_data, (self,), backward, "astype")

    def zero_grad(self):
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ensure(other, dtype=None):
        if isinstance(other, Tensor):
            return other
        if dtype is not None and not isinstance(other, np.ndarray):
            # Python scalars/lists adopt the companion operand's dtype so a
            # float32 graph is not upcast by `x * 0.5`-style constants when
            # the global default is float64.
            return Tensor(other, dtype=dtype)
        return Tensor(other)

    def _make_result(self, data, parents, backward, op):
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else (), _op=op)
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad):
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad = self.grad + grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = self._ensure(other, dtype=self.data.dtype)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_sum_to_shape(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_sum_to_shape(grad, other.shape))

        return self._make_result(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other):
        other = self._ensure(other, dtype=self.data.dtype)
        out_data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_sum_to_shape(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_sum_to_shape(-grad, other.shape))

        return self._make_result(out_data, (self, other), backward, "sub")

    def __rsub__(self, other):
        return self._ensure(other, dtype=self.data.dtype).__sub__(self)

    def __mul__(self, other):
        other = self._ensure(other, dtype=self.data.dtype)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_sum_to_shape(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_sum_to_shape(grad * self.data, other.shape))

        return self._make_result(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._ensure(other, dtype=self.data.dtype)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_sum_to_shape(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _sum_to_shape(-grad * self.data / (other.data ** 2), other.shape)
                )

        return self._make_result(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other):
        return self._ensure(other, dtype=self.data.dtype).__truediv__(self)

    def __neg__(self):
        out_data = -self.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make_result(out_data, (self,), backward, "neg")

    def __pow__(self, exponent):
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_result(out_data, (self,), backward, "pow")

    def __matmul__(self, other):
        other = self._ensure(other, dtype=self.data.dtype)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_sum_to_shape(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad)
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_sum_to_shape(grad_other, other.shape))

        return self._make_result(out_data, (self, other), backward, "matmul")

    # ------------------------------------------------------------------
    # Element-wise functions
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make_result(out_data, (self,), backward, "exp")

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make_result(out_data, (self,), backward, "log")

    def sqrt(self):
        return self ** 0.5

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make_result(out_data, (self,), backward, "tanh")

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make_result(out_data, (self,), backward, "sigmoid")

    def relu(self):
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_result(out_data, (self,), backward, "relu")

    def clip(self, low, high):
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_result(out_data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make_result(out_data, (self,), backward, "sum")

    def mean(self, axis=None, keepdims=False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims=False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * g)

        return self._make_result(out_data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return self._make_result(out_data, (self,), backward, "reshape")

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make_result(out_data, (self,), backward, "transpose")

    def __getitem__(self, index):
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make_result(out_data, (self,), backward, "getitem")

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(tensors, axis=0):
        tensors = [Tensor._ensure(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad):
            start = 0
            for tensor, size in zip(tensors, sizes):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, start + size)
                    tensor._accumulate(grad[tuple(slicer)])
                start += size

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires,
                     _parents=tuple(tensors) if requires else (), _op="concat")
        if requires:
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors, axis=0):
        tensors = [Tensor._ensure(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            moved = np.moveaxis(grad, axis, 0)
            for tensor, g in zip(tensors, moved):
                if tensor.requires_grad:
                    tensor._accumulate(g)

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires,
                     _parents=tuple(tensors) if requires else (), _op="stack")
        if requires:
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None):
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to 1 for scalar tensors, matching PyTorch.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)

        # Topological ordering of the graph reachable from self.
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
