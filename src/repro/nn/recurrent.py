"""Recurrent layers: LSTM and GRU.

The WSCCL temporal path encoder (paper §IV-C, Eq. 7) feeds the concatenated
spatio-temporal edge features into a (possibly multi-layer) LSTM; the
PathRank baseline uses a GRU.  Both are implemented here on top of the
autograd engine, processing sequences of shape ``(batch, time, features)``.
"""

from __future__ import annotations

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["LSTMCell", "LSTM", "GRUCell", "GRU"]


class LSTMCell(Module):
    """A single LSTM cell with the standard i/f/g/o gate parameterisation."""

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gates stacked as [input, forget, cell, output] along the first axis.
        self.weight_ih = Parameter(init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(init.orthogonal((4 * hidden_size, hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        # Forget-gate bias of 1.0 is the usual trick for gradient flow.
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x, state):
        """One step.  ``x`` is (batch, input_size); ``state`` is ``(h, c)``."""
        h_prev, c_prev = state
        x = x if isinstance(x, Tensor) else Tensor(x)
        gates = x @ self.weight_ih.transpose() + h_prev @ self.weight_hh.transpose() + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch_size):
        """Zero hidden and cell state."""
        dtype = self.weight_hh.data.dtype
        zeros = Tensor(np.zeros((batch_size, self.hidden_size), dtype=dtype))
        return zeros, Tensor(np.zeros((batch_size, self.hidden_size), dtype=dtype))


class LSTM(Module):
    """Multi-layer LSTM over ``(batch, time, features)`` sequences."""

    def __init__(self, input_size, hidden_size, num_layers=1, rng=None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self._cell_names = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            name = f"cell{layer}"
            setattr(self, name, LSTMCell(in_size, hidden_size, rng=rng))
            self._cell_names.append(name)

    def forward(self, x, mask=None):
        """Run the LSTM over a batch of sequences.

        Parameters
        ----------
        x:
            Tensor of shape ``(batch, time, features)``.
        mask:
            Optional numpy array of shape ``(batch, time)`` with 1 on valid
            steps and 0 on padding.  Padded steps carry the previous state
            forward so variable-length paths can share a batch.

        Returns
        -------
        outputs:
            Tensor of shape ``(batch, time, hidden_size)`` — the top layer's
            hidden state at every step (the paper's spatio-temporal edge
            representations).
        final_hidden:
            Tensor of shape ``(batch, hidden_size)`` — the top layer's final
            valid hidden state.
        """
        x = x if isinstance(x, Tensor) else Tensor(x)
        batch, time_steps, _ = x.shape
        mask_array = None if mask is None else np.asarray(mask, dtype=x.data.dtype)

        layer_input_steps = [x[:, t, :] for t in range(time_steps)]
        for name in self._cell_names:
            cell = getattr(self, name)
            h, c = cell.initial_state(batch)
            step_outputs = []
            for t, step in enumerate(layer_input_steps):
                h_new, c_new = cell(step, (h, c))
                if mask_array is not None:
                    keep = Tensor(mask_array[:, t:t + 1])
                    h = h_new * keep + h * (1.0 - keep)
                    c = c_new * keep + c * (1.0 - keep)
                else:
                    h, c = h_new, c_new
                step_outputs.append(h)
            layer_input_steps = step_outputs

        outputs = Tensor.stack(layer_input_steps, axis=1)
        final_hidden = layer_input_steps[-1]
        return outputs, final_hidden


class GRUCell(Module):
    """A single GRU cell (update/reset/new gates)."""

    def __init__(self, input_size, hidden_size, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((3 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(init.orthogonal((3 * hidden_size, hidden_size), rng))
        self.bias_ih = Parameter(np.zeros(3 * hidden_size))
        self.bias_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x, h_prev):
        x = x if isinstance(x, Tensor) else Tensor(x)
        hs = self.hidden_size
        gi = x @ self.weight_ih.transpose() + self.bias_ih
        gh = h_prev @ self.weight_hh.transpose() + self.bias_hh
        reset = (gi[:, 0:hs] + gh[:, 0:hs]).sigmoid()
        update = (gi[:, hs:2 * hs] + gh[:, hs:2 * hs]).sigmoid()
        new = (gi[:, 2 * hs:3 * hs] + reset * gh[:, 2 * hs:3 * hs]).tanh()
        return update * h_prev + (1.0 - update) * new

    def initial_state(self, batch_size):
        dtype = self.weight_hh.data.dtype
        return Tensor(np.zeros((batch_size, self.hidden_size), dtype=dtype))


class GRU(Module):
    """Multi-layer GRU over ``(batch, time, features)`` sequences."""

    def __init__(self, input_size, hidden_size, num_layers=1, rng=None):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self._cell_names = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            name = f"cell{layer}"
            setattr(self, name, GRUCell(in_size, hidden_size, rng=rng))
            self._cell_names.append(name)

    def forward(self, x, mask=None):
        """Same calling convention as :class:`LSTM`."""
        x = x if isinstance(x, Tensor) else Tensor(x)
        batch, time_steps, _ = x.shape
        mask_array = None if mask is None else np.asarray(mask, dtype=x.data.dtype)

        layer_input_steps = [x[:, t, :] for t in range(time_steps)]
        for name in self._cell_names:
            cell = getattr(self, name)
            h = cell.initial_state(batch)
            step_outputs = []
            for t, step in enumerate(layer_input_steps):
                h_new = cell(step, h)
                if mask_array is not None:
                    keep = Tensor(mask_array[:, t:t + 1])
                    h = h_new * keep + h * (1.0 - keep)
                else:
                    h = h_new
                step_outputs.append(h)
            layer_input_steps = step_outputs

        outputs = Tensor.stack(layer_input_steps, axis=1)
        return outputs, layer_input_steps[-1]
