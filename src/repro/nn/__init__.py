"""Minimal neural-network substrate (numpy autograd) used by WSCCL.

This package substitutes for PyTorch in the original artifact.  See
``DESIGN.md`` for the substitution rationale.
"""

from . import functional
from .init import orthogonal, uniform, xavier_normal, xavier_uniform, zeros
from .layers import Dropout, Embedding, LayerNorm, Linear, ReLU, Sigmoid, Tanh
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .recurrent import GRU, GRUCell, LSTM, LSTMCell
from .tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    no_grad,
    set_default_dtype,
)

__all__ = [
    "Tensor",
    "no_grad",
    "set_default_dtype",
    "get_default_dtype",
    "default_dtype",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "Dropout",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LayerNorm",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "functional",
    "xavier_uniform",
    "xavier_normal",
    "orthogonal",
    "uniform",
    "zeros",
]
