"""Feed-forward layers used across WSCCL and its baselines."""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "Dropout", "ReLU", "Tanh", "Sigmoid", "LayerNorm"]


class Linear(Module):
    """Affine transformation ``y = x W^T + b``."""

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used for the paper's spatial feature embeddings (road type, number of
    lanes, one-way flag, traffic signals) in Eq. 3.
    """

    def __init__(self, num_embeddings, embedding_dim, rng=None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.xavier_normal((num_embeddings, embedding_dim), rng))

    def forward(self, indices):
        indices = np.asarray(indices, dtype=np.int64)
        if indices.min(initial=0) < 0 or (indices.size and indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}) : "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight[indices]


class Dropout(Module):
    """Inverted dropout layer; identity in eval mode."""

    def __init__(self, rate=0.1, rng=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x):
        return F.dropout(x, self.rate, self.training, rng=self._rng)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        return x.tanh()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        return x.sigmoid()


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape, eps=1e-5):
        super().__init__()
        self.eps = eps
        self.normalized_shape = normalized_shape
        self.weight = Parameter(np.ones((normalized_shape,)))
        self.bias = Parameter(np.zeros((normalized_shape,)))

    def forward(self, x):
        x = x if isinstance(x, Tensor) else Tensor(x)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / ((var + self.eps) ** 0.5)
        return normalised * self.weight + self.bias
