"""Module / Parameter abstractions, mirroring ``torch.nn.Module``.

Modules own parameters and sub-modules, expose ``parameters()`` for
optimisers, support train/eval mode switching, and can export or load their
state as plain numpy arrays — which is how the WSCCL curriculum stage clones
expert models and how pre-trained encoders are transplanted into PathRank.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by ``Module``.

    Parameters are always materialised in the configurable default dtype
    (``nn.set_default_dtype``) unless an explicit ``dtype`` is given, so a
    model built inside ``nn.default_dtype("float32")`` really is a float32
    model even though initialisers hand back float64 arrays.
    """

    def __init__(self, data, dtype=None):
        from .tensor import get_default_dtype

        super().__init__(data, requires_grad=True,
                         dtype=dtype or get_default_dtype())


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        self._parameters = OrderedDict()
        self._modules = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self):
        """Yield every trainable parameter of this module and its children."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix=""):
        """Yield ``(name, parameter)`` pairs with dotted paths."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def num_parameters(self):
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self):
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode=True):
        """Switch this module (and children) between train and eval mode."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self):
        """Shortcut for ``train(False)``."""
        return self.train(False)

    # ------------------------------------------------------------------
    # State serialisation
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return a name → numpy array copy of every parameter."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state):
        """Load parameter values from :meth:`state_dict` output.

        Raises ``KeyError`` if a parameter is missing and ``ValueError`` on a
        shape mismatch, so silent corruption cannot occur.
        """
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter in state dict: {name}")
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()
        return self

    def clone(self):
        """Deep-copy this module by rebuilding from its own state dict."""
        import copy

        duplicate = copy.deepcopy(self)
        return duplicate

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run sub-modules in order, feeding each output to the next module."""

    def __init__(self, *modules):
        super().__init__()
        self._order = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self):
        return len(self._order)
