"""Gradient-descent optimisers: SGD (with momentum) and Adam.

The paper trains WSCCL with Adam at learning rate 3e-4; Adam is therefore the
default everywhere in ``repro.core``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which training loops can log.
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in parameters:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self):
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self):
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba)."""

    def __init__(self, parameters, lr=3e-4, betas=(0.9, 0.999), eps=1e-8, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step
        bias_correction2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
