"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These mirror the subset of ``torch.nn.functional`` that the WSCCL model and
its baselines use: softmax, log-softmax, cosine similarity, common losses and
a handful of numerically-stable helpers used by the contrastive objectives.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "EXCLUDED_BIAS",
    "softmax",
    "masked_softmax",
    "log_softmax",
    "cosine_similarity",
    "mse_loss",
    "mae_loss",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "logsumexp",
    "dropout",
    "normalize",
]


#: Additive bias that excludes a position from a softmax or log-sum-exp:
#: after the max-shift, ``exp(x - 1e9 - max)`` underflows to exactly 0 in
#: both float32 and float64, so excluded entries contribute neither value
#: nor gradient.  Shared by :func:`masked_softmax`, the attention mask bias
#: and the contrastive losses' masked reductions.
EXCLUDED_BIAS = -1e9


def softmax(x, axis=-1):
    """Numerically stable softmax along ``axis``."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def masked_softmax(x, mask_bias=None, axis=-1):
    """Fused ``softmax(x + mask_bias)`` with a single autograd node.

    ``mask_bias`` is a *constant* additive bias (numpy array broadcastable to
    ``x``, e.g. ``(B, 1, 1, T)`` against ``(B, H, T, T)`` attention scores)
    holding 0 on valid positions and a large negative value on masked ones.
    Because the bias carries no gradient and the softmax Jacobian is applied
    in closed form (``y * (g - sum(g * y))``), this op records one graph node
    instead of the five that ``softmax(x + Tensor(bias))`` would, which is
    what makes it the attention fast path's inner loop.
    """
    x = x if isinstance(x, Tensor) else Tensor(x)
    scores = x.data if mask_bias is None else x.data + np.asarray(mask_bias, dtype=x.data.dtype)
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad):
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

    return x._make_result(out_data, (x,), backward, "masked_softmax")


def log_softmax(x, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def logsumexp(x, axis=-1, keepdims=False):
    """Stable log-sum-exp used by the contrastive denominators."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    maxes = Tensor(x.data.max(axis=axis, keepdims=True))
    out = (x - maxes).exp().sum(axis=axis, keepdims=True).log() + maxes
    if not keepdims:
        out = out.reshape(tuple(s for i, s in enumerate(out.shape) if i != (axis % x.ndim)))
    return out


def normalize(x, axis=-1, eps=1e-12):
    """L2-normalise ``x`` along ``axis``."""
    x = x if isinstance(x, Tensor) else Tensor(x)
    norm = (x * x).sum(axis=axis, keepdims=True) ** 0.5
    return x / (norm + eps)


def cosine_similarity(a, b, axis=-1, eps=1e-12):
    """Cosine similarity between two tensors along ``axis``.

    This is the ``sim``/``s`` function of the paper's Eq. 10 and Eq. 11.
    """
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    dot = (a * b).sum(axis=axis)
    norm_a = ((a * a).sum(axis=axis) + eps) ** 0.5
    norm_b = ((b * b).sum(axis=axis) + eps) ** 0.5
    return dot / (norm_a * norm_b)


def mse_loss(prediction, target):
    """Mean squared error."""
    prediction = prediction if isinstance(prediction, Tensor) else Tensor(prediction)
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def mae_loss(prediction, target):
    """Mean absolute error implemented with a smooth |x| ~ sqrt(x^2 + eps)."""
    prediction = prediction if isinstance(prediction, Tensor) else Tensor(prediction)
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target
    return ((diff * diff + 1e-12) ** 0.5).mean()


def binary_cross_entropy_with_logits(logits, targets):
    """BCE on raw logits, stable for large magnitudes."""
    logits = logits if isinstance(logits, Tensor) else Tensor(logits)
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x*y
    abs_neg = Tensor(-np.abs(logits.data))
    log_term = (abs_neg.exp() + 1.0).log()
    relu_term = logits.relu()
    return (log_term + relu_term - logits * targets).mean()


def cross_entropy(logits, target_indices):
    """Categorical cross-entropy given integer class targets."""
    logits = logits if isinstance(logits, Tensor) else Tensor(logits)
    target_indices = np.asarray(target_indices, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    rows = np.arange(len(target_indices))
    picked = log_probs[rows, target_indices]
    return -picked.mean()


def dropout(x, rate, training, rng=None):
    """Inverted dropout.  A no-op when ``training`` is False or ``rate`` == 0."""
    if not training or rate <= 0.0:
        return x if isinstance(x, Tensor) else Tensor(x)
    x = x if isinstance(x, Tensor) else Tensor(x)
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= rate).astype(x.data.dtype) / (1.0 - rate)
    return x * Tensor(mask)
