"""HMM map matching (Newson & Krumm, SIGSPATIAL 2009).

The paper's data pipeline map-matches raw GPS trajectories onto the road
network before extracting paths.  This module implements the standard hidden
Markov model formulation: candidate edges per GPS point weighted by a
Gaussian emission on the perpendicular distance, transitions weighted by how
well the network distance between candidates agrees with the great-circle
distance between fixes, decoded with Viterbi.
"""

from __future__ import annotations

import numpy as np

from ..roadnet.search import shortest_path

__all__ = ["HMMMapMatcher"]


class HMMMapMatcher:
    """Match GPS trajectories onto a road network.

    Parameters
    ----------
    network:
        The :class:`~repro.roadnet.network.RoadNetwork` to match onto.
    emission_sigma:
        Standard deviation (metres) of GPS noise for the emission model.
    transition_beta:
        Scale (metres) of the exponential transition model.
    candidate_radius:
        Only edges whose segment lies within this distance of a fix are
        considered as candidates.
    max_candidates:
        Cap on candidates per point (closest first), bounding Viterbi cost.
    """

    def __init__(self, network, emission_sigma=15.0, transition_beta=30.0,
                 candidate_radius=120.0, max_candidates=6):
        if emission_sigma <= 0 or transition_beta <= 0:
            raise ValueError("emission_sigma and transition_beta must be positive")
        self.network = network
        self.emission_sigma = emission_sigma
        self.transition_beta = transition_beta
        self.candidate_radius = candidate_radius
        self.max_candidates = max_candidates
        self._segments = self._build_segment_index()

    # ------------------------------------------------------------------
    def _build_segment_index(self):
        """Pre-compute segment endpoints for distance queries."""
        starts = np.zeros((self.network.num_edges, 2))
        ends = np.zeros((self.network.num_edges, 2))
        for edge in range(self.network.num_edges):
            source, target = self.network.edge_endpoints(edge)
            starts[edge] = self.network.node_coordinates(source)
            ends[edge] = self.network.node_coordinates(target)
        return starts, ends

    def _point_to_edges_distance(self, point):
        """Perpendicular distance from ``point`` to every edge segment."""
        starts, ends = self._segments
        point = np.asarray(point, dtype=np.float64)
        direction = ends - starts
        length_sq = np.maximum((direction ** 2).sum(axis=1), 1e-9)
        t = np.clip(((point - starts) * direction).sum(axis=1) / length_sq, 0.0, 1.0)
        projection = starts + t[:, None] * direction
        return np.sqrt(((projection - point) ** 2).sum(axis=1))

    def _candidates(self, point):
        """Closest candidate edges within the search radius."""
        distances = self._point_to_edges_distance(point)
        order = np.argsort(distances)
        selected = [int(e) for e in order[:self.max_candidates]
                    if distances[e] <= self.candidate_radius]
        if not selected:
            # Fall back to the single closest edge so matching never fails.
            selected = [int(order[0])]
        return selected, distances

    # ------------------------------------------------------------------
    def _emission_log_prob(self, distance):
        sigma = self.emission_sigma
        return -0.5 * (distance / sigma) ** 2 - np.log(sigma * np.sqrt(2 * np.pi))

    def _transition_log_prob(self, edge_a, edge_b, straight_distance):
        """Transition likelihood between consecutive candidate edges."""
        if edge_a == edge_b:
            network_distance = 0.0
        else:
            target_a = self.network.edge_endpoints(edge_a)[1]
            source_b = self.network.edge_endpoints(edge_b)[0]
            if target_a == source_b:
                network_distance = 0.0
            else:
                connecting = shortest_path(
                    self.network, target_a, source_b,
                    edge_cost=self.network.edge_length,
                )
                if connecting is None:
                    return -np.inf
                network_distance = sum(self.network.edge_length(e) for e in connecting)
        difference = abs(network_distance - straight_distance)
        return -difference / self.transition_beta

    # ------------------------------------------------------------------
    def match(self, trajectory):
        """Return the most likely edge path for a :class:`GPSTrajectory`.

        The Viterbi-decoded candidate sequence is stitched into a connected
        path by inserting shortest-path segments between consecutive matched
        edges.
        """
        positions = trajectory.positions()
        if len(positions) == 0:
            return []

        candidate_sets = []
        emission_scores = []
        for point in positions:
            candidates, distances = self._candidates(point)
            candidate_sets.append(candidates)
            emission_scores.append(
                np.array([self._emission_log_prob(distances[c]) for c in candidates])
            )

        # Viterbi decoding.
        scores = [emission_scores[0]]
        back_pointers = [np.zeros(len(candidate_sets[0]), dtype=np.int64)]
        for step in range(1, len(positions)):
            straight = float(np.linalg.norm(positions[step] - positions[step - 1]))
            previous_scores = scores[-1]
            current_candidates = candidate_sets[step]
            step_scores = np.full(len(current_candidates), -np.inf)
            pointers = np.zeros(len(current_candidates), dtype=np.int64)
            for j, candidate in enumerate(current_candidates):
                best_value = -np.inf
                best_index = 0
                for i, previous in enumerate(candidate_sets[step - 1]):
                    transition = self._transition_log_prob(previous, candidate, straight)
                    value = previous_scores[i] + transition
                    if value > best_value:
                        best_value = value
                        best_index = i
                step_scores[j] = best_value + emission_scores[step][j]
                pointers[j] = best_index
            scores.append(step_scores)
            back_pointers.append(pointers)

        # Backtrack.
        matched_edges = []
        index = int(np.argmax(scores[-1]))
        for step in range(len(positions) - 1, -1, -1):
            matched_edges.append(candidate_sets[step][index])
            index = int(back_pointers[step][index])
        matched_edges.reverse()

        return self._stitch(matched_edges)

    def _stitch(self, matched_edges):
        """Turn the per-point edge sequence into a connected, de-duplicated path."""
        path = []
        for edge in matched_edges:
            if path and path[-1] == edge:
                continue
            if not path:
                path.append(edge)
                continue
            previous_target = self.network.edge_endpoints(path[-1])[1]
            current_source = self.network.edge_endpoints(edge)[0]
            if previous_target != current_source:
                connector = shortest_path(
                    self.network, previous_target, current_source,
                    edge_cost=self.network.edge_length,
                )
                if connector is None:
                    # Unreachable: keep the longest consistent prefix.
                    continue
                for connecting_edge in connector:
                    if not path or path[-1] != connecting_edge:
                        path.append(connecting_edge)
            if not path or path[-1] != edge:
                path.append(edge)
        return path
