"""HMM map matching (Newson & Krumm, SIGSPATIAL 2009).

The paper's data pipeline map-matches raw GPS trajectories onto the road
network before extracting paths.  This module implements the standard hidden
Markov model formulation: candidate edges per GPS point weighted by a
Gaussian emission on the perpendicular distance, transitions weighted by how
well the *driving* distance between the candidates' projection points agrees
with the great-circle distance between fixes, decoded with Viterbi.  When a
step has no reachable transition at all, decoding restarts from that fix
(Newson & Krumm's HMM break) instead of stitching disconnected garbage.

Two engines share the model exactly:

* ``impl="reference"`` — the original per-point/per-pair Python loops: a
  full segment-distance scan per fix and one fresh Dijkstra per candidate
  pair per Viterbi step;
* ``impl="vectorized"`` — candidate generation becomes one batched
  segment-distance computation over grid-pruned ``(fix, edge)`` pairs
  (:class:`~repro.roadnet.spatial_index.SegmentGridIndex`), transition
  pricing reuses a resumable multi-target Dijkstra per unique source node
  (:class:`~repro.roadnet.search.DijkstraCache`, shared across steps and
  across a :meth:`HMMMapMatcher.match_batch`), and decoding is matrix-form
  Viterbi (one ``(K, K)`` transition matrix and one vectorized max per
  step).

Both engines decode bit-identical paths; the vectorized one is just faster.
"""

from __future__ import annotations

import numpy as np

from ..roadnet.search import DijkstraCache, shortest_path
from ..roadnet.spatial_index import SegmentGridIndex

__all__ = ["HMMMapMatcher"]


def _project_points_onto_segments(points, starts, ends):
    """Distance and projection fraction from points to segments, row-wise.

    ``points`` broadcasts against ``starts``/``ends``: one point against all
    segments, or row-paired arrays.  Both matcher engines go through this
    single helper, so candidate distances are bit-identical by construction.
    """
    direction = ends - starts
    length_sq = np.maximum((direction ** 2).sum(axis=1), 1e-9)
    t = np.clip(((points - starts) * direction).sum(axis=1) / length_sq, 0.0, 1.0)
    projection = starts + t[:, None] * direction
    return np.sqrt(((projection - points) ** 2).sum(axis=1)), t


class HMMMapMatcher:
    """Match GPS trajectories onto a road network.

    Parameters
    ----------
    network:
        The :class:`~repro.roadnet.network.RoadNetwork` to match onto.
    emission_sigma:
        Standard deviation (metres) of GPS noise for the emission model.
    transition_beta:
        Scale (metres) of the exponential transition model.
    candidate_radius:
        Only edges whose segment lies within this distance of a fix are
        considered as candidates.
    max_candidates:
        Cap on candidates per point (closest first), bounding Viterbi cost.
    impl:
        ``"vectorized"`` (default) or ``"reference"``; see the module
        docstring.  Decoded paths are identical across impls.
    grid_cell_size:
        Cell size (metres) of the candidate-generation spatial index used by
        the vectorized engine; defaults to ``candidate_radius``.
    cache_sources:
        Capacity of the LRU Dijkstra cache used for transition pricing.
    """

    def __init__(self, network, emission_sigma=15.0, transition_beta=30.0,
                 candidate_radius=120.0, max_candidates=6, impl="vectorized",
                 grid_cell_size=None, cache_sources=4096):
        if emission_sigma <= 0 or transition_beta <= 0:
            raise ValueError("emission_sigma and transition_beta must be positive")
        if impl not in ("reference", "vectorized"):
            raise ValueError(
                f"impl must be 'reference' or 'vectorized', got {impl!r}")
        self.network = network
        self.emission_sigma = emission_sigma
        self.transition_beta = transition_beta
        self.candidate_radius = candidate_radius
        self.max_candidates = max_candidates
        self.impl = impl
        self.grid_cell_size = float(candidate_radius if grid_cell_size is None
                                    else grid_cell_size)
        if self.grid_cell_size <= 0:
            raise ValueError("grid_cell_size must be positive")
        self.cache_sources = cache_sources
        self._segments = self._build_segment_index()
        self._lengths = np.array([network.edge_length(e)
                                  for e in range(network.num_edges)])
        endpoints = np.array([network.edge_endpoints(e)
                              for e in range(network.num_edges)],
                             dtype=np.int64).reshape(network.num_edges, 2)
        self._edge_sources = endpoints[:, 0]
        self._edge_targets = endpoints[:, 1]
        self._grid = None
        self._dijkstra = None

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _build_segment_index(self):
        """Pre-compute segment endpoints for distance queries."""
        starts = np.zeros((self.network.num_edges, 2))
        ends = np.zeros((self.network.num_edges, 2))
        for edge in range(self.network.num_edges):
            source, target = self.network.edge_endpoints(edge)
            starts[edge] = self.network.node_coordinates(source)
            ends[edge] = self.network.node_coordinates(target)
        return starts, ends

    @property
    def grid_index(self):
        """The lazily built :class:`SegmentGridIndex` over edge segments."""
        if self._grid is None:
            starts, ends = self._segments
            self._grid = SegmentGridIndex(starts, ends, self.grid_cell_size)
        return self._grid

    @property
    def dijkstra_cache(self):
        """The lazily built LRU transition-distance cache (length cost)."""
        if self._dijkstra is None:
            self._dijkstra = DijkstraCache(
                self.network, edge_cost=self.network.edge_length,
                max_sources=self.cache_sources)
        return self._dijkstra

    def _segment_distances(self, point):
        """Distance and projection fraction from ``point`` to every segment."""
        starts, ends = self._segments
        point = np.asarray(point, dtype=np.float64)
        return _project_points_onto_segments(point, starts, ends)

    def _point_to_edges_distance(self, point):
        """Perpendicular distance from ``point`` to every edge segment."""
        return self._segment_distances(point)[0]

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def _reference_candidates(self, point):
        """Closest candidate edges within the search radius (full scan).

        Returns ``(edges, distances, fractions)`` arrays for the selected
        candidates; the projection fraction locates each fix's match point
        along its candidate edge for the transition model.
        """
        distances, fractions = self._segment_distances(point)
        order = np.argsort(distances, kind="stable")
        selected = [int(e) for e in order[:self.max_candidates]
                    if distances[e] <= self.candidate_radius]
        if not selected:
            # Fall back to the single closest edge so matching never fails.
            selected = [int(order[0])]
        edges = np.array(selected, dtype=np.int64)
        return edges, distances[edges], fractions[edges]

    def _reference_candidate_sets(self, positions):
        """Per-fix candidates via the original full-scan loop."""
        candidate_sets, fraction_sets, emission_sets = [], [], []
        for point in positions:
            edges, distances, fractions = self._reference_candidates(point)
            candidate_sets.append(edges)
            fraction_sets.append(fractions)
            emission_sets.append(
                np.array([self._emission_log_prob(d) for d in distances])
            )
        return candidate_sets, fraction_sets, emission_sets

    def _vectorized_candidate_sets(self, positions):
        """Per-fix candidates via one batched grid-pruned distance pass.

        The grid query returns a superset of the edges within
        ``candidate_radius`` of each fix, so the exact distances computed on
        the pruned pairs select exactly the candidates of the full scan.
        """
        grid = self.grid_index
        radius = self.candidate_radius
        per_point = [grid.query(point, radius) for point in positions]
        counts = np.array([len(edges) for edges in per_point], dtype=np.int64)

        if counts.sum():
            flat_edges = np.concatenate(
                [edges for edges in per_point if len(edges)])
            point_rows = np.repeat(np.arange(len(positions)), counts)
            starts, ends = self._segments
            flat_distances, t = _project_points_onto_segments(
                positions[point_rows], starts[flat_edges], ends[flat_edges])
        else:
            flat_edges = np.empty(0, dtype=np.int64)
            flat_distances = t = np.empty(0)
        offsets = np.concatenate(([0], np.cumsum(counts)))

        candidate_sets, fraction_sets, emission_sets = [], [], []
        for index, point in enumerate(positions):
            low, high = offsets[index], offsets[index + 1]
            sub_distances = flat_distances[low:high]
            within = sub_distances <= radius
            if within.any():
                sub_distances = sub_distances[within]
                sub_edges = flat_edges[low:high][within]
                sub_fractions = t[low:high][within]
                # Stable sort over ascending edge ids ties exactly like the
                # reference's stable argsort over the full distance vector.
                order = np.argsort(sub_distances, kind="stable")[:self.max_candidates]
                edges = sub_edges[order]
                distances = sub_distances[order]
                fractions = sub_fractions[order]
            else:
                # Nothing within the radius (or no grid cell hit): fall back
                # to the reference full scan for this fix.
                edges, distances, fractions = self._reference_candidates(point)
            candidate_sets.append(edges)
            fraction_sets.append(fractions)
            emission_sets.append(self._emission_log_prob(distances))
        return candidate_sets, fraction_sets, emission_sets

    # ------------------------------------------------------------------
    # Emission and transition models
    # ------------------------------------------------------------------
    def _emission_log_prob(self, distance):
        sigma = self.emission_sigma
        return -0.5 * (distance / sigma) ** 2 - np.log(sigma * np.sqrt(2 * np.pi))

    def _reference_transition_log_prob(self, edge_a, fraction_a, edge_b,
                                       fraction_b, straight_distance):
        """Transition likelihood between consecutive candidates.

        The network distance is the driving distance between the two fixes'
        projection points: remaining length of ``edge_a`` past its match
        point, the shortest path between the edges, and the length of
        ``edge_b`` up to its match point.  A crawl along one long edge is
        therefore scored by the distance actually driven, not as stationary.
        """
        length_a = self.network.edge_length(edge_a)
        if edge_a == edge_b and fraction_b >= fraction_a:
            network_distance = (fraction_b - fraction_a) * length_a
        else:
            target_a = self.network.edge_endpoints(edge_a)[1]
            source_b = self.network.edge_endpoints(edge_b)[0]
            if target_a == source_b:
                between = 0.0
            else:
                connecting = shortest_path(
                    self.network, target_a, source_b,
                    edge_cost=self.network.edge_length,
                )
                if connecting is None:
                    return -np.inf
                between = sum(self.network.edge_length(e) for e in connecting)
            network_distance = ((1.0 - fraction_a) * length_a + between
                                + fraction_b * self.network.edge_length(edge_b))
        difference = abs(network_distance - straight_distance)
        return -difference / self.transition_beta

    def _vectorized_transitions(self, edges_a, fractions_a, edges_b,
                                fractions_b, straight_distance):
        """(K_prev, K_cur) transition log-prob matrix for one Viterbi step.

        Between-edge driving distances come from the LRU Dijkstra cache: one
        resumable multi-target run per unique previous-candidate head node,
        shared across steps and trajectories.
        """
        lengths_a = self._lengths[edges_a]
        lengths_b = self._lengths[edges_b]
        sources = self._edge_targets[edges_a].tolist()
        targets = self._edge_sources[edges_b].tolist()
        # Candidate sets are tiny (<= max_candidates), so dict-based dedupe
        # beats np.unique; the gather below is order-independent.
        unique_sources = list(dict.fromkeys(sources))
        unique_targets = list(dict.fromkeys(targets))
        source_rows = {node: row for row, node in enumerate(unique_sources)}
        target_cols = {node: col for col, node in enumerate(unique_targets)}
        cache = self.dijkstra_cache
        between = np.empty((len(unique_sources), len(unique_targets)))
        for row, source in enumerate(unique_sources):
            distances = cache.distances(source, unique_targets)
            between[row] = [distances[t] for t in unique_targets]
        inverse_a = [source_rows[node] for node in sources]
        inverse_b = [target_cols[node] for node in targets]
        between = between[inverse_a][:, inverse_b]

        network_distance = (1.0 - fractions_a) * lengths_a
        network_distance = network_distance[:, None] + between
        network_distance = network_distance + (fractions_b * lengths_b)[None, :]

        same_edge = edges_a[:, None] == edges_b[None, :]
        if same_edge.any():
            forward = fractions_b[None, :] >= fractions_a[:, None]
            crawl_mask = same_edge & forward
            if crawl_mask.any():
                crawl = ((fractions_b[None, :] - fractions_a[:, None])
                         * lengths_a[:, None])
                network_distance = np.where(crawl_mask, crawl, network_distance)
        return -np.abs(network_distance - straight_distance) / self.transition_beta

    # ------------------------------------------------------------------
    # Viterbi decoding
    # ------------------------------------------------------------------
    def _reference_decode(self, candidate_sets, fraction_sets, emission_sets,
                          straights):
        """Viterbi with per-pair Python loops and fresh Dijkstras."""
        scores = [emission_sets[0]]
        back_pointers = [np.zeros(len(candidate_sets[0]), dtype=np.int64)]
        break_steps = set()
        for step in range(1, len(candidate_sets)):
            straight = straights[step - 1]
            previous_scores = scores[-1]
            previous_edges = candidate_sets[step - 1]
            previous_fractions = fraction_sets[step - 1]
            current_edges = candidate_sets[step]
            current_fractions = fraction_sets[step]
            best_values = np.full(len(current_edges), -np.inf)
            pointers = np.zeros(len(current_edges), dtype=np.int64)
            for j in range(len(current_edges)):
                best_value = -np.inf
                best_index = 0
                for i in range(len(previous_edges)):
                    transition = self._reference_transition_log_prob(
                        previous_edges[i], previous_fractions[i],
                        current_edges[j], current_fractions[j], straight)
                    value = previous_scores[i] + transition
                    if value > best_value:
                        best_value = value
                        best_index = i
                best_values[j] = best_value
                pointers[j] = best_index
            if not np.any(best_values > -np.inf):
                # HMM break: no candidate is reachable from the previous
                # fix.  Restart decoding from this fix.
                break_steps.add(step)
                scores.append(emission_sets[step])
                back_pointers.append(np.zeros(len(current_edges), dtype=np.int64))
            else:
                scores.append(best_values + emission_sets[step])
                back_pointers.append(pointers)
        return scores, back_pointers, break_steps

    def _vectorized_decode(self, candidate_sets, fraction_sets, emission_sets,
                           straights):
        """Matrix-form Viterbi: one (K, K) transition matrix per step."""
        scores = [emission_sets[0]]
        back_pointers = [np.zeros(len(candidate_sets[0]), dtype=np.int64)]
        break_steps = set()
        for step in range(1, len(candidate_sets)):
            transitions = self._vectorized_transitions(
                candidate_sets[step - 1], fraction_sets[step - 1],
                candidate_sets[step], fraction_sets[step],
                straights[step - 1])
            values = scores[-1][:, None] + transitions
            best_values = values.max(axis=0)
            if not np.any(best_values > -np.inf):
                break_steps.add(step)
                scores.append(emission_sets[step])
                back_pointers.append(
                    np.zeros(len(candidate_sets[step]), dtype=np.int64))
            else:
                scores.append(best_values + emission_sets[step])
                back_pointers.append(values.argmax(axis=0).astype(np.int64))
        return scores, back_pointers, break_steps

    def _backtrack(self, candidate_sets, scores, back_pointers, break_steps):
        """Matched edge per fix, restarting the chain at every HMM break."""
        num_steps = len(candidate_sets)
        matched = [0] * num_steps
        index = int(np.argmax(scores[-1]))
        for step in range(num_steps - 1, -1, -1):
            matched[step] = int(candidate_sets[step][index])
            if step == 0:
                break
            if step in break_steps:
                # The previous segment ends at step - 1; decode its best
                # terminal candidate independently.
                index = int(np.argmax(scores[step - 1]))
            else:
                index = int(back_pointers[step][index])
        return matched

    def _match_edges(self, trajectory):
        """Viterbi-matched edge per fix plus the HMM-break step indices."""
        positions = trajectory.positions()
        if len(positions) == 0:
            return [], set()
        if self.impl == "vectorized":
            candidate_sets, fraction_sets, emission_sets = \
                self._vectorized_candidate_sets(positions)
        else:
            candidate_sets, fraction_sets, emission_sets = \
                self._reference_candidate_sets(positions)
        straights = np.sqrt(
            ((positions[1:] - positions[:-1]) ** 2).sum(axis=1))
        if self.impl == "vectorized":
            scores, back_pointers, break_steps = self._vectorized_decode(
                candidate_sets, fraction_sets, emission_sets, straights)
        else:
            scores, back_pointers, break_steps = self._reference_decode(
                candidate_sets, fraction_sets, emission_sets, straights)
        matched = self._backtrack(candidate_sets, scores, back_pointers,
                                  break_steps)
        return matched, break_steps

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def match(self, trajectory):
        """Return the most likely edge path for a :class:`GPSTrajectory`.

        The Viterbi-decoded candidate sequence is stitched into a connected
        path by inserting shortest-path segments between consecutive matched
        edges; matched edges that cannot be connected (e.g. after an HMM
        break onto a different component) are dropped, so the result is
        always a connected path.  Use :meth:`match_segments` to recover every
        decoded segment of a broken trajectory.
        """
        matched, _ = self._match_edges(trajectory)
        return self._stitch(matched)

    def match_segments(self, trajectory):
        """Connected sub-paths of the match, one per HMM segment.

        A trajectory that never breaks yields a single segment equal to
        :meth:`match`; each break (no reachable transition between two
        consecutive fixes) starts a new segment.
        """
        matched, break_steps = self._match_edges(trajectory)
        if not matched:
            return []
        bounds = sorted({0, len(matched)} | break_steps)
        segments = []
        for low, high in zip(bounds, bounds[1:]):
            stitched = self._stitch(matched[low:high])
            if stitched:
                segments.append(stitched)
        return segments

    def match_batch(self, trajectories):
        """Match many trajectories, sharing the transition-distance cache.

        Network distances depend only on the (static) edge lengths, so the
        Dijkstra cache stays valid across trajectories: each unique candidate
        head node is explored once for the whole batch.
        """
        return [self.match(trajectory) for trajectory in trajectories]

    def _stitch(self, matched_edges):
        """Turn the per-point edge sequence into a connected, de-duplicated path."""
        path = []
        for edge in matched_edges:
            if path and path[-1] == edge:
                continue
            if not path:
                path.append(edge)
                continue
            previous_target = self.network.edge_endpoints(path[-1])[1]
            current_source = self.network.edge_endpoints(edge)[0]
            if previous_target != current_source:
                connector = shortest_path(
                    self.network, previous_target, current_source,
                    edge_cost=self.network.edge_length,
                )
                if connector is None:
                    # Unreachable: keep the longest consistent prefix.
                    continue
                for connecting_edge in connector:
                    if not path or path[-1] != connecting_edge:
                        path.append(connecting_edge)
            if not path or path[-1] != edge:
                path.append(edge)
        return path
