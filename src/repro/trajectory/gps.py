"""GPS trajectory synthesis (paper Definition 2).

Given a path, a departure time and the speed model, the sampler emits
timestamped GPS points along the path geometry at a configurable rate, with
Gaussian positioning noise — mimicking the 1 Hz (Aalborg), 1/30 Hz (Harbin)
and 1/4–1/2 Hz (Chengdu) data the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GPSPoint", "GPSTrajectory", "GPSSampler"]


@dataclass(frozen=True)
class GPSPoint:
    """One timestamped GPS fix: position (metres) and seconds since departure."""

    x: float
    y: float
    timestamp: float


class GPSTrajectory:
    """A sequence of GPS points plus the ground-truth path that produced it."""

    def __init__(self, points, true_path, departure_time):
        self.points = list(points)
        self.true_path = true_path
        self.departure_time = departure_time

    def __len__(self):
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def positions(self):
        """(N, 2) array of point coordinates."""
        return np.array([[p.x, p.y] for p in self.points])

    @property
    def duration(self):
        """Seconds between the first and last fix."""
        if len(self.points) < 2:
            return 0.0
        return self.points[-1].timestamp - self.points[0].timestamp


class GPSSampler:
    """Sample noisy GPS fixes along a path driven under the speed model."""

    def __init__(self, network, speed_model, sample_interval=15.0, noise_std=8.0, seed=0):
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        self.network = network
        self.speed_model = speed_model
        self.sample_interval = sample_interval
        self.noise_std = noise_std
        self.rng = np.random.default_rng(seed)

    def sample(self, path, departure_time):
        """Generate a :class:`GPSTrajectory` for driving ``path`` at ``departure_time``.

        Raises
        ------
        ValueError
            If ``path`` is empty (there is no geometry to sample along).
        """
        path = list(path)
        if not path:
            raise ValueError("cannot sample GPS fixes along an empty path")
        # Per-edge traversal times with the clock advancing along the path.
        clock = departure_time
        edge_times = []
        for edge in path:
            seconds = self.speed_model.edge_travel_time(edge, clock, rng=self.rng)
            edge_times.append(seconds)
            clock = clock.shift(seconds)

        cumulative = np.concatenate(([0.0], np.cumsum(edge_times)))
        total_time = cumulative[-1]

        # Strictly-before comparison: when total_time is an exact multiple of
        # the sample interval, the final fix appended below would otherwise
        # be duplicated (two points with identical timestamp and position).
        points = []
        timestamp = 0.0
        while timestamp < total_time:
            position = self._position_at(path, cumulative, timestamp)
            noisy = (
                position[0] + self.rng.normal(0.0, self.noise_std),
                position[1] + self.rng.normal(0.0, self.noise_std),
            )
            points.append(GPSPoint(x=noisy[0], y=noisy[1], timestamp=timestamp))
            timestamp += self.sample_interval
        # Always include the final position so short paths get >= 2 points.
        final = self._position_at(path, cumulative, total_time)
        points.append(GPSPoint(
            x=final[0] + self.rng.normal(0.0, self.noise_std),
            y=final[1] + self.rng.normal(0.0, self.noise_std),
            timestamp=total_time,
        ))
        return GPSTrajectory(points, true_path=list(path), departure_time=departure_time)

    def _position_at(self, path, cumulative, timestamp):
        """Interpolated position along the path at ``timestamp`` seconds."""
        path = list(path)
        edge_index = int(np.searchsorted(cumulative, timestamp, side="right")) - 1
        edge_index = min(max(edge_index, 0), len(path) - 1)
        edge = path[edge_index]
        span = cumulative[edge_index + 1] - cumulative[edge_index]
        fraction = 0.0 if span <= 0 else (timestamp - cumulative[edge_index]) / span
        return self.network.point_along_edge(edge, fraction)
