"""Time-dependent edge speed model.

The WSCCL weak labels only carry signal because travel times, rankings and
route choices *actually depend* on the departure time.  This module provides
that dependency: a congestion profile over the day (morning and afternoon
peaks on weekdays), modulated per road type and per edge, which yields
realistic time-varying travel speeds for the simulator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CongestionProfile", "SpeedModel"]


class CongestionProfile:
    """Network-wide congestion level as a function of departure time.

    The level is in [0, 1]: 0 means free flow, 1 means the heaviest modelled
    congestion.  Weekday profiles have a morning peak centred at 8:00 and an
    afternoon peak centred at 17:30; weekends have a single shallow midday
    bump.  Gaussian bumps keep the profile smooth, so travel times vary
    continuously with departure time.
    """

    def __init__(self, morning_peak_hour=8.0, afternoon_peak_hour=17.5,
                 morning_intensity=0.85, afternoon_intensity=0.75,
                 weekend_intensity=0.30, peak_width_hours=1.2):
        if peak_width_hours <= 0:
            raise ValueError("peak_width_hours must be positive")
        self.morning_peak_hour = morning_peak_hour
        self.afternoon_peak_hour = afternoon_peak_hour
        self.morning_intensity = morning_intensity
        self.afternoon_intensity = afternoon_intensity
        self.weekend_intensity = weekend_intensity
        self.peak_width_hours = peak_width_hours

    def level(self, departure_time):
        """Congestion level in [0, 1] at a departure time."""
        hour = departure_time.hour
        width = self.peak_width_hours
        if departure_time.is_weekday:
            morning = self.morning_intensity * _bump(hour, self.morning_peak_hour, width)
            afternoon = self.afternoon_intensity * _bump(hour, self.afternoon_peak_hour, width)
            base = 0.08
            return float(np.clip(base + morning + afternoon, 0.0, 1.0))
        midday = self.weekend_intensity * _bump(hour, 13.0, 2.5)
        return float(np.clip(0.05 + midday, 0.0, 1.0))

    def __call__(self, departure_time):
        return self.level(departure_time)


def _bump(hour, center, width):
    return float(np.exp(-0.5 * ((hour - center) / width) ** 2))


#: How strongly each road type responds to congestion.  Motorways and
#: arterials suffer the most during peaks (they carry commuter flow), which
#: is what makes the "avoid the highway at 8 a.m." example from the paper's
#: introduction emerge from the simulator.
_CONGESTION_SENSITIVITY = {
    "motorway": 0.85,
    "trunk": 0.80,
    "primary": 0.70,
    "secondary": 0.60,
    "tertiary": 0.45,
    "residential": 0.30,
    "service": 0.25,
}


class SpeedModel:
    """Per-edge, time-dependent travel speeds.

    Each edge gets a static random capacity factor (some streets are simply
    slower than their speed limit suggests) plus a dynamic congestion factor
    driven by the :class:`CongestionProfile` and the edge's road type.
    """

    def __init__(self, network, profile=None, seed=0, noise_std=0.05):
        self.network = network
        self.profile = profile or CongestionProfile()
        self.noise_std = noise_std
        rng = np.random.default_rng(seed)
        # Static per-edge heterogeneity in (0.75, 1.0].
        self._capacity_factor = 1.0 - rng.uniform(0.0, 0.25, size=network.num_edges)
        # Per-edge congestion sensitivity jitter.
        self._sensitivity = np.array([
            _CONGESTION_SENSITIVITY[network.edge_features(e).road_type]
            for e in range(network.num_edges)
        ]) * rng.uniform(0.85, 1.15, size=network.num_edges)
        self._sensitivity = np.clip(self._sensitivity, 0.0, 0.95)

    def congestion_level(self, departure_time):
        """Network-wide congestion level (used by the TCI weak labeler)."""
        return self.profile.level(departure_time)

    def edge_speed(self, edge_id, departure_time, rng=None):
        """Travel speed on the edge in km/h at the given departure time."""
        features = self.network.edge_features(edge_id)
        level = self.profile.level(departure_time)
        slowdown = 1.0 - self._sensitivity[edge_id] * level
        speed = features.speed_limit * self._capacity_factor[edge_id] * slowdown
        if rng is not None and self.noise_std > 0:
            speed *= float(np.clip(rng.normal(1.0, self.noise_std), 0.5, 1.5))
        return float(max(speed, 2.0))

    def edge_travel_time(self, edge_id, departure_time, rng=None):
        """Traversal time of the edge in seconds at the given departure time."""
        speed_mps = self.edge_speed(edge_id, departure_time, rng=rng) / 3.6
        return float(self.network.edge_length(edge_id) / speed_mps)

    def path_travel_time(self, path, departure_time, rng=None):
        """Travel time of a path, advancing the clock edge by edge.

        The departure time is shifted as the vehicle progresses, so a path
        started just before the peak partially experiences it — the same
        coupling between space and time the paper's encoder must learn.
        """
        clock = departure_time
        total = 0.0
        for edge in path:
            seconds = self.edge_travel_time(edge, clock, rng=rng)
            total += seconds
            clock = clock.shift(seconds)
        return float(total)
