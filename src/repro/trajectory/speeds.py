"""Time-dependent edge speed model.

The WSCCL weak labels only carry signal because travel times, rankings and
route choices *actually depend* on the departure time.  This module provides
that dependency: a congestion profile over the day (morning and afternoon
peaks on weekdays), modulated per road type and per edge, which yields
realistic time-varying travel speeds for the simulator.

Pricing comes in two granularities:

* per-edge scalars (:meth:`SpeedModel.edge_speed`,
  :meth:`SpeedModel.path_travel_time`) — the reference path, one Python call
  per edge;
* batched arrays (:meth:`SpeedModel.edge_speeds`,
  :meth:`SpeedModel.edge_travel_time_vector`,
  :meth:`SpeedModel.path_travel_times`) — whole-frontier numpy over static
  per-edge factor arrays.  Noise-free batched pricing is bit-identical to
  the reference loop; ``grid=True`` instead gathers from the precomputed
  per-edge × time-slot :meth:`SpeedModel.slot_speed_matrix` (quantised to
  5-minute slots, fastest).
"""

from __future__ import annotations

import numpy as np

from ..temporal.timeslots import DAYS_PER_WEEK, SLOTS_PER_DAY

__all__ = ["CongestionProfile", "SpeedModel", "DEFAULT_CONGESTION_SENSITIVITY"]


class CongestionProfile:
    """Network-wide congestion level as a function of departure time.

    The level is in [0, 1]: 0 means free flow, 1 means the heaviest modelled
    congestion.  Weekday profiles have a morning peak centred at 8:00 and an
    afternoon peak centred at 17:30; weekends have a single shallow midday
    bump.  Gaussian bumps keep the profile smooth, so travel times vary
    continuously with departure time.
    """

    def __init__(self, morning_peak_hour=8.0, afternoon_peak_hour=17.5,
                 morning_intensity=0.85, afternoon_intensity=0.75,
                 weekend_intensity=0.30, peak_width_hours=1.2):
        if peak_width_hours <= 0:
            raise ValueError("peak_width_hours must be positive")
        self.morning_peak_hour = morning_peak_hour
        self.afternoon_peak_hour = afternoon_peak_hour
        self.morning_intensity = morning_intensity
        self.afternoon_intensity = afternoon_intensity
        self.weekend_intensity = weekend_intensity
        self.peak_width_hours = peak_width_hours

    def level(self, departure_time):
        """Congestion level in [0, 1] at a departure time."""
        hour = departure_time.hour
        width = self.peak_width_hours
        if departure_time.is_weekday:
            morning = self.morning_intensity * _bump(hour, self.morning_peak_hour, width)
            afternoon = self.afternoon_intensity * _bump(hour, self.afternoon_peak_hour, width)
            base = 0.08
            return float(np.clip(base + morning + afternoon, 0.0, 1.0))
        midday = self.weekend_intensity * _bump(hour, 13.0, 2.5)
        return float(np.clip(0.05 + midday, 0.0, 1.0))

    def level_batch(self, days, seconds):
        """Vectorised :meth:`level` over parallel day/seconds arrays.

        Elementwise identical to the scalar formula (same IEEE operations in
        the same order), so batched pricing matches the per-edge reference
        bit for bit.
        """
        days = np.asarray(days)
        hours = np.asarray(seconds, dtype=np.float64) / 3600.0
        width = self.peak_width_hours
        morning = self.morning_intensity * _bump(hours, self.morning_peak_hour, width)
        afternoon = self.afternoon_intensity * _bump(hours, self.afternoon_peak_hour, width)
        weekday_level = np.clip(0.08 + morning + afternoon, 0.0, 1.0)
        weekend_level = np.clip(0.05 + self.weekend_intensity * _bump(hours, 13.0, 2.5),
                                0.0, 1.0)
        return np.where(days < 5, weekday_level, weekend_level)

    def __call__(self, departure_time):
        return self.level(departure_time)


def _bump(hour, center, width):
    # Square via multiplication, not `** 2`: CPython computes float ** 2.0
    # through libm pow(), which can land one ulp away from the correctly
    # rounded x*x that numpy uses for arrays — and scalar and batched
    # congestion levels must agree bit for bit.
    z = (hour - center) / width
    return np.exp(-0.5 * (z * z))


#: How strongly each road type responds to congestion.  Motorways and
#: arterials suffer the most during peaks (they carry commuter flow), which
#: is what makes the "avoid the highway at 8 a.m." example from the paper's
#: introduction emerge from the simulator.
_CONGESTION_SENSITIVITY = {
    "motorway": 0.85,
    "trunk": 0.80,
    "primary": 0.70,
    "secondary": 0.60,
    "tertiary": 0.45,
    "residential": 0.30,
    "service": 0.25,
}

#: Sensitivity assumed for road types outside the table above (e.g. networks
#: built with a custom feature schema): a mid-range response, between
#: "tertiary" and "secondary".
DEFAULT_CONGESTION_SENSITIVITY = 0.5


class SpeedModel:
    """Per-edge, time-dependent travel speeds.

    Each edge gets a static random capacity factor (some streets are simply
    slower than their speed limit suggests) plus a dynamic congestion factor
    driven by the :class:`CongestionProfile` and the edge's road type.  Road
    types missing from the sensitivity table fall back to
    :data:`DEFAULT_CONGESTION_SENSITIVITY`.
    """

    #: Speeds never drop below this floor (km/h), however congested.
    MIN_SPEED_KMH = 2.0

    def __init__(self, network, profile=None, seed=0, noise_std=0.05):
        self.network = network
        self.profile = profile or CongestionProfile()
        self.noise_std = noise_std
        rng = np.random.default_rng(seed)
        # Static per-edge heterogeneity in (0.75, 1.0].
        self._capacity_factor = 1.0 - rng.uniform(0.0, 0.25, size=network.num_edges)
        # One pass over the edge features: congestion sensitivity plus the
        # static per-edge arrays backing the batched pricing paths.
        sensitivities = np.empty(network.num_edges)
        self._speed_limits = np.empty(network.num_edges)
        self._lengths = np.empty(network.num_edges)
        for edge in range(network.num_edges):
            features = network.edge_features(edge)
            sensitivities[edge] = _CONGESTION_SENSITIVITY.get(
                features.road_type, DEFAULT_CONGESTION_SENSITIVITY)
            self._speed_limits[edge] = features.speed_limit
            self._lengths[edge] = network.edge_length(edge)
        # Per-edge congestion sensitivity jitter.
        self._sensitivity = np.clip(
            sensitivities * rng.uniform(0.85, 1.15, size=network.num_edges),
            0.0, 0.95)
        self._slot_matrix = None
        self._slot_matrix_granularity = None

    def congestion_level(self, departure_time):
        """Network-wide congestion level (used by the TCI weak labeler)."""
        return self.profile.level(departure_time)

    # ------------------------------------------------------------------
    # Reference (per-edge) pricing
    # ------------------------------------------------------------------
    def edge_speed(self, edge_id, departure_time, rng=None):
        """Travel speed on the edge in km/h at the given departure time."""
        features = self.network.edge_features(edge_id)
        level = self.profile.level(departure_time)
        slowdown = 1.0 - self._sensitivity[edge_id] * level
        speed = features.speed_limit * self._capacity_factor[edge_id] * slowdown
        if rng is not None and self.noise_std > 0:
            speed *= float(np.clip(rng.normal(1.0, self.noise_std), 0.5, 1.5))
        return float(max(speed, self.MIN_SPEED_KMH))

    def edge_travel_time(self, edge_id, departure_time, rng=None):
        """Traversal time of the edge in seconds at the given departure time."""
        speed_mps = self.edge_speed(edge_id, departure_time, rng=rng) / 3.6
        return float(self.network.edge_length(edge_id) / speed_mps)

    def path_travel_time(self, path, departure_time, rng=None):
        """Travel time of a path, advancing the clock edge by edge.

        The departure time is shifted as the vehicle progresses, so a path
        started just before the peak partially experiences it — the same
        coupling between space and time the paper's encoder must learn.
        """
        clock = departure_time
        total = 0.0
        for edge in path:
            seconds = self.edge_travel_time(edge, clock, rng=rng)
            total += seconds
            clock = clock.shift(seconds)
        return float(total)

    # ------------------------------------------------------------------
    # Batched pricing
    # ------------------------------------------------------------------
    def edge_speeds(self, departure_time):
        """Noise-free speeds of *all* edges at one departure time, shape (E,).

        Bit-identical to calling :meth:`edge_speed` per edge with
        ``rng=None``.
        """
        level = self.profile.level(departure_time)
        speeds = self._speed_limits * self._capacity_factor * (1.0 - self._sensitivity * level)
        return np.maximum(speeds, self.MIN_SPEED_KMH)

    def edge_travel_time_vector(self, departure_time):
        """Noise-free traversal seconds of all edges at one departure time.

        One vectorised evaluation replacing ``num_edges`` scalar
        :meth:`edge_travel_time` calls — this is the edge-cost table the
        simulator's route search reads from.
        """
        return self._lengths / (self.edge_speeds(departure_time) / 3.6)

    def slot_speed_matrix(self, slots_per_day=SLOTS_PER_DAY):
        """Per-edge × time-slot speed grid, shape ``(num_edges, 7 * slots_per_day)``.

        Column ``day * slots_per_day + slot`` holds the noise-free speed at
        the *start* of that slot (the same quantisation as
        ``DepartureTime.slot_index``).  Computed once and cached; reused by
        ``path_travel_times(..., grid=True)`` and any bulk workload that can
        tolerate slot granularity.
        """
        if (self._slot_matrix is None
                or self._slot_matrix_granularity != slots_per_day):
            days = np.repeat(np.arange(DAYS_PER_WEEK), slots_per_day)
            seconds = np.tile(
                np.arange(slots_per_day) * (86400.0 / slots_per_day), DAYS_PER_WEEK)
            levels = self.profile.level_batch(days, seconds)          # (S,)
            base = self._speed_limits * self._capacity_factor         # (E,)
            speeds = base[:, None] * (1.0 - self._sensitivity[:, None] * levels[None, :])
            self._slot_matrix = np.maximum(speeds, self.MIN_SPEED_KMH)
            self._slot_matrix_granularity = slots_per_day
        return self._slot_matrix

    def path_travel_times(self, paths, departure_time, grid=False,
                          slots_per_day=SLOTS_PER_DAY):
        """Travel times of many paths sharing one departure time, shape (k,).

        All paths advance in lockstep: step ``t`` gathers the speeds of every
        path's ``t``-th edge at that path's current clock, accumulates the
        traversal seconds and shifts the clocks — ``max(len(path))`` numpy
        steps instead of ``k × len(path)`` Python calls.

        With ``grid=False`` (default) congestion levels are recomputed
        continuously and the result is bit-identical to looping
        :meth:`path_travel_time` over the paths (without noise).  With
        ``grid=True`` each step is a single gather into
        :meth:`slot_speed_matrix`; speeds are then quantised to the slot the
        clock falls in (within a fraction of a percent of the continuous
        model for the default smooth profiles).
        """
        paths = [np.asarray(list(path), dtype=np.int64) for path in paths]
        count = len(paths)
        totals = np.zeros(count)
        if count == 0:
            return totals
        lengths = np.fromiter((p.size for p in paths), dtype=np.int64, count=count)
        max_len = int(lengths.max(initial=0))
        if max_len == 0:
            return totals
        padded = np.full((count, max_len), -1, dtype=np.int64)
        for row, path in enumerate(paths):
            padded[row, :path.size] = path

        days = np.full(count, departure_time.day_of_week, dtype=np.int64)
        seconds = np.full(count, departure_time.seconds, dtype=np.float64)
        matrix = self.slot_speed_matrix(slots_per_day) if grid else None
        for step in range(max_len):
            active = np.flatnonzero(lengths > step)
            edges = padded[active, step]
            if grid:
                slots = np.minimum(
                    (seconds[active] // (86400.0 / slots_per_day)).astype(np.int64),
                    slots_per_day - 1)
                speeds = matrix[edges, days[active] * slots_per_day + slots]
            else:
                level = self.profile.level_batch(days[active], seconds[active])
                slowdown = 1.0 - self._sensitivity[edges] * level
                speeds = np.maximum(
                    self._speed_limits[edges] * self._capacity_factor[edges] * slowdown,
                    self.MIN_SPEED_KMH)
            step_seconds = self._lengths[edges] / (speeds / 3.6)
            totals[active] += step_seconds
            days[active], seconds[active] = _advance_clock(
                days[active], seconds[active], step_seconds)
        return totals


def _advance_clock(days, seconds, delta):
    """Vectorised mirror of ``DepartureTime.shift`` over parallel arrays."""
    week_seconds = DAYS_PER_WEEK * 86400.0
    total = days * 86400.0 + seconds + delta
    total = total % week_seconds
    # Guard against float rounding, exactly as DepartureTime.shift does.
    total = np.where(total >= week_seconds, total - week_seconds, total)
    day, remainder = np.divmod(total, 86400.0)
    day = day.astype(np.int64) % DAYS_PER_WEEK
    rolled = remainder >= 86400.0
    day = np.where(rolled, (day + 1) % DAYS_PER_WEEK, day)
    remainder = np.where(rolled, 0.0, remainder)
    return day, remainder
