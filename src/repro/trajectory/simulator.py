"""Trip simulator: generates temporal paths with realistic route choice.

The simulator replaces the paper's fleet GPS corpora.  For each trip it

1. picks an origin/destination pair and a departure time (commute-heavy on
   weekdays, spread out on weekends),
2. computes candidate routes with the k-shortest-path search under the
   *time-dependent* travel costs, and picks the route a driver would take at
   that departure time (fastest route with a small amount of choice noise),
3. records the driven path, its simulated travel time, and (optionally) a
   noisy GPS trace.

Because route choice and travel time both depend on the departure time, the
resulting dataset has exactly the spatio-temporal coupling WSCCL's weak
labels are designed to exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..roadnet.search import k_shortest_paths
from ..temporal.timeslots import DepartureTime
from .speeds import SpeedModel

__all__ = ["Trip", "TripSimulator"]


@dataclass
class Trip:
    """One simulated trip.

    Attributes
    ----------
    path:
        Sequence of edge ids actually driven.
    departure_time:
        :class:`DepartureTime` of the trip.
    travel_time:
        Simulated travel time in seconds.
    alternatives:
        Other candidate paths for the same origin/destination (used by the
        ranking and recommendation tasks).
    origin, destination:
        Node ids.
    """

    path: list
    departure_time: DepartureTime
    travel_time: float
    origin: int
    destination: int
    alternatives: list = field(default_factory=list)


class TripSimulator:
    """Generate trips over a road network with a time-dependent speed model."""

    def __init__(self, network, speed_model=None, seed=0,
                 min_trip_edges=4, max_trip_edges=40, num_alternatives=3,
                 route_choice_noise=0.1, impl="vectorized"):
        if impl not in ("reference", "vectorized"):
            raise ValueError(
                f"impl must be 'reference' or 'vectorized', got {impl!r}")
        self.network = network
        self.speed_model = speed_model or SpeedModel(network, seed=seed)
        self.rng = np.random.default_rng(seed)
        self.min_trip_edges = min_trip_edges
        self.max_trip_edges = max_trip_edges
        self.num_alternatives = num_alternatives
        self.route_choice_noise = route_choice_noise
        self.impl = impl

    # ------------------------------------------------------------------
    # Departure time sampling
    # ------------------------------------------------------------------
    def sample_departure_time(self):
        """Sample a departure time with commute-heavy weekday structure."""
        day = int(self.rng.integers(0, 7))
        if day < 5:
            # Weekday mixture: morning peak, afternoon peak, uniform rest.
            component = self.rng.random()
            if component < 0.3:
                hour = float(np.clip(self.rng.normal(8.0, 0.8), 0.0, 23.99))
            elif component < 0.6:
                hour = float(np.clip(self.rng.normal(17.5, 1.0), 0.0, 23.99))
            else:
                hour = float(self.rng.uniform(5.0, 23.0))
        else:
            hour = float(self.rng.uniform(7.0, 23.0))
        return DepartureTime.from_hour(day, hour)

    # ------------------------------------------------------------------
    # Origin / destination sampling
    # ------------------------------------------------------------------
    def _sample_od_pair(self):
        """Sample an origin/destination with a plausible trip distance.

        When no draw within the attempt budget satisfies the distance
        heuristic, the last *distinct* pair is returned; a degenerate
        ``origin == destination`` pair is never emitted (a RuntimeError is
        raised if 50 draws produce only degenerate pairs, which requires a
        near-single-node network).
        """
        fallback = None
        for _ in range(50):
            origin = int(self.rng.integers(0, self.network.num_nodes))
            destination = int(self.rng.integers(0, self.network.num_nodes))
            if origin == destination:
                continue
            fallback = (origin, destination)
            ox, oy = self.network.node_coordinates(origin)
            dx, dy = self.network.node_coordinates(destination)
            distance = float(np.hypot(dx - ox, dy - oy))
            mean_block = 250.0
            if self.min_trip_edges * mean_block * 0.5 <= distance:
                return origin, destination
        if fallback is None:
            raise RuntimeError(
                "could not sample a distinct origin/destination pair in 50 "
                f"attempts on a {self.network.num_nodes}-node network")
        return fallback

    # ------------------------------------------------------------------
    # Route generation
    # ------------------------------------------------------------------
    def _candidate_routes(self, origin, destination, departure_time):
        """k candidate routes ranked by time-dependent cost at departure."""
        if self.impl == "vectorized":
            # One vectorised evaluation of every edge's cost at the departure
            # time; the search then reads from the table instead of paying a
            # Python speed-model call per relaxed edge.  The table entries are
            # bit-identical to edge_travel_time, so the routes are unchanged.
            cost_vector = self.speed_model.edge_travel_time_vector(departure_time)

            def cost(edge):
                return float(cost_vector[edge])
        else:
            def cost(edge):
                return self.speed_model.edge_travel_time(edge, departure_time)

        candidates = k_shortest_paths(
            self.network, origin, destination,
            k=self.num_alternatives + 1, edge_cost=cost,
        )
        return [c for c in candidates
                if self.min_trip_edges <= len(c) <= self.max_trip_edges] or candidates

    def simulate_trip(self, departure_time=None, origin=None, destination=None):
        """Simulate one trip; returns a :class:`Trip` or None if no route exists."""
        departure_time = departure_time or self.sample_departure_time()
        if origin is None or destination is None:
            origin, destination = self._sample_od_pair()

        candidates = self._candidate_routes(origin, destination, departure_time)
        if not candidates:
            return None

        # Route choice: drivers mostly take the fastest route at departure,
        # with a small noise term representing preference heterogeneity.
        if self.impl == "vectorized":
            # All k candidates priced in lockstep (bit-identical to the loop).
            costs = self.speed_model.path_travel_times(candidates, departure_time)
        else:
            costs = np.array([
                self.speed_model.path_travel_time(path, departure_time)
                for path in candidates
            ])
        noisy = costs * (1.0 + self.rng.normal(0.0, self.route_choice_noise, size=len(costs)))
        chosen_index = int(np.argmin(noisy))
        chosen = candidates[chosen_index]
        alternatives = [c for i, c in enumerate(candidates) if i != chosen_index]

        # The single chosen path is priced with per-edge noise draws in path
        # order, keeping one RNG stream shared by both impls.
        travel_time = self.speed_model.path_travel_time(
            chosen, departure_time, rng=self.rng
        )
        return Trip(
            path=list(chosen),
            departure_time=departure_time,
            travel_time=float(travel_time),
            origin=origin,
            destination=destination,
            alternatives=[list(a) for a in alternatives],
        )

    def simulate(self, num_trips, progress_every=0):
        """Simulate ``num_trips`` trips (skipping unroutable OD pairs)."""
        trips = []
        attempts = 0
        while len(trips) < num_trips and attempts < num_trips * 10:
            attempts += 1
            trip = self.simulate_trip()
            if trip is not None and len(trip.path) >= self.min_trip_edges:
                trips.append(trip)
        return trips
