"""Traffic and trajectory substrate: speeds, trips, GPS, map matching."""

from .gps import GPSPoint, GPSSampler, GPSTrajectory
from .mapmatching import HMMMapMatcher
from .simulator import Trip, TripSimulator
from .speeds import DEFAULT_CONGESTION_SENSITIVITY, CongestionProfile, SpeedModel

__all__ = [
    "CongestionProfile",
    "SpeedModel",
    "DEFAULT_CONGESTION_SENSITIVITY",
    "Trip",
    "TripSimulator",
    "GPSPoint",
    "GPSTrajectory",
    "GPSSampler",
    "HMMMapMatcher",
]
