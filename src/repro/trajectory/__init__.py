"""Traffic and trajectory substrate: speeds, trips, GPS, map matching."""

from .gps import GPSPoint, GPSSampler, GPSTrajectory
from .mapmatching import HMMMapMatcher
from .simulator import Trip, TripSimulator
from .speeds import CongestionProfile, SpeedModel

__all__ = [
    "CongestionProfile",
    "SpeedModel",
    "Trip",
    "TripSimulator",
    "GPSPoint",
    "GPSTrajectory",
    "GPSSampler",
    "HMMMapMatcher",
]
