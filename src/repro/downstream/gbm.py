"""Gradient boosting: regressor (GBR) and binary classifier (GBC).

These mirror the scikit-learn estimators the paper uses as its downstream
models on top of frozen TPRs (§VII-A4): squared-error boosting for the two
regression tasks, logistic boosting for path recommendation.

The ``impl`` / ``binning`` knobs thread straight through to the
:class:`~repro.downstream.tree.DecisionTreeRegressor` weak learners.  The
fit loop predicts the full training set every round, so the flattened-tree
batch ``predict`` compounds ×``n_estimators``; with
``binning="histogram"`` the feature matrix is additionally quantile-binned
*once per boosting run* (see :class:`~repro.downstream.tree.HistogramBins`)
and shared by every round's tree.
"""

from __future__ import annotations

import numpy as np

from .tree import DecisionTreeRegressor, HistogramBins

__all__ = ["GradientBoostingRegressor", "GradientBoostingClassifier"]


class GradientBoostingRegressor:
    """Least-squares gradient boosting over shallow regression trees."""

    def __init__(self, n_estimators=50, learning_rate=0.1, max_depth=3,
                 min_samples_leaf=5, subsample=1.0, seed=0,
                 impl="vectorized", binning="exact", max_bins=64):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"unknown impl {impl!r}")
        if binning not in ("exact", "histogram"):
            raise ValueError(f"unknown binning {binning!r}")
        if impl == "reference" and binning != "exact":
            raise ValueError("impl='reference' only supports binning='exact'; "
                             "the loop oracle has no histogram path")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.impl = impl
        self.binning = binning
        self.max_bins = max_bins
        self.rng = np.random.default_rng(seed)
        self._trees = []
        self._initial = 0.0

    def _make_tree(self):
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            seed=int(self.rng.integers(0, 2 ** 31 - 1)),
            impl=self.impl,
            binning=self.binning,
            max_bins=self.max_bins,
        )

    def _prebin(self, features):
        """One histogram-binning pass shared by every boosting round."""
        if self.impl == "vectorized" and self.binning == "histogram":
            return HistogramBins(features, max_bins=self.max_bins)
        return None

    def _fit_tree(self, tree, features, residuals, rows, binned):
        if binned is None:
            tree.fit(features[rows], residuals[rows])
        elif len(rows) == len(features):
            tree.fit(features, residuals, binned=binned)
        else:
            tree.fit(features[rows], residuals[rows], binned=binned.take(rows))

    def fit(self, features, targets):
        """Fit to ``features`` (N, D), ``targets`` (N,)."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if len(features) != len(targets) or len(features) == 0:
            raise ValueError("features and targets must be non-empty and aligned")

        self._trees = []
        self._initial = float(targets.mean())
        predictions = np.full(len(targets), self._initial)
        binned = self._prebin(features)

        for round_index in range(self.n_estimators):
            residuals = targets - predictions
            rows = self._sample_rows(len(targets))
            tree = self._make_tree()
            self._fit_tree(tree, features, residuals, rows, binned)
            update = tree.predict(features)
            predictions = predictions + self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features):
        """Predicted targets for ``features`` (N, D)."""
        features = np.asarray(features, dtype=np.float64)
        predictions = np.full(len(features), self._initial)
        for tree in self._trees:
            predictions = predictions + self.learning_rate * tree.predict(features)
        return predictions

    def _sample_rows(self, count):
        if self.subsample >= 1.0:
            return np.arange(count)
        size = max(2, int(round(count * self.subsample)))
        return self.rng.choice(count, size=size, replace=False)


class GradientBoostingClassifier:
    """Binary classifier: boosting on the logistic deviance gradient."""

    def __init__(self, n_estimators=50, learning_rate=0.1, max_depth=3,
                 min_samples_leaf=5, subsample=1.0, seed=0,
                 impl="vectorized", binning="exact", max_bins=64):
        self._booster = GradientBoostingRegressor(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            subsample=subsample,
            seed=seed,
            impl=impl,
            binning=binning,
            max_bins=max_bins,
        )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self._trees = []
        self._initial_logit = 0.0

    def fit(self, features, labels):
        """Fit to ``features`` (N, D), binary ``labels`` (N,) in {0, 1}."""
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        if set(np.unique(labels)) - {0.0, 1.0}:
            raise ValueError("labels must be binary (0/1)")
        if len(features) != len(labels) or len(features) == 0:
            raise ValueError("features and labels must be non-empty and aligned")

        positive_rate = float(np.clip(labels.mean(), 1e-6, 1 - 1e-6))
        self._initial_logit = float(np.log(positive_rate / (1.0 - positive_rate)))
        logits = np.full(len(labels), self._initial_logit)
        self._trees = []

        booster = self._booster
        binned = booster._prebin(features)
        for _ in range(self.n_estimators):
            probabilities = _sigmoid(logits)
            residuals = labels - probabilities
            rows = booster._sample_rows(len(labels))
            tree = booster._make_tree()
            booster._fit_tree(tree, features, residuals, rows, binned)
            logits = logits + self.learning_rate * tree.predict(features)
            self._trees.append(tree)
        return self

    def predict_proba(self, features):
        """Probability of the positive class for each row."""
        features = np.asarray(features, dtype=np.float64)
        logits = np.full(len(features), self._initial_logit)
        for tree in self._trees:
            logits = logits + self.learning_rate * tree.predict(features)
        return _sigmoid(logits)

    def predict(self, features, threshold=0.5):
        """Hard 0/1 predictions."""
        return (self.predict_proba(features) >= threshold).astype(np.int64)


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
