"""Downstream task evaluators (paper §VII-A2 / §VII-A4).

Each evaluator takes a *representation model* — any object exposing
``encode(list_of_temporal_paths) -> (N, D) numpy array`` — plus the labelled
task examples, fits the appropriate gradient boosting model on the training
split of the frozen representations, and reports the paper's metrics on the
test split.

Embeddings are obtained through the batched
:class:`~repro.serving.PathEmbeddingService` (length-bucketed micro-batching
plus an LRU cache shared between the train and test encodes — and, via
:func:`evaluate_all_tasks`, across the three tasks).  The service is
numerically faithful to direct encoding, so results are unchanged; pass
``serving=False`` to bypass it, or pass a ready-made service as ``model`` to
control its configuration.

``impl`` / ``binning`` select the downstream engine
(:mod:`repro.downstream.tree`): the default vectorized exact engine
reproduces the reference loops bit-for-bit; ``impl="reference"`` runs the
original Python loops and ``binning="histogram"`` the quantile-binned fast
path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.splits import grouped_train_test_split, train_test_split
from ..serving import PathEmbeddingService
from .gbm import GradientBoostingClassifier, GradientBoostingRegressor
from .metrics import accuracy, grouped_rank_correlation, hit_rate, mae, mape, mare

__all__ = [
    "TravelTimeResult",
    "RankingResult",
    "RecommendationResult",
    "ensure_service",
    "evaluate_travel_time",
    "evaluate_ranking",
    "evaluate_recommendation",
    "evaluate_all_tasks",
]


@dataclass(frozen=True)
class TravelTimeResult:
    """Travel-time estimation metrics (Table III, left)."""

    mae: float
    mare: float
    mape: float

    def as_row(self):
        return {"MAE": self.mae, "MARE": self.mare, "MAPE": self.mape}


@dataclass(frozen=True)
class RankingResult:
    """Path-ranking metrics (Table III, right)."""

    mae: float
    kendall_tau: float
    spearman_rho: float

    def as_row(self):
        return {"MAE": self.mae, "tau": self.kendall_tau, "rho": self.spearman_rho}


@dataclass(frozen=True)
class RecommendationResult:
    """Path-recommendation metrics (Table IV)."""

    accuracy: float
    hit_rate: float

    def as_row(self):
        return {"Acc": self.accuracy, "HR": self.hit_rate}


def ensure_service(model, serving=True):
    """Route a representation model through the path-embedding service.

    A model that already is a :class:`PathEmbeddingService` is used as-is
    (so callers can share one cache across evaluations); with
    ``serving=False`` the raw model is used directly.
    """
    if not serving or isinstance(model, PathEmbeddingService):
        return model
    return PathEmbeddingService(model)


def _encode(model, temporal_paths):
    representations = model.encode(temporal_paths)
    representations = np.asarray(representations, dtype=np.float64)
    if representations.ndim != 2 or len(representations) != len(temporal_paths):
        raise ValueError("representation model returned a malformed matrix")
    return representations


def evaluate_travel_time(model, examples, test_fraction=0.2, seed=0,
                         n_estimators=40, max_depth=3, serving=True,
                         impl="vectorized", binning="exact"):
    """Fit GBR on TPRs -> travel time; report MAE / MARE / MAPE on the test split."""
    train, test = train_test_split(examples, test_fraction=test_fraction, seed=seed)
    if not train or not test:
        raise ValueError("need at least one train and one test example")

    model = ensure_service(model, serving=serving)
    train_x = _encode(model, [e.temporal_path for e in train])
    test_x = _encode(model, [e.temporal_path for e in test])
    train_y = np.array([e.travel_time for e in train])
    test_y = np.array([e.travel_time for e in test])

    regressor = GradientBoostingRegressor(
        n_estimators=n_estimators, max_depth=max_depth, seed=seed,
        impl=impl, binning=binning,
    ).fit(train_x, train_y)
    predictions = regressor.predict(test_x)
    return TravelTimeResult(
        mae=mae(test_y, predictions),
        mare=mare(test_y, predictions),
        mape=mape(test_y, predictions),
    )


def evaluate_ranking(model, examples, test_fraction=0.2, seed=0,
                     n_estimators=40, max_depth=3, serving=True,
                     impl="vectorized", binning="exact"):
    """Fit GBR on TPRs -> ranking score; report MAE / τ / ρ on the test split.

    The split is grouped by trip so the candidate set of one trip never
    straddles train and test, and the rank correlations are computed within
    each test trip's candidate set and averaged.
    """
    groups = [e.group for e in examples]
    train, test = grouped_train_test_split(examples, groups,
                                           test_fraction=test_fraction, seed=seed)
    if not train or not test:
        raise ValueError("need at least one train and one test group")

    model = ensure_service(model, serving=serving)
    train_x = _encode(model, [e.temporal_path for e in train])
    test_x = _encode(model, [e.temporal_path for e in test])
    train_y = np.array([e.score for e in train])
    test_y = np.array([e.score for e in test])
    test_groups = np.array([e.group for e in test])

    regressor = GradientBoostingRegressor(
        n_estimators=n_estimators, max_depth=max_depth, seed=seed,
        impl=impl, binning=binning,
    ).fit(train_x, train_y)
    predictions = regressor.predict(test_x)
    return RankingResult(
        mae=mae(test_y, predictions),
        kendall_tau=grouped_rank_correlation(test_y, predictions, test_groups, "kendall"),
        spearman_rho=grouped_rank_correlation(test_y, predictions, test_groups, "spearman"),
    )


def evaluate_recommendation(model, examples, test_fraction=0.2, seed=0,
                            n_estimators=40, max_depth=3, serving=True,
                            impl="vectorized", binning="exact"):
    """Fit GBC on TPRs -> chosen/not-chosen; report accuracy and hit rate."""
    groups = [e.group for e in examples]
    train, test = grouped_train_test_split(examples, groups,
                                           test_fraction=test_fraction, seed=seed)
    if not train or not test:
        raise ValueError("need at least one train and one test group")

    model = ensure_service(model, serving=serving)
    train_x = _encode(model, [e.temporal_path for e in train])
    test_x = _encode(model, [e.temporal_path for e in test])
    train_y = np.array([e.chosen for e in train])
    test_y = np.array([e.chosen for e in test])

    if len(np.unique(train_y)) < 2:
        # Degenerate labelled split; predict the majority class.
        predictions = np.full(len(test_y), int(round(train_y.mean())))
    else:
        classifier = GradientBoostingClassifier(
            n_estimators=n_estimators, max_depth=max_depth, seed=seed,
            impl=impl, binning=binning,
        ).fit(train_x, train_y)
        predictions = classifier.predict(test_x)
    return RecommendationResult(
        accuracy=accuracy(test_y, predictions),
        hit_rate=hit_rate(test_y, predictions),
    )


def evaluate_all_tasks(model, tasks, test_fraction=0.2, seed=0, n_estimators=40,
                       serving=True, impl="vectorized", binning="exact"):
    """Run all three downstream evaluations against one representation model.

    ``tasks`` is a :class:`~repro.datasets.tasks.TaskDatasets`.  Returns a
    dict with keys ``travel_time``, ``ranking`` and ``recommendation``.

    One :class:`~repro.serving.PathEmbeddingService` is shared across the
    three evaluations, so paths appearing in several task datasets are
    encoded once and served from the cache afterwards.
    """
    model = ensure_service(model, serving=serving)
    return {
        "travel_time": evaluate_travel_time(
            model, tasks.travel_time, test_fraction=test_fraction,
            seed=seed, n_estimators=n_estimators, serving=serving,
            impl=impl, binning=binning),
        "ranking": evaluate_ranking(
            model, tasks.ranking, test_fraction=test_fraction,
            seed=seed, n_estimators=n_estimators, serving=serving,
            impl=impl, binning=binning),
        "recommendation": evaluate_recommendation(
            model, tasks.recommendation, test_fraction=test_fraction,
            seed=seed, n_estimators=n_estimators, serving=serving,
            impl=impl, binning=binning),
    }
