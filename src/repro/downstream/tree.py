"""CART-style regression trees, the weak learners for gradient boosting.

The paper maps frozen TPRs to task labels with scikit-learn's Gradient
Boosting Regressor / Classifier; scikit-learn is unavailable offline, so
:mod:`repro.downstream.gbm` rebuilds the estimator on top of these trees.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionTreeRegressor"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self):
        return self.feature is None


class DecisionTreeRegressor:
    """Least-squares regression tree with depth / leaf-size limits.

    Split finding uses the classic variance-reduction criterion evaluated on
    a bounded number of candidate thresholds per feature, which keeps fitting
    fast on the small embedding matrices used here.
    """

    def __init__(self, max_depth=3, min_samples_leaf=5, max_thresholds=16,
                 max_features=None, seed=0):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._root = None

    # ------------------------------------------------------------------
    def fit(self, features, targets):
        """Fit the tree to ``features`` (N, D) and ``targets`` (N,)."""
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if len(features) != len(targets):
            raise ValueError("features and targets must have the same length")
        if len(features) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self._root = self._grow(features, targets, depth=0)
        return self

    def predict(self, features):
        """Predict targets for ``features`` (N, D)."""
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        features = np.asarray(features, dtype=np.float64)
        return np.array([self._predict_row(row) for row in features])

    # ------------------------------------------------------------------
    def _predict_row(self, row):
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _grow(self, features, targets, depth):
        node = _Node(value=float(targets.mean()))
        if depth >= self.max_depth or len(targets) < 2 * self.min_samples_leaf:
            return node
        if np.allclose(targets, targets[0]):
            return node

        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold = split
        left_mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[left_mask], targets[left_mask], depth + 1)
        node.right = self._grow(features[~left_mask], targets[~left_mask], depth + 1)
        return node

    def _candidate_features(self, num_features):
        if self.max_features is None or self.max_features >= num_features:
            return np.arange(num_features)
        return self.rng.choice(num_features, size=self.max_features, replace=False)

    def _best_split(self, features, targets):
        num_samples, num_features = features.shape
        total_sum = targets.sum()
        total_sq = (targets ** 2).sum()
        parent_impurity = total_sq - total_sum ** 2 / num_samples

        best_gain = 1e-12
        best = None
        for feature in self._candidate_features(num_features):
            column = features[:, feature]
            thresholds = self._thresholds(column)
            if thresholds is None:
                continue
            order = np.argsort(column, kind="stable")
            sorted_column = column[order]
            sorted_targets = targets[order]
            cum_sum = np.cumsum(sorted_targets)
            cum_sq = np.cumsum(sorted_targets ** 2)
            for threshold in thresholds:
                left_count = int(np.searchsorted(sorted_column, threshold, side="right"))
                right_count = num_samples - left_count
                if left_count < self.min_samples_leaf or right_count < self.min_samples_leaf:
                    continue
                left_sum = cum_sum[left_count - 1]
                left_sq = cum_sq[left_count - 1]
                right_sum = total_sum - left_sum
                right_sq = total_sq - left_sq
                left_impurity = left_sq - left_sum ** 2 / left_count
                right_impurity = right_sq - right_sum ** 2 / right_count
                gain = parent_impurity - left_impurity - right_impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold))
        return best

    def _thresholds(self, column):
        unique = np.unique(column)
        if len(unique) < 2:
            return None
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if len(midpoints) > self.max_thresholds:
            indices = np.linspace(0, len(midpoints) - 1, self.max_thresholds).astype(int)
            midpoints = midpoints[indices]
        return midpoints
