"""CART-style regression trees, the weak learners for gradient boosting.

The paper maps frozen TPRs to task labels with scikit-learn's Gradient
Boosting Regressor / Classifier; scikit-learn is unavailable offline, so
:mod:`repro.downstream.gbm` rebuilds the estimator on top of these trees.

Two implementations share one public class:

* ``impl="vectorized"`` (default) finds the best split of a node with one
  cumulative-sum scan over *all* candidate features simultaneously and
  flattens the fitted tree into ``(feature, threshold, left, right, value)``
  arrays, so ``predict`` is a batch traversal with no per-row Python.  With
  ``binning="exact"`` it scans the same midpoint thresholds as the
  reference implementation and produces a bit-identical tree; with
  ``binning="histogram"`` features are quantile-binned once per ``fit``
  (or once per *boosting run* — see :class:`HistogramBins`) and every node
  split reduces to a weighted ``bincount`` over the bin codes.
* ``impl="reference"`` is the original per-threshold Python loop and
  per-row ``predict`` walk, kept as the equivalence oracle.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionTreeRegressor", "HistogramBins"]

_MIN_GAIN = 1e-12


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value

    @property
    def is_leaf(self):
        return self.feature is None


class HistogramBins:
    """Per-feature quantile bin edges and codes, computed once and reused.

    ``codes[i, f]`` is the bin index of ``features[i, f]``: the number of
    edges of feature ``f`` strictly below the value.  A split "code <= b"
    is exactly "value <= edges[f][b]", so fitted trees store real-valued
    thresholds and ``predict`` never needs the binning again.

    Gradient boosting fits one tree per round on the *same* feature matrix,
    so the booster builds this object once and passes it to every
    ``tree.fit`` via ``binned=``.
    """

    def __init__(self, features, max_bins=64):
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        num_samples, num_features = features.shape
        quantiles = np.arange(1, max_bins) / max_bins
        raw_edges = np.quantile(features, quantiles, axis=0)  # (max_bins-1, D)

        self.num_features = num_features
        self.max_bins = max_bins
        self.codes = np.empty((num_samples, num_features), dtype=np.int64)
        edge_lists = []
        for feature in range(num_features):
            edges = np.unique(raw_edges[:, feature])
            edge_lists.append(edges)
            self.codes[:, feature] = np.searchsorted(
                edges, features[:, feature], side="left")
        self.num_edges = np.array([len(edges) for edges in edge_lists])
        # Padded (D, E_max) edge matrix; +inf pads are masked out of scans.
        width = max(int(self.num_edges.max()), 1)
        self.edges = np.full((num_features, width), np.inf)
        for feature, edges in enumerate(edge_lists):
            self.edges[feature, :len(edges)] = edges

    def take(self, rows):
        """A view of these bins restricted to a row subset (same edges).

        Used by subsampled boosting rounds: the bin edges stay those of the
        full training matrix, only the codes are sliced.
        """
        subset = object.__new__(HistogramBins)
        subset.num_features = self.num_features
        subset.max_bins = self.max_bins
        subset.codes = self.codes[rows]
        subset.num_edges = self.num_edges
        subset.edges = self.edges
        return subset


class DecisionTreeRegressor:
    """Least-squares regression tree with depth / leaf-size limits.

    Split finding uses the classic variance-reduction criterion evaluated on
    a bounded number of candidate thresholds per feature, which keeps fitting
    fast on the small embedding matrices used here.

    Parameters beyond the historical ones:

    impl:
        ``"vectorized"`` (default) or ``"reference"`` (the original Python
        loops, the equivalence oracle).
    binning:
        ``"exact"`` (default) scans midpoints of unique values — identical
        splits to the reference; ``"histogram"`` pre-bins features into
        quantile histograms once per fit and scans bin edges.
    max_bins:
        Histogram resolution for ``binning="histogram"``.
    """

    def __init__(self, max_depth=3, min_samples_leaf=5, max_thresholds=16,
                 max_features=None, seed=0, impl="vectorized", binning="exact",
                 max_bins=64):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if impl not in ("vectorized", "reference"):
            raise ValueError(f"unknown impl {impl!r}")
        if binning not in ("exact", "histogram"):
            raise ValueError(f"unknown binning {binning!r}")
        if impl == "reference" and binning != "exact":
            raise ValueError("impl='reference' only supports binning='exact'; "
                             "the loop oracle has no histogram path")
        if max_bins < 2:
            raise ValueError("max_bins must be >= 2")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.max_features = max_features
        self.impl = impl
        self.binning = binning
        self.max_bins = max_bins
        self.rng = np.random.default_rng(seed)
        self._root = None
        # Flattened tree (vectorized impl): feature is -1 at leaves.
        self._feature = None
        self._threshold = None
        self._left = None
        self._right = None
        self._value = None

    # ------------------------------------------------------------------
    def fit(self, features, targets, binned=None):
        """Fit the tree to ``features`` (N, D) and ``targets`` (N,).

        ``binned`` optionally supplies a precomputed :class:`HistogramBins`
        over exactly these features (histogram binning only), so boosting
        rounds share one binning pass.
        """
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if len(features) != len(targets):
            raise ValueError("features and targets must have the same length")
        if len(features) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        if self.impl == "reference":
            if binned is not None:
                raise ValueError("impl='reference' cannot use prebinned features")
            self._root = self._reference_grow(features, targets, depth=0)
            return self

        if self.binning == "histogram":
            if binned is None:
                binned = HistogramBins(features, max_bins=self.max_bins)
            elif binned.codes.shape != features.shape:
                raise ValueError("binned features do not match the feature matrix")
        nodes = []
        self._grow_vectorized(features, targets, np.arange(len(targets)),
                              depth=0, binned=binned, nodes=nodes)
        self._feature = np.array([node[0] for node in nodes], dtype=np.int64)
        self._threshold = np.array([node[1] for node in nodes], dtype=np.float64)
        self._left = np.array([node[2] for node in nodes], dtype=np.int64)
        self._right = np.array([node[3] for node in nodes], dtype=np.int64)
        self._value = np.array([node[4] for node in nodes], dtype=np.float64)
        return self

    def predict(self, features):
        """Predict targets for ``features`` (N, D)."""
        features = np.asarray(features, dtype=np.float64)
        if self._feature is not None:
            return self._predict_flattened(features)
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        return self._reference_predict(features)

    # ------------------------------------------------------------------
    # Vectorized implementation
    # ------------------------------------------------------------------
    def _predict_flattened(self, features):
        """Batch traversal of the flattened tree: one vector step per level."""
        node = np.zeros(len(features), dtype=np.int64)
        for _ in range(self.max_depth):
            split_feature = self._feature[node]
            active = np.flatnonzero(split_feature >= 0)
            if len(active) == 0:
                break
            active_nodes = node[active]
            go_left = (features[active, split_feature[active]]
                       <= self._threshold[active_nodes])
            node[active] = np.where(
                go_left, self._left[active_nodes], self._right[active_nodes])
        return self._value[node]

    def _grow_vectorized(self, features, targets, rows, depth, binned, nodes):
        """Grow depth-first (left before right, matching the reference so the
        ``max_features`` RNG draws align) and append flattened node rows.

        Returns the index of the node created for ``rows``.
        """
        node_targets = targets[rows]
        index = len(nodes)
        nodes.append([-1, np.nan, -1, -1, float(node_targets.mean())])
        if depth >= self.max_depth or len(rows) < 2 * self.min_samples_leaf:
            return index
        if np.allclose(node_targets, node_targets[0]):
            return index

        if binned is None:
            split = self._best_split_exact(features[rows], node_targets)
        else:
            split = self._best_split_histogram(binned, rows, node_targets)
        if split is None:
            return index
        feature, threshold = split
        go_left = features[rows, feature] <= threshold
        nodes[index][0] = feature
        nodes[index][1] = threshold
        nodes[index][2] = self._grow_vectorized(
            features, targets, rows[go_left], depth + 1, binned, nodes)
        nodes[index][3] = self._grow_vectorized(
            features, targets, rows[~go_left], depth + 1, binned, nodes)
        return index

    def _best_split_exact(self, features, targets):
        """Best (feature, threshold) via one cumulative-sum scan for all
        candidate features at once, over the same deduplicated midpoint
        thresholds as the reference implementation.
        """
        num_samples, _ = features.shape
        candidates = self._candidate_features(features.shape[1])
        columns = features[:, candidates]

        order = np.argsort(columns, axis=0, kind="stable")
        sorted_columns = np.take_along_axis(columns, order, axis=0)
        sorted_targets = targets[order]
        cum_sum = np.cumsum(sorted_targets, axis=0)
        cum_sq = np.cumsum(sorted_targets ** 2, axis=0)

        # Candidate thresholds per feature: midpoints of adjacent unique
        # values, subsampled to max_thresholds, deduplicated.  The left count
        # of the midpoint between unique values u_i and u_{i+1} is the run
        # boundary itself — except when the float midpoint rounds up onto
        # u_{i+1} exactly, where ``searchsorted(..., side="right")`` (the
        # reference semantics) also takes u_{i+1}'s ties to the left.
        feature_slots = []
        left_count_chunks = []
        threshold_chunks = []
        for slot in range(len(candidates)):
            column = sorted_columns[:, slot]
            boundaries = np.flatnonzero(column[1:] != column[:-1]) + 1
            if len(boundaries) == 0:
                continue
            midpoints = (column[boundaries - 1] + column[boundaries]) / 2.0
            next_boundaries = np.append(boundaries[1:], num_samples)
            left_counts_full = np.where(
                midpoints >= column[boundaries], next_boundaries, boundaries)
            if len(midpoints) > self.max_thresholds:
                keep = np.unique(np.linspace(
                    0, len(midpoints) - 1, self.max_thresholds).astype(int))
                midpoints = midpoints[keep]
                left_counts_full = left_counts_full[keep]
            if len(midpoints) > 1:
                # Dedupe float-rounded midpoint collisions (keep the first,
                # matching the reference's strict-improvement tie-break;
                # equal values carry equal left counts).
                first = np.empty(len(midpoints), dtype=bool)
                first[0] = True
                np.not_equal(midpoints[1:], midpoints[:-1], out=first[1:])
                midpoints = midpoints[first]
                left_counts_full = left_counts_full[first]
            feature_slots.append(np.full(len(midpoints), slot, dtype=np.int64))
            left_count_chunks.append(left_counts_full)
            threshold_chunks.append(midpoints)
        if not feature_slots:
            return None
        slots = np.concatenate(feature_slots)
        left_counts = np.concatenate(left_count_chunks)
        thresholds = np.concatenate(threshold_chunks)

        # Scalar totals computed exactly as the reference does (np.sum's
        # pairwise order, not the sequential cumsum tail) so gains are
        # bit-identical and the same split wins every tie.
        total_sum = targets.sum()
        total_sq = (targets ** 2).sum()
        parent_impurity = total_sq - total_sum ** 2 / num_samples
        right_counts = num_samples - left_counts
        left_sum = cum_sum[left_counts - 1, slots]
        left_sq = cum_sq[left_counts - 1, slots]
        left_impurity = left_sq - left_sum ** 2 / left_counts
        right_impurity = ((total_sq - left_sq)
                          - (total_sum - left_sum) ** 2 / right_counts)
        gains = parent_impurity - left_impurity - right_impurity
        gains[(left_counts < self.min_samples_leaf)
              | (right_counts < self.min_samples_leaf)] = -np.inf
        best = int(np.argmax(gains))
        if gains[best] <= _MIN_GAIN:
            return None
        return int(candidates[slots[best]]), float(thresholds[best])

    def _best_split_histogram(self, binned, rows, targets):
        """Best split from per-(feature, bin) count/sum/sq histograms.

        One flattened ``bincount`` builds the histograms for every candidate
        feature at once; a cumulative sum over the bin axis then yields the
        left-side statistics of every candidate edge simultaneously.
        """
        num_samples = len(rows)
        candidates = self._candidate_features(binned.num_features)
        codes = binned.codes[np.ix_(rows, candidates)]
        num_features = len(candidates)
        bins = binned.max_bins

        offsets = codes + np.arange(num_features, dtype=np.int64) * bins
        flat = offsets.ravel()
        tiled_targets = np.repeat(targets, num_features)
        length = num_features * bins
        counts = np.bincount(flat, minlength=length).reshape(num_features, bins)
        sums = np.bincount(flat, weights=tiled_targets,
                           minlength=length).reshape(num_features, bins)
        squares = np.bincount(flat, weights=tiled_targets * tiled_targets,
                              minlength=length).reshape(num_features, bins)

        cum_counts = np.cumsum(counts, axis=1)
        cum_sums = np.cumsum(sums, axis=1)
        cum_squares = np.cumsum(squares, axis=1)

        total_sum = cum_sums[:, -1:]
        total_sq = cum_squares[:, -1:]
        parent_impurity = total_sq - total_sum ** 2 / num_samples

        # Candidate b means "code <= b goes left", i.e. value <= edges[f][b];
        # only positions with a real edge are valid.
        edge_width = binned.edges.shape[1]
        left_counts = cum_counts[:, :edge_width]
        right_counts = num_samples - left_counts
        left_sums = cum_sums[:, :edge_width]
        left_squares = cum_squares[:, :edge_width]
        with np.errstate(divide="ignore", invalid="ignore"):
            left_impurity = left_squares - left_sums ** 2 / left_counts
            right_impurity = ((total_sq - left_squares)
                              - (total_sum - left_sums) ** 2 / right_counts)
            gains = parent_impurity - left_impurity - right_impurity
        invalid = ((np.arange(edge_width) >= binned.num_edges[candidates, None])
                   | (left_counts < self.min_samples_leaf)
                   | (right_counts < self.min_samples_leaf))
        gains = np.where(invalid, -np.inf, gains)
        best = int(np.argmax(gains))
        if not np.isfinite(gains.ravel()[best]) or gains.ravel()[best] <= _MIN_GAIN:
            return None
        slot, edge = divmod(best, edge_width)
        feature = int(candidates[slot])
        return feature, float(binned.edges[feature, edge])

    # ------------------------------------------------------------------
    # Reference implementation (the original Python loops)
    # ------------------------------------------------------------------
    def _reference_predict(self, features):
        return np.array([self._predict_row(row) for row in features])

    def _predict_row(self, row):
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def _reference_grow(self, features, targets, depth):
        node = _Node(value=float(targets.mean()))
        if depth >= self.max_depth or len(targets) < 2 * self.min_samples_leaf:
            return node
        if np.allclose(targets, targets[0]):
            return node

        split = self._best_split(features, targets)
        if split is None:
            return node
        feature, threshold = split
        left_mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._reference_grow(features[left_mask], targets[left_mask], depth + 1)
        node.right = self._reference_grow(features[~left_mask], targets[~left_mask], depth + 1)
        return node

    def _candidate_features(self, num_features):
        if self.max_features is None or self.max_features >= num_features:
            return np.arange(num_features)
        return self.rng.choice(num_features, size=self.max_features, replace=False)

    def _best_split(self, features, targets):
        num_samples, num_features = features.shape
        total_sum = targets.sum()
        total_sq = (targets ** 2).sum()
        parent_impurity = total_sq - total_sum ** 2 / num_samples

        best_gain = _MIN_GAIN
        best = None
        for feature in self._candidate_features(num_features):
            column = features[:, feature]
            thresholds = self._thresholds(column)
            if thresholds is None:
                continue
            order = np.argsort(column, kind="stable")
            sorted_column = column[order]
            sorted_targets = targets[order]
            cum_sum = np.cumsum(sorted_targets)
            cum_sq = np.cumsum(sorted_targets ** 2)
            for threshold in thresholds:
                left_count = int(np.searchsorted(sorted_column, threshold, side="right"))
                right_count = num_samples - left_count
                if left_count < self.min_samples_leaf or right_count < self.min_samples_leaf:
                    continue
                left_sum = cum_sum[left_count - 1]
                left_sq = cum_sq[left_count - 1]
                right_sum = total_sum - left_sum
                right_sq = total_sq - left_sq
                left_impurity = left_sq - left_sum ** 2 / left_count
                right_impurity = right_sq - right_sum ** 2 / right_count
                gain = parent_impurity - left_impurity - right_impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (int(feature), float(threshold))
        return best

    def _thresholds(self, column):
        unique = np.unique(column)
        if len(unique) < 2:
            return None
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if len(midpoints) > self.max_thresholds:
            indices = np.unique(np.linspace(
                0, len(midpoints) - 1, self.max_thresholds).astype(int))
            midpoints = midpoints[indices]
        # Dedupe candidate values: the float midpoint of near-adjacent
        # uniques can round onto a neighbouring midpoint (or the unique value
        # itself), and a duplicated candidate is scanned twice per node for
        # no gain.  Equal values give equal splits, so dropping repeats
        # cannot change the chosen split.
        return np.unique(midpoints)
