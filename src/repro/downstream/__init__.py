"""Downstream tasks: gradient boosting models, metrics, task evaluators."""

from .gbm import GradientBoostingClassifier, GradientBoostingRegressor
from .metrics import (
    accuracy,
    grouped_rank_correlation,
    hit_rate,
    kendall_tau,
    mae,
    mape,
    mare,
    spearman_rho,
)
from .tasks import (
    RankingResult,
    RecommendationResult,
    TravelTimeResult,
    evaluate_all_tasks,
    evaluate_ranking,
    evaluate_recommendation,
    evaluate_travel_time,
)
from .tree import DecisionTreeRegressor, HistogramBins

__all__ = [
    "DecisionTreeRegressor",
    "HistogramBins",
    "GradientBoostingRegressor",
    "GradientBoostingClassifier",
    "mae",
    "mare",
    "mape",
    "kendall_tau",
    "spearman_rho",
    "grouped_rank_correlation",
    "accuracy",
    "hit_rate",
    "TravelTimeResult",
    "RankingResult",
    "RecommendationResult",
    "evaluate_travel_time",
    "evaluate_ranking",
    "evaluate_recommendation",
    "evaluate_all_tasks",
]
