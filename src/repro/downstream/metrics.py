"""Evaluation metrics for the three downstream tasks (paper Eq. 14–16).

Regression: MAE, MARE, MAPE.  Ranking: Kendall's τ and Spearman's ρ computed
per query group and averaged.  Classification: accuracy and hit rate.

The rank correlations are vectorized: ``kendall_tau`` counts discordant
pairs with merge-sort inversion counting (Knight's O(n log n) algorithm
instead of the O(n²) pair loop), ``_ranks`` averages ties with one
``np.unique(return_inverse)`` + ``bincount`` pass, and
``grouped_rank_correlation`` sorts by group once instead of building a
boolean mask per group.  The original loop implementations are kept as
``_reference_*`` oracles for the equivalence tests.

``spearman_rho`` is additionally *tie-correct*: it computes the Pearson
correlation of the average ranks.  The historical ``1 − 6Σd²/(n(n²−1))``
shortcut (kept as :func:`_reference_spearman_rho`) is only valid without
ties — e.g. for ``truth=[1,1,2,3]``, ``pred=[1,2,2,3]`` it returns 0.85
where Pearson-on-ranks (and :func:`scipy.stats.spearmanr`) give 5/6 ≈
0.8333.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mae",
    "mare",
    "mape",
    "kendall_tau",
    "spearman_rho",
    "grouped_rank_correlation",
    "accuracy",
    "hit_rate",
]


def _validate(truth, prediction):
    truth = np.asarray(truth, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    if truth.shape != prediction.shape:
        raise ValueError(f"shape mismatch: {truth.shape} vs {prediction.shape}")
    if truth.size == 0:
        raise ValueError("metrics need at least one example")
    return truth, prediction


def _validate_labels(truth, prediction):
    truth = np.asarray(truth)
    prediction = np.asarray(prediction)
    if truth.shape != prediction.shape:
        raise ValueError(f"shape mismatch: {truth.shape} vs {prediction.shape}")
    if truth.size == 0:
        raise ValueError("metrics need at least one example")
    return truth.astype(np.int64), prediction.astype(np.int64)


def mae(truth, prediction):
    """Mean absolute error."""
    truth, prediction = _validate(truth, prediction)
    return float(np.mean(np.abs(truth - prediction)))


def mare(truth, prediction):
    """Mean absolute relative error: sum |err| / sum |truth|."""
    truth, prediction = _validate(truth, prediction)
    denominator = np.sum(np.abs(truth))
    if denominator == 0:
        raise ValueError("MARE undefined when all ground-truth values are zero")
    return float(np.sum(np.abs(truth - prediction)) / denominator)


def mape(truth, prediction, eps=1e-9):
    """Mean absolute percentage error (in percent)."""
    truth, prediction = _validate(truth, prediction)
    return float(np.mean(np.abs((truth - prediction) / np.maximum(np.abs(truth), eps))) * 100.0)


# ----------------------------------------------------------------------
# Rank correlations
# ----------------------------------------------------------------------
def _count_inversions(values, leaf_size=32):
    """Number of index pairs ``i < j`` with ``values[i] > values[j]`` (strict).

    Bottom-up merge counting: leaves are handled with one vectorized pairwise
    comparison, then sorted runs are merged pairwise, counting cross-run
    inversions with one ``searchsorted`` per merge.  O(n log n) comparisons
    with O(n / leaf_size) Python-level iterations.
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n < 2:
        return 0
    # Pad to a multiple of the leaf size with +inf: a padded element never
    # precedes a real one and never exceeds itself, so it adds no inversions.
    padded_length = -(-n // leaf_size) * leaf_size
    padded = np.full(padded_length, np.inf)
    padded[:n] = values
    blocks = padded.reshape(-1, leaf_size)

    upper_i, upper_j = np.triu_indices(leaf_size, k=1)
    inversions = int(np.count_nonzero(blocks[:, upper_i] > blocks[:, upper_j]))

    runs = list(np.sort(blocks, axis=1))
    while len(runs) > 1:
        merged_runs = []
        for index in range(0, len(runs) - 1, 2):
            left, right = runs[index], runs[index + 1]
            inversions += int(
                np.sum(len(left) - np.searchsorted(left, right, side="right")))
            merged_runs.append(np.sort(np.concatenate([left, right])))
        if len(runs) % 2:
            merged_runs.append(runs[-1])
        runs = merged_runs
    return inversions


def _sorted_tie_term(sorted_values):
    """``Σ t(t-1)/2`` over runs of equal values in an already-sorted array."""
    n = len(sorted_values)
    boundaries = np.flatnonzero(sorted_values[1:] != sorted_values[:-1]) + 1
    counts = np.diff(np.concatenate(([0], boundaries, [n])))
    return int(np.sum(counts * (counts - 1) // 2))


def kendall_tau(truth, prediction):
    """Kendall rank correlation coefficient (Eq. 15, concordant-discordant form).

    Knight's algorithm: sort lexicographically by ``(truth, prediction)``,
    count discordant pairs as merge-sort inversions of the prediction order,
    and correct for ties with the pair-count identity
    ``C − D = n0 − n1 − n2 + n3 − 2·D``.  Exactly equal to the O(n²) pair
    loop (kept as :func:`_reference_kendall_tau`), including the τ-a
    denominator ``n(n−1)/2``.
    """
    truth, prediction = _validate(truth, prediction)
    n = len(truth)
    if n < 2:
        return 0.0
    order = np.lexsort((prediction, truth))
    sorted_truth = truth[order]
    sorted_prediction = prediction[order]

    total_pairs = n * (n - 1) // 2
    truth_ties = _sorted_tie_term(sorted_truth)
    prediction_ties = _sorted_tie_term(np.sort(prediction))
    joint_breaks = np.flatnonzero(
        (sorted_truth[1:] != sorted_truth[:-1])
        | (sorted_prediction[1:] != sorted_prediction[:-1])) + 1
    joint_counts = np.diff(np.concatenate(([0], joint_breaks, [n])))
    joint_ties = int(np.sum(joint_counts * (joint_counts - 1) // 2))

    # With truth ascending and prediction ascending inside truth-tie groups,
    # every prediction inversion is exactly one discordant pair.
    discordant = _count_inversions(sorted_prediction)
    concordant_minus_discordant = (
        total_pairs - truth_ties - prediction_ties + joint_ties - 2 * discordant)
    return float(concordant_minus_discordant / total_pairs)


def _reference_kendall_tau(truth, prediction):
    """O(n²) pair-loop oracle for :func:`kendall_tau`."""
    truth, prediction = _validate(truth, prediction)
    n = len(truth)
    if n < 2:
        return 0.0
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = np.sign(truth[i] - truth[j])
            b = np.sign(prediction[i] - prediction[j])
            product = a * b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    return float((concordant - discordant) / (n * (n - 1) / 2.0))


def _ranks(values):
    """Average ranks (ties share the mean rank), 1-based."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    _, inverse, counts = np.unique(values, return_inverse=True, return_counts=True)
    rank_sums = np.bincount(inverse, weights=ranks)
    return (rank_sums / counts)[inverse]


def _reference_ranks(values):
    """Per-tie rescan oracle for :func:`_ranks`."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman_rho(truth, prediction):
    """Spearman rank correlation: Pearson correlation of the average ranks.

    Tie-correct, unlike the ``1 − 6Σd²/(n(n²−1))`` shortcut (kept as
    :func:`_reference_spearman_rho`), which assumes all ranks are distinct.
    Returns 0.0 when either input is constant (the correlation is undefined
    there; scipy returns NaN).
    """
    truth, prediction = _validate(truth, prediction)
    n = len(truth)
    if n < 2:
        return 0.0
    rank_truth = _ranks(truth)
    rank_prediction = _ranks(prediction)
    centered_truth = rank_truth - rank_truth.mean()
    centered_prediction = rank_prediction - rank_prediction.mean()
    denominator = np.sqrt(
        np.sum(centered_truth ** 2) * np.sum(centered_prediction ** 2))
    if denominator == 0.0:
        return 0.0
    return float(np.sum(centered_truth * centered_prediction) / denominator)


def _reference_spearman_rho(truth, prediction):
    """No-ties rank-difference shortcut, the pre-fix behaviour.

    Only agrees with :func:`spearman_rho` when both inputs are tie-free;
    kept as the equivalence oracle for that regime.
    """
    truth, prediction = _validate(truth, prediction)
    n = len(truth)
    if n < 2:
        return 0.0
    d = _reference_ranks(truth) - _reference_ranks(prediction)
    return float(1.0 - 6.0 * np.sum(d ** 2) / (n * (n ** 2 - 1)))


_STATISTICS = {"kendall": kendall_tau, "spearman": spearman_rho}


def grouped_rank_correlation(truth, prediction, groups, statistic="kendall"):
    """Average a rank correlation over query groups (candidate sets).

    Groups with fewer than two candidates are skipped, matching how the path
    ranking evaluation works: correlations only make sense within the
    candidate set of one trip.  The arrays are sorted by group once and the
    correlation runs on contiguous slices — no per-group boolean mask.
    """
    if statistic not in _STATISTICS:
        raise ValueError(f"unknown statistic {statistic!r}; expected one of "
                         f"{sorted(_STATISTICS)}")
    truth = np.asarray(truth, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    groups = np.asarray(groups)
    if not (truth.shape == prediction.shape == groups.shape):
        raise ValueError(f"shape mismatch: {truth.shape} vs {prediction.shape} "
                         f"vs {groups.shape}")
    func = _STATISTICS[statistic]

    order = np.argsort(groups, kind="stable")
    sorted_truth = truth[order]
    sorted_prediction = prediction[order]
    sorted_groups = groups[order]
    boundaries = np.flatnonzero(sorted_groups[1:] != sorted_groups[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    stops = np.concatenate((boundaries, [len(sorted_groups)]))

    values = []
    for start, stop in zip(starts, stops):
        if stop - start < 2:
            continue
        values.append(func(sorted_truth[start:stop], sorted_prediction[start:stop]))
    return float(np.mean(values)) if values else 0.0


def _reference_grouped_rank_correlation(truth, prediction, groups,
                                        statistic="kendall"):
    """Mask-per-group oracle for :func:`grouped_rank_correlation`.

    Composes the *vectorized* per-group statistics so it isolates the
    grouping strategy; pair it with the ``_reference_*`` statistics directly
    to reproduce the historical engine end to end.
    """
    truth = np.asarray(truth, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    groups = np.asarray(groups)
    func = _STATISTICS[statistic]
    values = []
    for group in np.unique(groups):
        mask = groups == group
        if mask.sum() < 2:
            continue
        values.append(func(truth[mask], prediction[mask]))
    return float(np.mean(values)) if values else 0.0


def accuracy(truth, prediction):
    """Classification accuracy (Eq. 16)."""
    truth, prediction = _validate_labels(truth, prediction)
    return float(np.mean(truth == prediction))


def hit_rate(truth, prediction):
    """Hit rate = recall of the positive class: TP / (TP + FN) (Eq. 16)."""
    truth, prediction = _validate_labels(truth, prediction)
    positives = truth == 1
    if positives.sum() == 0:
        return 0.0
    return float(np.mean(prediction[positives] == 1))
