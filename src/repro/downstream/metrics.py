"""Evaluation metrics for the three downstream tasks (paper Eq. 14–16).

Regression: MAE, MARE, MAPE.  Ranking: Kendall's τ and Spearman's ρ computed
per query group and averaged.  Classification: accuracy and hit rate.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mae",
    "mare",
    "mape",
    "kendall_tau",
    "spearman_rho",
    "grouped_rank_correlation",
    "accuracy",
    "hit_rate",
]


def _validate(truth, prediction):
    truth = np.asarray(truth, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    if truth.shape != prediction.shape:
        raise ValueError(f"shape mismatch: {truth.shape} vs {prediction.shape}")
    if truth.size == 0:
        raise ValueError("metrics need at least one example")
    return truth, prediction


def mae(truth, prediction):
    """Mean absolute error."""
    truth, prediction = _validate(truth, prediction)
    return float(np.mean(np.abs(truth - prediction)))


def mare(truth, prediction):
    """Mean absolute relative error: sum |err| / sum |truth|."""
    truth, prediction = _validate(truth, prediction)
    denominator = np.sum(np.abs(truth))
    if denominator == 0:
        raise ValueError("MARE undefined when all ground-truth values are zero")
    return float(np.sum(np.abs(truth - prediction)) / denominator)


def mape(truth, prediction, eps=1e-9):
    """Mean absolute percentage error (in percent)."""
    truth, prediction = _validate(truth, prediction)
    return float(np.mean(np.abs((truth - prediction) / np.maximum(np.abs(truth), eps))) * 100.0)


def kendall_tau(truth, prediction):
    """Kendall rank correlation coefficient (Eq. 15, concordant-discordant form)."""
    truth, prediction = _validate(truth, prediction)
    n = len(truth)
    if n < 2:
        return 0.0
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            a = np.sign(truth[i] - truth[j])
            b = np.sign(prediction[i] - prediction[j])
            product = a * b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    return float((concordant - discordant) / (n * (n - 1) / 2.0))


def _ranks(values):
    """Average ranks (ties share the mean rank), 1-based."""
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ties.
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def spearman_rho(truth, prediction):
    """Spearman rank correlation coefficient (Eq. 15, rank-difference form)."""
    truth, prediction = _validate(truth, prediction)
    n = len(truth)
    if n < 2:
        return 0.0
    rank_truth = _ranks(truth)
    rank_prediction = _ranks(prediction)
    d = rank_truth - rank_prediction
    return float(1.0 - 6.0 * np.sum(d ** 2) / (n * (n ** 2 - 1)))


def grouped_rank_correlation(truth, prediction, groups, statistic="kendall"):
    """Average a rank correlation over query groups (candidate sets).

    Groups with fewer than two candidates are skipped, matching how the path
    ranking evaluation works: correlations only make sense within the
    candidate set of one trip.
    """
    truth = np.asarray(truth, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    groups = np.asarray(groups)
    func = kendall_tau if statistic == "kendall" else spearman_rho
    values = []
    for group in np.unique(groups):
        mask = groups == group
        if mask.sum() < 2:
            continue
        values.append(func(truth[mask], prediction[mask]))
    return float(np.mean(values)) if values else 0.0


def accuracy(truth, prediction):
    """Classification accuracy (Eq. 16)."""
    truth = np.asarray(truth, dtype=np.int64)
    prediction = np.asarray(prediction, dtype=np.int64)
    if truth.shape != prediction.shape or truth.size == 0:
        raise ValueError("accuracy needs equal-length, non-empty arrays")
    return float(np.mean(truth == prediction))


def hit_rate(truth, prediction):
    """Hit rate = recall of the positive class: TP / (TP + FN) (Eq. 16)."""
    truth = np.asarray(truth, dtype=np.int64)
    prediction = np.asarray(prediction, dtype=np.int64)
    positives = truth == 1
    if positives.sum() == 0:
        return 0.0
    return float(np.mean(prediction[positives] == 1))
