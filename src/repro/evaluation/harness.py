"""Table/figure runners: one function per experiment in the paper's §VII.

Every function returns plain dictionaries (method -> metrics) so benchmarks
can both print the table and assert on its *shape* (who wins, orderings)
without depending on absolute values.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..datasets.splits import grouped_train_test_split, train_test_split
from ..downstream.metrics import (
    accuracy,
    grouped_rank_correlation,
    hit_rate,
    mae,
    mape,
    mare,
)
from ..downstream.tasks import (
    ensure_service,
    evaluate_ranking,
    evaluate_recommendation,
    evaluate_travel_time,
)
from .experiment import (
    EDGE_SUM_BASELINES,
    SUPERVISED_BASELINES,
    UNSUPERVISED_BASELINES,
    build_dataset,
    build_supervised_baseline,
    fit_unsupervised_baseline,
    fit_wsccl,
)

__all__ = [
    "representation_task_results",
    "supervised_travel_time_results",
    "supervised_ranking_results",
    "run_table2_dataset_statistics",
    "run_table3_overall",
    "run_table4_recommendation",
    "run_table5_curriculum_design",
    "run_table6_ablation",
    "run_table7_weak_labels",
    "run_table8_temporal",
    "run_table9_pim_temporal",
    "run_table10_supervised_transfer",
    "run_table11_lambda",
    "run_table12_metasets",
    "run_fig7_pretraining",
]


# ----------------------------------------------------------------------
# Shared evaluation helpers
# ----------------------------------------------------------------------
def representation_task_results(model, city, config, tasks=("travel_time", "ranking"),
                                serving=True, impl="vectorized", binning="exact"):
    """GBR/GBC evaluation of a frozen representation model on selected tasks.

    Embeddings are obtained through one shared
    :class:`~repro.serving.PathEmbeddingService` per model, so paths that
    recur across the selected tasks hit the embedding cache instead of being
    re-encoded; ``serving=False`` evaluates the raw model directly.

    ``impl`` / ``binning`` pick the downstream GBM engine (vectorized exact
    by default, which matches the reference loops bit-for-bit).
    """
    model = ensure_service(model, serving=serving)
    results = {}
    if "travel_time" in tasks:
        results["travel_time"] = evaluate_travel_time(
            model, city.tasks.travel_time, test_fraction=config.test_fraction,
            seed=config.seed, n_estimators=config.n_estimators, serving=serving,
            impl=impl, binning=binning,
        ).as_row()
    if "ranking" in tasks:
        results["ranking"] = evaluate_ranking(
            model, city.tasks.ranking, test_fraction=config.test_fraction,
            seed=config.seed, n_estimators=config.n_estimators, serving=serving,
            impl=impl, binning=binning,
        ).as_row()
    if "recommendation" in tasks:
        results["recommendation"] = evaluate_recommendation(
            model, city.tasks.recommendation, test_fraction=config.test_fraction,
            seed=config.seed, n_estimators=config.n_estimators, serving=serving,
            impl=impl, binning=binning,
        ).as_row()
    return results


def supervised_travel_time_results(model, city, config, train_limit=None):
    """Train a supervised baseline on travel-time labels and score the test split."""
    train, test = train_test_split(
        city.tasks.travel_time, test_fraction=config.test_fraction, seed=config.seed)
    if train_limit is not None:
        train = train[:train_limit]
    model.fit_supervised(train, "travel_time", city=city, max_batches=config.max_batches)
    truth = np.array([e.travel_time for e in test])
    predictions = model.predict([e.temporal_path for e in test])
    return {"MAE": mae(truth, predictions), "MARE": mare(truth, predictions),
            "MAPE": mape(truth, predictions)}


def supervised_ranking_results(model, city, config, train_limit=None):
    """Train a supervised baseline on ranking labels and score the test split."""
    groups = [e.group for e in city.tasks.ranking]
    train, test = grouped_train_test_split(
        city.tasks.ranking, groups, test_fraction=config.test_fraction, seed=config.seed)
    if train_limit is not None:
        train = train[:train_limit]
    model.fit_supervised(train, "ranking", city=city, max_batches=config.max_batches)
    truth = np.array([e.score for e in test])
    predictions = model.predict([e.temporal_path for e in test])
    test_groups = np.array([e.group for e in test])
    return {
        "MAE": mae(truth, predictions),
        "tau": grouped_rank_correlation(truth, predictions, test_groups, "kendall"),
        "rho": grouped_rank_correlation(truth, predictions, test_groups, "spearman"),
    }


# ----------------------------------------------------------------------
# Table II — dataset statistics
# ----------------------------------------------------------------------
def run_table2_dataset_statistics(config, cities=("aalborg", "harbin", "chengdu")):
    """Regenerate the dataset statistics table."""
    rows = {}
    for name in cities:
        city = build_dataset(name, config)
        rows[name] = city.statistics()
    return rows


# ----------------------------------------------------------------------
# Table III — overall accuracy (travel time + ranking)
# ----------------------------------------------------------------------
def run_table3_overall(config, cities=("aalborg",), methods=None,
                       include_supervised=True, include_edge_sum=True,
                       impl="vectorized", binning="exact"):
    """Travel-time and ranking results for WSCCL and the baselines.

    ``impl`` / ``binning`` select the downstream GBM engine; every fit in
    the runner is seeded, so rerunning with ``impl="reference"`` reproduces
    the same table (the benchmark gate asserts this to 1e-9).
    """
    methods = methods or UNSUPERVISED_BASELINES
    results = {}
    for city_name in cities:
        city = build_dataset(city_name, config)
        city_rows = {}

        for name in methods:
            model = fit_unsupervised_baseline(name, city, config)
            city_rows[name] = representation_task_results(
                model, city, config, impl=impl, binning=binning)

        if include_supervised:
            for name in SUPERVISED_BASELINES:
                tt_model = build_supervised_baseline(name, config)
                ranking_model = build_supervised_baseline(name, config)
                city_rows[name] = {
                    "travel_time": supervised_travel_time_results(tt_model, city, config),
                    "ranking": supervised_ranking_results(ranking_model, city, config),
                }
        if include_edge_sum:
            for name in EDGE_SUM_BASELINES:
                model = build_supervised_baseline(name, config)
                city_rows[name] = {
                    "travel_time": supervised_travel_time_results(model, city, config),
                }

        wsccl = fit_wsccl(city, config, variant="full")
        city_rows["WSCCL"] = representation_task_results(
            wsccl, city, config, impl=impl, binning=binning)
        results[city_name] = city_rows
    return results


# ----------------------------------------------------------------------
# Table IV — path recommendation
# ----------------------------------------------------------------------
def run_table4_recommendation(config, cities=("aalborg",), methods=None,
                              impl="vectorized", binning="exact"):
    """Path recommendation accuracy / hit rate for WSCCL and baselines."""
    methods = methods or UNSUPERVISED_BASELINES
    results = {}
    for city_name in cities:
        city = build_dataset(city_name, config)
        city_rows = {}
        for name in methods:
            model = fit_unsupervised_baseline(name, city, config)
            city_rows[name] = representation_task_results(
                model, city, config, tasks=("recommendation",),
                impl=impl, binning=binning)["recommendation"]
        wsccl = fit_wsccl(city, config, variant="full")
        city_rows["WSCCL"] = representation_task_results(
            wsccl, city, config, tasks=("recommendation",),
            impl=impl, binning=binning)["recommendation"]
        results[city_name] = city_rows
    return results


# ----------------------------------------------------------------------
# Table V — learned vs heuristic curriculum
# ----------------------------------------------------------------------
def run_table5_curriculum_design(config, city_name="aalborg"):
    """Learned curriculum (WSCCL) vs the length-sorted heuristic curriculum."""
    city = build_dataset(city_name, config)
    rows = {}
    for label, variant in (("Heuristic", "heuristic"), ("WSCCL", "full")):
        model = fit_wsccl(city, config, variant=variant)
        rows[label] = representation_task_results(model, city, config)
    return {city_name: rows}


# ----------------------------------------------------------------------
# Table VI — ablation of CL, global and local losses
# ----------------------------------------------------------------------
def run_table6_ablation(config, city_name="aalborg"):
    """WSCCL vs w/o CL, w/o Global, w/o Local."""
    city = build_dataset(city_name, config)
    rows = {}
    variants = (
        ("w/o CL", "no_cl"),
        ("w/o Global", "no_global"),
        ("w/o Local", "no_local"),
        ("WSCCL", "full"),
    )
    for label, variant in variants:
        model = fit_wsccl(city, config, variant=variant)
        rows[label] = representation_task_results(model, city, config)
    return {city_name: rows}


# ----------------------------------------------------------------------
# Table VII — POP vs TCI weak labels
# ----------------------------------------------------------------------
def run_table7_weak_labels(config, cities=("harbin",)):
    """WSCCL trained with POP vs TCI weak labels."""
    results = {}
    for city_name in cities:
        city = build_dataset(city_name, config)
        rows = {}
        for label, weak in (("WSCCL-TCI", "tci"), ("WSCCL-POP", "pop")):
            model = fit_wsccl(city, config, variant="full", weak_labels=weak)
            rows[label] = representation_task_results(model, city, config)
        results[city_name] = rows
    return results


# ----------------------------------------------------------------------
# Table VIII — effect of temporal information
# ----------------------------------------------------------------------
def run_table8_temporal(config, cities=("aalborg",)):
    """WSCCL vs WSCCL-NT (temporal embedding removed)."""
    results = {}
    for city_name in cities:
        city = build_dataset(city_name, config)
        rows = {}
        for label, variant in (("WSCCL", "full"), ("WSCCL-NT", "no_temporal")):
            model = fit_wsccl(city, config, variant=variant)
            rows[label] = representation_task_results(model, city, config)
        results[city_name] = rows
    return results


# ----------------------------------------------------------------------
# Table IX — WSCCL vs PIM-Temporal
# ----------------------------------------------------------------------
def run_table9_pim_temporal(config, cities=("aalborg",)):
    """WSCCL vs PIM with a concatenated temporal embedding."""
    results = {}
    for city_name in cities:
        city = build_dataset(city_name, config)
        rows = {}
        pim_temporal = fit_unsupervised_baseline("PIM-Temporal", city, config)
        rows["PIM-Temporal"] = representation_task_results(pim_temporal, city, config)
        wsccl = fit_wsccl(city, config, variant="full")
        rows["WSCCL"] = representation_task_results(wsccl, city, config)
        results[city_name] = rows
    return results


# ----------------------------------------------------------------------
# Table X — cross-task transfer of supervised baselines
# ----------------------------------------------------------------------
def run_table10_supervised_transfer(config, city_name="aalborg",
                                    methods=SUPERVISED_BASELINES):
    """Primary-task vs secondary-task performance of supervised methods.

    ``<Method>-PR`` is trained on travel time (primary) and transferred to
    ranking; ``<Method>-TTE`` is trained on ranking (primary) and transferred
    to travel time — matching the paper's naming where the suffix denotes the
    *secondary* task the representation is transferred to.
    """
    city = build_dataset(city_name, config)
    rows = {}
    for name in methods:
        # Primary = travel time.  Secondary = ranking via frozen representations.
        tt_model = build_supervised_baseline(name, config)
        tt_primary = supervised_travel_time_results(tt_model, city, config)
        ranking_secondary = representation_task_results(
            tt_model, city, config, tasks=("ranking",))["ranking"]
        rows[f"{name}-PR"] = {"travel_time": tt_primary, "ranking": ranking_secondary}

        # Primary = ranking.  Secondary = travel time via frozen representations.
        rank_model = build_supervised_baseline(name, config)
        rank_primary = supervised_ranking_results(rank_model, city, config)
        tt_secondary = representation_task_results(
            rank_model, city, config, tasks=("travel_time",))["travel_time"]
        rows[f"{name}-TTE"] = {"travel_time": tt_secondary, "ranking": rank_primary}

    wsccl = fit_wsccl(city, config, variant="full")
    rows["WSCCL"] = representation_task_results(wsccl, city, config)
    return {city_name: rows}


# ----------------------------------------------------------------------
# Table XI — effect of λ
# ----------------------------------------------------------------------
def run_table11_lambda(config, city_name="aalborg",
                       lambdas=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0)):
    """Sweep the global/local balance λ."""
    city = build_dataset(city_name, config)
    rows = {}
    for value in lambdas:
        lambda_config = dataclasses.replace(
            config, wsccl=config.wsccl.with_overrides(lambda_balance=float(value)))
        model = fit_wsccl(city, lambda_config, variant="no_cl")
        rows[float(value)] = representation_task_results(model, city, lambda_config)
    return {city_name: rows}


# ----------------------------------------------------------------------
# Table XII — effect of the number of meta-sets N
# ----------------------------------------------------------------------
def run_table12_metasets(config, city_name="aalborg", meta_set_counts=(2, 4, 6)):
    """Sweep the number of meta-sets / curriculum stages (N = M)."""
    city = build_dataset(city_name, config)
    rows = {}
    for count in meta_set_counts:
        sweep_config = dataclasses.replace(
            config,
            wsccl=config.wsccl.with_overrides(
                num_meta_sets=int(count), num_stages=int(count)),
        )
        model = fit_wsccl(city, sweep_config, variant="full")
        rows[int(count)] = representation_task_results(model, city, sweep_config)
    return {city_name: rows}


# ----------------------------------------------------------------------
# Fig. 7 — WSCCL as a pre-training method for PathRank
# ----------------------------------------------------------------------
def run_fig7_pretraining(config, city_name="aalborg",
                         label_fractions=(0.4, 0.7, 1.0)):
    """PathRank with and without WSCCL pre-training vs number of labels.

    Returns, per label fraction, the travel-time MAE and ranking τ of
    PathRank trained from scratch and PathRank whose encoder is initialised
    from a trained WSCCL model.
    """
    city = build_dataset(city_name, config)
    wsccl = fit_wsccl(city, config, variant="full")
    pretrained_state = wsccl.encoder_state_dict()

    train_tt, _ = train_test_split(
        city.tasks.travel_time, test_fraction=config.test_fraction, seed=config.seed)
    groups = [e.group for e in city.tasks.ranking]
    train_rank, _ = grouped_train_test_split(
        city.tasks.ranking, groups, test_fraction=config.test_fraction, seed=config.seed)

    series = {"scratch": {}, "pretrained": {}}
    for fraction in label_fractions:
        tt_limit = max(4, int(round(len(train_tt) * fraction)))
        rank_limit = max(4, int(round(len(train_rank) * fraction)))

        for mode in ("scratch", "pretrained"):
            state = pretrained_state if mode == "pretrained" else None
            tt_model = build_supervised_baseline("PathRank", config, pretrained_state=state)
            tt_metrics = supervised_travel_time_results(
                tt_model, city, config, train_limit=tt_limit)
            rank_model = build_supervised_baseline("PathRank", config, pretrained_state=state)
            rank_metrics = supervised_ranking_results(
                rank_model, city, config, train_limit=rank_limit)
            series[mode][float(fraction)] = {
                "travel_time": tt_metrics,
                "ranking": rank_metrics,
            }
    return {city_name: series}
