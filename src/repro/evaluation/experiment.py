"""Experiment configuration and model factories for the evaluation harness.

The harness reproduces each table/figure of the paper at a reduced scale.
:class:`HarnessConfig` bundles every knob the benchmarks need; the factory
functions build WSCCL variants and baselines uniformly so a table runner is
just "for each method: fit, evaluate, collect a row".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import (
    BERTPathModel,
    DGIPathModel,
    DeepGTTModel,
    GCNTravelTimeModel,
    GMIPathModel,
    HMTRLModel,
    InfoGraphModel,
    MemoryBankModel,
    Node2vecPathModel,
    PathRankModel,
    PIMModel,
    PIMTemporalModel,
    STGCNTravelTimeModel,
)
from ..core import SharedResources, WSCCL, WSCCLConfig
from ..datasets import DatasetScale, build_city_dataset

__all__ = [
    "HarnessConfig",
    "build_dataset",
    "fit_wsccl",
    "fit_unsupervised_baseline",
    "build_supervised_baseline",
    "UNSUPERVISED_BASELINES",
    "SUPERVISED_BASELINES",
    "EDGE_SUM_BASELINES",
]


@dataclass
class HarnessConfig:
    """Scale and hyper-parameter knobs for one harness run.

    The defaults are sized for pytest-benchmark runs (a couple of minutes per
    table on CPU); examples use slightly larger values.
    """

    scale: DatasetScale = field(default_factory=DatasetScale.tiny)
    wsccl: WSCCLConfig = field(default_factory=WSCCLConfig.test_scale)
    #: Where corpus paths come from: "simulator" uses ground-truth simulator
    #: paths; "mapmatched" recovers each path from a noisy GPS trace with the
    #: HMM map matcher (the paper's real ingestion regime).
    paths_from: str = "simulator"
    baseline_dim: int = 16
    baseline_epochs: int = 1
    supervised_epochs: int = 2
    max_batches: int = 6
    n_estimators: int = 20
    test_fraction: float = 0.25
    seed: int = 0

    @classmethod
    def benchmark(cls):
        """Configuration used by the ``benchmarks/`` suite.

        Sized so that one table reproduces in roughly a minute on a laptop
        CPU while leaving WSCCL and the baselines enough training signal for
        the paper's qualitative orderings to emerge.
        """
        return cls(
            scale=DatasetScale.benchmark(),
            wsccl=WSCCLConfig(
                hidden_dim=32,
                temporal_dim=16,
                topology_dim=16,
                epochs=2,
                batch_size=16,
                num_meta_sets=3,
                num_stages=3,
                final_stage_epochs=2,
                slots_per_day=48,
            ),
            baseline_dim=32,
            baseline_epochs=2,
            supervised_epochs=3,
            max_batches=12,
            n_estimators=30,
        )

    @classmethod
    def example(cls):
        """Larger configuration used by the ``examples/`` scripts."""
        return cls(
            scale=DatasetScale.small(),
            wsccl=WSCCLConfig().with_overrides(epochs=2),
            baseline_epochs=2,
            supervised_epochs=3,
            max_batches=20,
            n_estimators=40,
        )


def build_dataset(city_name, config):
    """Build the synthetic dataset for one of the three cities."""
    return build_city_dataset(city_name, scale=config.scale, seed=None,
                              paths_from=config.paths_from)


# ----------------------------------------------------------------------
# WSCCL variants
# ----------------------------------------------------------------------
def fit_wsccl(city, config, variant="full", weak_labels="pop", resources=None):
    """Train a WSCCL variant on a city's unlabeled corpus.

    ``variant`` is one of:

    * ``"full"`` — the complete WSCCL (learned curriculum, both losses),
    * ``"no_cl"`` — WSC without curriculum learning,
    * ``"heuristic"`` — the length-sorted heuristic curriculum (Table V),
    * ``"no_global"`` — λ = 0 (local loss only, Table VI),
    * ``"no_local"`` — λ = 1 (global loss only, Table VI),
    * ``"no_temporal"`` — WSCCL-NT, temporal embedding zeroed (Table VIII).

    ``weak_labels`` selects POP or TCI weak labels (Table VII).
    """
    wsccl_config = config.wsccl
    if variant == "no_global":
        wsccl_config = wsccl_config.with_overrides(lambda_balance=0.0)
    elif variant == "no_local":
        wsccl_config = wsccl_config.with_overrides(lambda_balance=1.0)

    dataset = city.unlabeled
    if weak_labels == "tci":
        dataset = dataset.relabel(city.tci_labeler)
    elif weak_labels != "pop":
        raise ValueError(f"unknown weak label type {weak_labels!r}")

    resources = resources or SharedResources(city.network, wsccl_config)
    model = WSCCL(
        city.network, config=wsccl_config, resources=resources,
        use_temporal=(variant != "no_temporal"),
    )
    if variant in ("full", "no_global", "no_local", "no_temporal"):
        model.fit(dataset, batches_per_epoch=config.max_batches,
                  expert_batches=config.max_batches)
    elif variant == "heuristic":
        model.fit_with_heuristic_curriculum(dataset, batches_per_epoch=config.max_batches)
    elif variant == "no_cl":
        model.fit_without_curriculum(dataset, batches_per_epoch=config.max_batches)
    else:
        raise ValueError(f"unknown WSCCL variant {variant!r}")
    return model


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
UNSUPERVISED_BASELINES = ("Node2vec", "DGI", "GMI", "MB", "BERT", "InfoGraph", "PIM")
SUPERVISED_BASELINES = ("DeepGTT", "HMTRL", "PathRank")
EDGE_SUM_BASELINES = ("GCN", "STGCN")


def fit_unsupervised_baseline(name, city, config):
    """Fit one of the unsupervised baselines on a city's unlabeled corpus."""
    seed = config.seed
    if name == "Node2vec":
        return Node2vecPathModel(dim=config.baseline_dim, seed=seed).fit(city)
    if name == "DGI":
        return DGIPathModel(dim=config.baseline_dim, seed=seed).fit(city)
    if name == "GMI":
        return GMIPathModel(dim=config.baseline_dim, seed=seed).fit(city)
    if name == "MB":
        return MemoryBankModel(dim=config.baseline_dim, epochs=config.baseline_epochs,
                               seed=seed).fit(city, max_batches=config.max_batches)
    if name == "BERT":
        return BERTPathModel(dim=config.baseline_dim, epochs=config.baseline_epochs,
                             seed=seed).fit(city, max_batches=config.max_batches)
    if name == "InfoGraph":
        return InfoGraphModel(dim=config.baseline_dim, epochs=config.baseline_epochs,
                              seed=seed).fit(city, max_batches=config.max_batches)
    if name == "PIM":
        return PIMModel(dim=config.baseline_dim, epochs=config.baseline_epochs,
                        seed=seed).fit(city, max_batches=config.max_batches)
    if name == "PIM-Temporal":
        return PIMTemporalModel(dim=config.baseline_dim, epochs=config.baseline_epochs,
                                seed=seed).fit(city, max_batches=config.max_batches)
    raise KeyError(f"unknown unsupervised baseline {name!r}")


def build_supervised_baseline(name, config, pretrained_state=None):
    """Construct (but do not train) a supervised baseline model."""
    seed = config.seed
    if name == "DeepGTT":
        return DeepGTTModel(config=config.wsccl, epochs=config.supervised_epochs, seed=seed)
    if name == "HMTRL":
        return HMTRLModel(config=config.wsccl, epochs=config.supervised_epochs, seed=seed)
    if name == "PathRank":
        return PathRankModel(config=config.wsccl, epochs=config.supervised_epochs,
                             seed=seed, pretrained_state=pretrained_state)
    if name == "GCN":
        return GCNTravelTimeModel(hidden_dim=config.baseline_dim,
                                  epochs=config.supervised_epochs * 3, seed=seed)
    if name == "STGCN":
        return STGCNTravelTimeModel(hidden_dim=config.baseline_dim,
                                    epochs=config.supervised_epochs * 3, seed=seed)
    raise KeyError(f"unknown supervised baseline {name!r}")
