"""Formatting helpers that turn harness output into printable tables.

Benchmarks print these tables so their output visually mirrors the paper's
tables; EXPERIMENTS.md records the same rows.
"""

from __future__ import annotations

__all__ = [
    "format_metric_table",
    "format_nested_results",
    "format_fig7_series",
]


def _format_value(value):
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_metric_table(rows, title=None):
    """Format ``{method: {metric: value}}`` as an aligned text table."""
    if not rows:
        return "(no rows)"
    metric_names = []
    for metrics in rows.values():
        for name in metrics:
            if name not in metric_names:
                metric_names.append(name)

    method_width = max(len(str(m)) for m in rows) + 2
    column_width = max(10, max(len(m) for m in metric_names) + 2)

    lines = []
    if title:
        lines.append(title)
    header = "Method".ljust(method_width) + "".join(
        name.rjust(column_width) for name in metric_names)
    lines.append(header)
    lines.append("-" * len(header))
    for method, metrics in rows.items():
        line = str(method).ljust(method_width)
        for name in metric_names:
            value = metrics.get(name, "")
            line += _format_value(value).rjust(column_width)
        lines.append(line)
    return "\n".join(lines)


def format_nested_results(results, title=None):
    """Format ``{city: {method: {task: {metric: value}}}}`` harness output."""
    blocks = []
    if title:
        blocks.append(f"== {title} ==")
    for city, methods in results.items():
        # Flatten task metrics into single rows: "travel_time.MAE" etc.
        flat_rows = {}
        for method, tasks in methods.items():
            flat = {}
            for task, metrics in tasks.items():
                if isinstance(metrics, dict):
                    for metric, value in metrics.items():
                        flat[f"{task}.{metric}"] = value
                else:
                    flat[task] = metrics
            flat_rows[method] = flat
        blocks.append(format_metric_table(flat_rows, title=f"[{city}]"))
    return "\n\n".join(blocks)


def format_fig7_series(results, title="Fig. 7 pre-training"):
    """Format the Fig. 7 pre-training series as a text table."""
    blocks = [f"== {title} =="]
    for city, series in results.items():
        rows = {}
        for mode, fractions in series.items():
            for fraction, tasks in fractions.items():
                key = f"{mode}@{fraction:.0%}"
                rows[key] = {
                    "tt.MAE": tasks["travel_time"]["MAE"],
                    "rank.MAE": tasks["ranking"]["MAE"],
                    "rank.tau": tasks["ranking"]["tau"],
                }
        blocks.append(format_metric_table(rows, title=f"[{city}]"))
    return "\n\n".join(blocks)
