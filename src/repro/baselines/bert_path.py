"""BERT-style masked path modelling baseline.

The paper adapts BERT by treating a path as a sentence: some edges are
masked and predicted from context, and sub-path pairs (P1, P2) vs (P2, P1)
provide an ordering ("next sentence") objective.  This implementation keeps
both objectives over a lightweight bidirectional context encoder (forward and
backward LSTM passes over spatial edge features).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.encoder import pad_paths
from .base import RepresentationModel, register_baseline
from .sequence_encoder import SpatialSequenceEncoder

__all__ = ["BERTPathModel"]


@register_baseline("BERT")
class BERTPathModel(RepresentationModel):
    """Masked-edge + ordering pre-training over path sequences."""

    def __init__(self, dim=16, epochs=2, batch_size=16, mask_rate=0.2, lr=1e-3, seed=0):
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.mask_rate = mask_rate
        self.lr = lr
        self.seed = seed
        self._encoder = None
        self._road_type_head = None

    def fit(self, city, topology_features=None, max_batches=None, **kwargs):
        rng = np.random.default_rng(self.seed)
        network = city.network
        paths = city.unlabeled.temporal_paths

        encoder = SpatialSequenceEncoder(
            network, hidden_dim=self.dim,
            topology_features=topology_features, seed=self.seed,
        )
        # Masked-edge head: predict the masked edge's road type from the
        # pooled context representation.
        num_road_types = network.feature_encoder.num_road_types
        mask_head = nn.Linear(self.dim, num_road_types, rng=np.random.default_rng(self.seed + 1))
        # Ordering head: is this (first half, second half) pair in the
        # correct order?
        order_head = nn.Linear(2 * self.dim, 1, rng=np.random.default_rng(self.seed + 2))

        params = (list(encoder.parameters()) + list(mask_head.parameters())
                  + list(order_head.parameters()))
        optimizer = nn.Adam(params, lr=self.lr)
        categories = network.edge_feature_matrix()

        for _ in range(self.epochs):
            order = rng.permutation(len(paths))
            batches = 0
            for start in range(0, len(order), self.batch_size):
                if max_batches is not None and batches >= max_batches:
                    break
                indices = order[start:start + self.batch_size]
                batch_paths = [paths[i] for i in indices]
                if len(batch_paths) < 2:
                    continue

                pooled, outputs, mask = encoder(batch_paths)
                edge_ids, _ = pad_paths(batch_paths)

                # ---- masked edge objective -------------------------------
                target_types = []
                context_vectors = []
                for row, path in enumerate(batch_paths):
                    valid = len(path)
                    masked_position = int(rng.integers(0, valid))
                    target_types.append(categories[edge_ids[row, masked_position], 0])
                    context_vectors.append(pooled[row:row + 1, :])
                contexts = nn.Tensor.concatenate(context_vectors, axis=0)
                logits = mask_head(contexts)
                mask_loss = nn.functional.cross_entropy(logits, np.array(target_types))

                # ---- sub-path ordering objective -------------------------
                half_reps = []
                order_labels = []
                for row, path in enumerate(batch_paths):
                    if len(path) < 4:
                        continue
                    midpoint = len(path) // 2
                    first = outputs[row, :midpoint, :].mean(axis=0)
                    second = outputs[row, midpoint:len(path), :].mean(axis=0)
                    if rng.random() < 0.5:
                        half_reps.append(nn.Tensor.concatenate([first, second], axis=0).reshape(1, -1))
                        order_labels.append(1.0)
                    else:
                        half_reps.append(nn.Tensor.concatenate([second, first], axis=0).reshape(1, -1))
                        order_labels.append(0.0)
                if half_reps:
                    pair_logits = order_head(nn.Tensor.concatenate(half_reps, axis=0)).reshape(-1)
                    order_loss = nn.functional.binary_cross_entropy_with_logits(
                        pair_logits, nn.Tensor(np.array(order_labels))
                    )
                    loss = mask_loss + order_loss
                else:
                    loss = mask_loss

                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                batches += 1

        self._encoder = encoder
        self._road_type_head = mask_head
        return self

    def encode(self, temporal_paths):
        if self._encoder is None:
            raise RuntimeError("model has not been fitted")
        return self._encoder.encode(temporal_paths)
