"""HMTRL baseline — Liu et al., VLDB 2020 (simplified).

HMTRL learns unified route representations that exploit spatio-temporal
dependencies in the road network and the coherence of historical routes.  The
reproduction keeps its two distinguishing ingredients relative to PathRank:

* the path representation combines mean- and max-pooled edge states, and
* an auxiliary *route coherence* loss encourages consecutive edges of a route
  to have similar hidden states.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.config import WSCCLConfig
from ..core.encoder import pad_paths
from ..core.spatial import SpatialEmbedding
from ..core.temporal_embedding import TemporalEmbedding
from .base import register_baseline
from .supervised_base import SupervisedSequenceModel

__all__ = ["HMTRLModel"]


class _HMTRLEncoder(nn.Module):
    """LSTM over spatio-temporal edge features with mean+max pooling."""

    def __init__(self, network, config, resources=None, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        if resources is not None:
            self.spatial = resources.new_spatial_embedding(rng=rng)
            self.temporal = resources.new_temporal_embedding()
        else:
            self.spatial = SpatialEmbedding(network, config, rng=rng)
            self.temporal = TemporalEmbedding(config)
        self.lstm = nn.LSTM(config.encoder_input_dim, config.hidden_dim, rng=rng)
        self.mix = nn.Linear(2 * config.hidden_dim, config.hidden_dim, rng=rng)

    def forward(self, temporal_paths):
        edge_ids, mask = pad_paths(temporal_paths)
        spatial = self.spatial(edge_ids)
        temporal = self.temporal([tp.departure_time for tp in temporal_paths])
        steps = nn.Tensor(np.repeat(temporal.data[:, None, :], edge_ids.shape[1], axis=1))
        inputs = nn.Tensor.concatenate([steps, spatial], axis=-1)
        outputs, _ = self.lstm(inputs, mask=mask)

        mask_tensor = nn.Tensor(mask[:, :, None])
        counts = nn.Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        mean_pooled = (outputs * mask_tensor).sum(axis=1) / counts
        # Max over valid steps: push padded entries far down before max.
        shifted = outputs + nn.Tensor((mask[:, :, None] - 1.0) * 1e6)
        max_pooled = shifted.max(axis=1)
        pooled = self.mix(nn.Tensor.concatenate([mean_pooled, max_pooled], axis=-1)).tanh()
        return pooled, outputs, mask

    def encode(self, temporal_paths, batch_size=64):
        chunks = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                pooled, _, _ = self.forward(chunk)
                chunks.append(pooled.data.copy())
        if not chunks:
            return np.zeros((0, self.config.hidden_dim))
        return np.concatenate(chunks, axis=0)


@register_baseline("HMTRL")
class HMTRLModel(SupervisedSequenceModel):
    """Unified route representation learning with a coherence auxiliary loss."""

    def __init__(self, config=None, epochs=3, batch_size=16, lr=1e-3, seed=0,
                 coherence_weight=0.1):
        self.config = config or WSCCLConfig.test_scale()
        super().__init__(dim=self.config.hidden_dim, epochs=epochs,
                         batch_size=batch_size, lr=lr, seed=seed)
        self.coherence_weight = coherence_weight

    def build_encoder(self, city, resources=None, **kwargs):
        self._encoder = _HMTRLEncoder(
            city.network, self.config, resources=resources, seed=self.seed,
        )
        return self._encoder

    def auxiliary_loss(self, pooled, outputs, mask, batch_paths):
        """Route coherence: consecutive edge states should be similar."""
        if outputs.shape[1] < 2:
            return None
        current = outputs[:, 1:, :]
        previous = outputs[:, :-1, :]
        pair_mask = nn.Tensor((mask[:, 1:] * mask[:, :-1])[:, :, None])
        difference = (current - previous) * pair_mask
        return (difference * difference).mean() * self.coherence_weight
