"""PIM baseline — Yang et al., IJCAI 2021 — and its temporal extension.

PIM (Path InfoMax) learns unsupervised path representations by maximising
mutual information (i) globally, between a path's representation and the
representations of its own sub-paths against *negative* paths obtained via
curriculum negative sampling (edge-perturbed variants of the path), and
(ii) locally, between the path representation and its own edge
representations.  No temporal information is used.

:class:`PIMTemporalModel` (Table IX) concatenates the frozen temporal slot
embedding of the departure time onto PIM's path representation — the paper's
"PIM-Temporal" comparison showing that bolting a temporal vector onto a
non-temporal PR is inferior to learning a coupled TPR.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.temporal_embedding import TemporalEmbedding
from ..datasets.temporal_paths import TemporalPath
from .base import RepresentationModel, register_baseline
from .sequence_encoder import SpatialSequenceEncoder

__all__ = ["PIMModel", "PIMTemporalModel"]


@register_baseline("PIM")
class PIMModel(RepresentationModel):
    """Unsupervised path representation learning via global/local InfoMax."""

    def __init__(self, dim=16, epochs=2, batch_size=16, lr=1e-3, seed=0,
                 negative_perturbation=0.4):
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.negative_perturbation = negative_perturbation
        self._encoder = None

    # ------------------------------------------------------------------
    def _curriculum_negative(self, path, network, rng, difficulty):
        """Curriculum negative sampling: perturb a fraction of the path's edges.

        Early in training (low difficulty) most edges are replaced with
        random edges, giving easy negatives; later only a few are replaced,
        giving hard negatives — PIM's curriculum schedule.
        """
        edges = list(path.path)
        replace_fraction = max(0.1, self.negative_perturbation * (1.0 - difficulty))
        count = max(1, int(round(len(edges) * replace_fraction)))
        positions = rng.choice(len(edges), size=min(count, len(edges)), replace=False)
        for position in positions:
            edges[position] = int(rng.integers(0, network.num_edges))
        return TemporalPath(path=edges, departure_time=path.departure_time)

    def fit(self, city, topology_features=None, max_batches=None, **kwargs):
        rng = np.random.default_rng(self.seed)
        paths = city.unlabeled.temporal_paths
        network = city.network
        encoder = SpatialSequenceEncoder(
            network, hidden_dim=self.dim,
            topology_features=topology_features, seed=self.seed,
        )
        optimizer = nn.Adam(encoder.parameters(), lr=self.lr)

        total_steps = max(1, self.epochs * (len(paths) // max(1, self.batch_size)))
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(len(paths))
            batches = 0
            for start in range(0, len(order), self.batch_size):
                if max_batches is not None and batches >= max_batches:
                    break
                indices = order[start:start + self.batch_size]
                batch_paths = [paths[i] for i in indices]
                if len(batch_paths) < 2:
                    continue
                difficulty = min(1.0, step / total_steps)
                negatives = [
                    self._curriculum_negative(p, network, rng, difficulty)
                    for p in batch_paths
                ]

                pos_pooled, pos_outputs, pos_mask = encoder(batch_paths)
                neg_pooled, _, _ = encoder(negatives)

                loss = self._infomax_loss(pos_pooled, pos_outputs, pos_mask, neg_pooled)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                step += 1
                batches += 1

        self._encoder = encoder
        return self

    def _infomax_loss(self, pooled, outputs, mask, negative_pooled):
        """Global (path vs negative path) + local (path vs own edges) JSD MI."""
        batch = pooled.shape[0]
        lengths = mask.sum(axis=1).astype(np.int64)

        # Global: the path representation should score higher against itself
        # than against its curriculum negative.
        pos_scores = (pooled * pooled).sum(axis=-1)
        neg_scores = (pooled * negative_pooled).sum(axis=-1)
        global_loss = (
            ((-pos_scores).exp() + 1.0).log().mean()
            + (neg_scores.exp() + 1.0).log().mean()
        )

        # Local: path representation vs its own edge representations.
        local_terms = []
        for i in range(batch):
            own_edges = outputs[i, :int(lengths[i]), :]
            scores = (own_edges * pooled[i:i + 1, :]).sum(axis=-1)
            local_terms.append(((-scores).exp() + 1.0).log().mean())
        local_loss = local_terms[0]
        for term in local_terms[1:]:
            local_loss = local_loss + term
        local_loss = local_loss * (1.0 / batch)

        return global_loss + local_loss

    def encode(self, temporal_paths):
        if self._encoder is None:
            raise RuntimeError("model has not been fitted")
        return self._encoder.encode(temporal_paths)


@register_baseline("PIM-Temporal")
class PIMTemporalModel(PIMModel):
    """PIM with a frozen temporal embedding concatenated onto its PR (Table IX)."""

    def __init__(self, dim=16, temporal_dim=8, slots_per_day=48, **kwargs):
        super().__init__(dim=dim, **kwargs)
        self.temporal_dim = temporal_dim
        self.slots_per_day = slots_per_day
        self._temporal = None

    def fit(self, city, topology_features=None, max_batches=None, **kwargs):
        super().fit(city, topology_features=topology_features, max_batches=max_batches)
        from ..core.config import WSCCLConfig

        config = WSCCLConfig.test_scale().with_overrides(
            temporal_dim=self.temporal_dim, slots_per_day=self.slots_per_day,
        )
        self._temporal = TemporalEmbedding(config)
        return self

    def encode(self, temporal_paths):
        base = super().encode(temporal_paths)
        if self._temporal is None:
            raise RuntimeError("model has not been fitted")
        temporal = self._temporal([tp.departure_time for tp in temporal_paths]).data
        return np.concatenate([base, temporal], axis=1)
