"""InfoGraph baseline — Sun et al., ICLR 2020, adapted to paths.

Each path is treated as a small graph; the objective maximises mutual
information between the path-level (graph-level) representation and its own
edge-level (node-level) representations while contrasting against edge
representations drawn from *other* paths in the batch — the standard
InfoGraph discriminator, here with a Jensen-Shannon surrogate.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import RepresentationModel, register_baseline
from .sequence_encoder import SpatialSequenceEncoder

__all__ = ["InfoGraphModel"]


@register_baseline("InfoGraph")
class InfoGraphModel(RepresentationModel):
    """Graph-level vs node-level mutual information maximisation on paths."""

    def __init__(self, dim=16, epochs=2, batch_size=16, lr=1e-3, seed=0):
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._encoder = None

    def fit(self, city, topology_features=None, max_batches=None, **kwargs):
        rng = np.random.default_rng(self.seed)
        paths = city.unlabeled.temporal_paths
        encoder = SpatialSequenceEncoder(
            city.network, hidden_dim=self.dim,
            topology_features=topology_features, seed=self.seed,
        )
        optimizer = nn.Adam(encoder.parameters(), lr=self.lr)

        for _ in range(self.epochs):
            order = rng.permutation(len(paths))
            batches = 0
            for start in range(0, len(order), self.batch_size):
                if max_batches is not None and batches >= max_batches:
                    break
                indices = order[start:start + self.batch_size]
                batch_paths = [paths[i] for i in indices]
                if len(batch_paths) < 2:
                    continue

                pooled, outputs, mask = encoder(batch_paths)
                loss = self._jsd_loss(pooled, outputs, mask, rng)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                batches += 1

        self._encoder = encoder
        return self

    def _jsd_loss(self, pooled, outputs, mask, rng):
        """Jensen-Shannon MI estimator between path and edge representations."""
        batch = pooled.shape[0]
        lengths = mask.sum(axis=1).astype(np.int64)
        positive_terms = []
        negative_terms = []
        for i in range(batch):
            own_edges = outputs[i, :int(lengths[i]), :]
            pos_scores = (own_edges * pooled[i:i + 1, :]).sum(axis=-1)
            # softplus(-x) for positives.
            positive_terms.append(((-pos_scores).exp() + 1.0).log().mean())

            other = int(rng.integers(0, batch))
            if other == i:
                other = (i + 1) % batch
            other_edges = outputs[other, :int(lengths[other]), :]
            neg_scores = (other_edges * pooled[i:i + 1, :]).sum(axis=-1)
            # softplus(x) for negatives.
            negative_terms.append((neg_scores.exp() + 1.0).log().mean())

        loss = positive_terms[0]
        for term in positive_terms[1:]:
            loss = loss + term
        for term in negative_terms:
            loss = loss + term
        return loss * (1.0 / batch)

    def encode(self, temporal_paths):
        if self._encoder is None:
            raise RuntimeError("model has not been fitted")
        return self._encoder.encode(temporal_paths)
