"""DeepGTT baseline — Li et al., WWW 2019 (simplified).

DeepGTT is a deep generative model of travel-time *distributions*: given a
path and a departure time it predicts the parameters of an inverse Gaussian
over the travel time.  The reproduction keeps that structure — a
non-recurrent edge-feature encoder conditioned on the departure-time slot,
predicting a positive mean via softplus and trained by maximising the
inverse-Gaussian log-likelihood — while dropping the amortised-inference
machinery that only matters at the paper's original scale.

Because the model is built around travel-time likelihoods, it transfers
poorly to ranking (the paper's Table III/X observation), which this
implementation reproduces naturally.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.config import WSCCLConfig
from ..core.encoder import pad_paths
from ..core.spatial import SpatialEmbedding
from ..core.temporal_embedding import TemporalEmbedding
from .base import register_baseline
from .supervised_base import SupervisedSequenceModel

__all__ = ["DeepGTTModel"]


class _DeepGTTEncoder(nn.Module):
    """Mean-pooled edge features conditioned on the departure time slot."""

    def __init__(self, network, config, resources=None, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        if resources is not None:
            self.spatial = resources.new_spatial_embedding(rng=rng)
            self.temporal = resources.new_temporal_embedding()
        else:
            self.spatial = SpatialEmbedding(network, config, rng=rng)
            self.temporal = TemporalEmbedding(config)
        self.edge_projection = nn.Linear(config.spatial_dim, config.hidden_dim, rng=rng)
        self.time_projection = nn.Linear(config.temporal_dim, config.hidden_dim, rng=rng)
        self.combine = nn.Linear(2 * config.hidden_dim, config.hidden_dim, rng=rng)

    def forward(self, temporal_paths):
        edge_ids, mask = pad_paths(temporal_paths)
        spatial = self.spatial(edge_ids)
        edge_states = self.edge_projection(spatial).relu()

        mask_tensor = nn.Tensor(mask[:, :, None])
        counts = nn.Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        pooled_edges = (edge_states * mask_tensor).sum(axis=1) / counts

        temporal = self.temporal([tp.departure_time for tp in temporal_paths])
        time_state = self.time_projection(temporal).relu()
        pooled = self.combine(
            nn.Tensor.concatenate([pooled_edges, time_state], axis=-1)
        ).tanh()
        return pooled, edge_states, mask

    def encode(self, temporal_paths, batch_size=64):
        chunks = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                pooled, _, _ = self.forward(chunk)
                chunks.append(pooled.data.copy())
        if not chunks:
            return np.zeros((0, self.config.hidden_dim))
        return np.concatenate(chunks, axis=0)


@register_baseline("DeepGTT")
class DeepGTTModel(SupervisedSequenceModel):
    """Travel-time distribution estimation with an inverse-Gaussian head."""

    def __init__(self, config=None, epochs=3, batch_size=16, lr=1e-3, seed=0):
        self.config = config or WSCCLConfig.test_scale()
        super().__init__(dim=self.config.hidden_dim, epochs=epochs,
                         batch_size=batch_size, lr=lr, seed=seed)
        self._mu_head = None
        self._lambda_head = None
        self._scale = 1.0

    def build_encoder(self, city, resources=None, **kwargs):
        self._encoder = _DeepGTTEncoder(
            city.network, self.config, resources=resources, seed=self.seed,
        )
        return self._encoder

    # DeepGTT replaces the generic MSE head with an inverse-Gaussian likelihood.
    def fit_supervised(self, examples, task, city=None, max_batches=None, **kwargs):
        if self._encoder is None:
            if city is None:
                raise ValueError("pass city= the first time fit_supervised is called")
            self.build_encoder(city, **kwargs)
        self.task = task

        paths = [e.temporal_path for e in examples]
        targets = np.array([self._target_of(e, task) for e in examples], dtype=np.float64)
        # Scale targets to O(1) so the likelihood is well conditioned; ranking
        # scores are already in [0, 1], travel times are divided by their mean.
        self._scale = float(max(targets.mean(), 1e-6))
        scaled = np.maximum(targets / self._scale, 1e-3)

        rng = np.random.default_rng(self.seed)
        self._mu_head = nn.Linear(self.dim, 1, rng=rng)
        self._lambda_head = nn.Linear(self.dim, 1, rng=rng)
        params = (list(self._encoder.parameters()) + list(self._mu_head.parameters())
                  + list(self._lambda_head.parameters()))
        optimizer = nn.Adam(params, lr=self.lr)

        for _ in range(self.epochs):
            order = rng.permutation(len(paths))
            batches = 0
            for start in range(0, len(order), self.batch_size):
                if max_batches is not None and batches >= max_batches:
                    break
                indices = order[start:start + self.batch_size]
                if len(indices) < 2:
                    continue
                batch_paths = [paths[i] for i in indices]
                observed = nn.Tensor(scaled[indices])

                pooled, _, _ = self._encoder(batch_paths)
                mu = _softplus(self._mu_head(pooled).reshape(-1)) + 1e-3
                lam = _softplus(self._lambda_head(pooled).reshape(-1)) + 1e-3
                # Negative inverse-Gaussian log-likelihood (up to constants):
                #   -0.5*log(lam) + lam*(x-mu)^2 / (2*mu^2*x)
                residual = observed - mu
                loss = (
                    (lam * residual * residual) / (mu * mu * observed * 2.0)
                    - lam.log() * 0.5
                ).mean()

                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
                batches += 1
        return self

    def predict(self, temporal_paths, batch_size=64):
        """Predicted mean of the inverse-Gaussian, rescaled to target units."""
        if self._encoder is None or self._mu_head is None:
            raise RuntimeError("model has not been trained with fit_supervised")
        outputs = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                pooled, _, _ = self._encoder(chunk)
                mu = _softplus(self._mu_head(pooled).reshape(-1)) + 1e-3
                outputs.append(mu.data.copy())
        flat = np.concatenate(outputs) if outputs else np.zeros(0)
        return flat * self._scale


def _softplus(x):
    return ((x.clip(-30.0, 30.0)).exp() + 1.0).log()
