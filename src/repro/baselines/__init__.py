"""Baseline methods compared against WSCCL (paper §VII-A3)."""

from .base import BASELINE_REGISTRY, RepresentationModel, SupervisedModel, register_baseline
from .bert_path import BERTPathModel
from .deepgtt import DeepGTTModel
from .gcn import GCNTravelTimeModel, STGCNTravelTimeModel
from .graph_embedding import DGIPathModel, GMIPathModel, Node2vecPathModel
from .hmtrl import HMTRLModel
from .infograph import InfoGraphModel
from .memory_bank import MemoryBankModel
from .pathrank import PathRankModel
from .pim import PIMModel, PIMTemporalModel
from .sequence_encoder import SpatialSequenceEncoder

__all__ = [
    "RepresentationModel",
    "SupervisedModel",
    "register_baseline",
    "BASELINE_REGISTRY",
    "SpatialSequenceEncoder",
    "Node2vecPathModel",
    "DGIPathModel",
    "GMIPathModel",
    "MemoryBankModel",
    "BERTPathModel",
    "InfoGraphModel",
    "PIMModel",
    "PIMTemporalModel",
    "DeepGTTModel",
    "HMTRLModel",
    "PathRankModel",
    "GCNTravelTimeModel",
    "STGCNTravelTimeModel",
]
