"""PathRank baseline — Yang, Guo & Yang, TKDE 2020.

A supervised path representation model that consumes edge features plus the
departure time as context and is trained end-to-end on the labels of one
task.  Its encoder has the same interface as WSCCL's temporal path encoder,
which is what makes the pre-training experiment of Fig. 7 possible: WSCCL's
trained encoder parameters are loaded into PathRank before supervised
fine-tuning (``pretrained_state``).

Note: the original PathRank uses GRUs; we reuse the LSTM-based temporal path
encoder so pre-trained WSCCL parameters transplant exactly (the paper's
pre-training protocol requires matching encoders).  This substitution is
documented in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.config import WSCCLConfig
from ..core.encoder import TemporalPathEncoder
from .base import register_baseline
from .supervised_base import SupervisedSequenceModel

__all__ = ["PathRankModel"]


class _TemporalEncoderAdapter(nn.Module):
    """Adapt :class:`TemporalPathEncoder` to the supervised-model interface."""

    def __init__(self, encoder):
        super().__init__()
        self.encoder = encoder

    def forward(self, temporal_paths):
        encoded = self.encoder(temporal_paths)
        return encoded.tprs, encoded.edge_representations, encoded.mask

    def encode(self, temporal_paths, batch_size=64):
        return self.encoder.encode(temporal_paths, batch_size=batch_size)


@register_baseline("PathRank")
class PathRankModel(SupervisedSequenceModel):
    """Supervised path representation learning with departure-time context."""

    def __init__(self, config=None, pretrained_state=None, epochs=3,
                 batch_size=16, lr=1e-3, seed=0):
        self.config = config or WSCCLConfig.test_scale()
        super().__init__(dim=self.config.hidden_dim, epochs=epochs,
                         batch_size=batch_size, lr=lr, seed=seed)
        self.pretrained_state = pretrained_state

    def build_encoder(self, city, resources=None, **kwargs):
        if resources is not None:
            encoder = TemporalPathEncoder(
                network=city.network,
                config=self.config,
                spatial_embedding=resources.new_spatial_embedding(
                    rng=np.random.default_rng(self.seed)),
                temporal_embedding=resources.new_temporal_embedding(),
                rng=np.random.default_rng(self.seed),
            )
        else:
            encoder = TemporalPathEncoder(
                network=city.network, config=self.config,
                rng=np.random.default_rng(self.seed),
            )
        if self.pretrained_state is not None:
            encoder.load_state_dict(self.pretrained_state)
        self._encoder = _TemporalEncoderAdapter(encoder)
        return self._encoder

    def load_pretrained(self, state_dict):
        """Load WSCCL encoder parameters (pre-training protocol of Fig. 7)."""
        if self._encoder is None:
            self.pretrained_state = state_dict
        else:
            self._encoder.encoder.load_state_dict(state_dict)
        return self
