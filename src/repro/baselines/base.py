"""Common interfaces for the baseline methods (paper §VII-A3).

Two kinds of baselines exist:

* **Unsupervised representation models** — learn path representations from
  the unlabeled corpus; a GBR/GBC is then fitted on the frozen
  representations per task (same harness as WSCCL).
* **Supervised models** — train end-to-end on the labels of one task.  They
  also expose their internal path representation, which the cross-task
  experiment (Table X) reuses on the secondary task.

Every model implements ``encode(temporal_paths) -> (N, D) array`` so the
downstream evaluators treat WSCCL and all baselines uniformly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RepresentationModel", "SupervisedModel", "BASELINE_REGISTRY", "register_baseline"]


class RepresentationModel:
    """Interface for unsupervised path-representation baselines."""

    #: Short name used in tables ("Node2vec", "DGI", ...).
    name = "base"

    def fit(self, city, **kwargs):
        """Learn representations from a :class:`~repro.datasets.synthetic.CityDataset`.

        Implementations use only the road network and the unlabeled temporal
        paths — never the task labels.
        """
        raise NotImplementedError

    def encode(self, temporal_paths):
        """Return an ``(N, D)`` representation matrix for the given paths."""
        raise NotImplementedError

    def represent(self, temporal_path):
        """Representation of a single temporal path."""
        return self.encode([temporal_path])[0]


class SupervisedModel(RepresentationModel):
    """Interface for supervised baselines (trained on one task's labels)."""

    def fit_supervised(self, examples, task, **kwargs):
        """Train on labelled examples of ``task`` ('travel_time' or 'ranking')."""
        raise NotImplementedError

    def predict(self, temporal_paths):
        """Direct predictions of the trained task for the given paths."""
        raise NotImplementedError


#: name -> factory callable ``(city, seed, **kwargs) -> fitted model``.
BASELINE_REGISTRY = {}


def register_baseline(name):
    """Class decorator adding a baseline to :data:`BASELINE_REGISTRY`."""

    def decorator(cls):
        BASELINE_REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorator


def mean_pool_edge_vectors(edge_vectors, paths):
    """Average per-edge vectors over each path (shared by several baselines)."""
    edge_vectors = np.asarray(edge_vectors, dtype=np.float64)
    output = np.zeros((len(paths), edge_vectors.shape[1]))
    for row, path in enumerate(paths):
        indices = np.asarray(list(path.path), dtype=np.int64)
        output[row] = edge_vectors[indices].mean(axis=0)
    return output
