"""GCN and STGCN baselines (edge-level travel-time estimation).

Both methods estimate the travel time of every *edge* in the road network and
score a path as the sum of its edges' predicted times (paper §VII-A3), which
is why they only appear in the travel-time columns of Table III.

* :class:`GCNTravelTimeModel` — a two-layer graph convolution over the road
  network's nodes; an edge's time is predicted from its endpoint embeddings
  and its own features, ignoring the departure time.
* :class:`STGCNTravelTimeModel` — the same spatial backbone with a temporal
  branch: the departure-time slot embedding modulates the edge-time
  prediction, giving the model the spatio-temporal structure of STGCN at a
  fraction of its original size.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.config import WSCCLConfig
from ..core.temporal_embedding import TemporalEmbedding
from .base import SupervisedModel, register_baseline
from .graph_embedding import _node_input_features, _normalized_adjacency

__all__ = ["GCNTravelTimeModel", "STGCNTravelTimeModel"]


class _EdgeTimeBackbone(nn.Module):
    """Two-layer GCN over nodes + an edge-level regression head."""

    def __init__(self, network, hidden_dim, extra_dim=0, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.network = network
        self.node_features = _node_input_features(network)
        self.adjacency = _normalized_adjacency(network)
        feature_dim = self.node_features.shape[1]

        self.gcn1 = nn.Linear(feature_dim, hidden_dim, rng=rng)
        self.gcn2 = nn.Linear(hidden_dim, hidden_dim, rng=rng)
        edge_feature_dim = len(network.feature_encoder.one_hot(network.edge_features(0)))
        self.edge_head = nn.Linear(2 * hidden_dim + edge_feature_dim + extra_dim, 1, rng=rng)

        self._edge_one_hots = np.stack([
            network.feature_encoder.one_hot(network.edge_features(e))
            for e in range(network.num_edges)
        ])
        self._endpoints = np.array([
            network.edge_endpoints(e) for e in range(network.num_edges)
        ], dtype=np.int64)
        self._lengths = np.array([
            network.edge_length(e) for e in range(network.num_edges)
        ])

    def node_embeddings(self):
        adjacency = nn.Tensor(self.adjacency)
        features = nn.Tensor(self.node_features)
        hidden = (adjacency @ self.gcn1(features)).relu()
        return (adjacency @ self.gcn2(hidden)).relu()

    def edge_times(self, extra_per_edge=None):
        """Predicted traversal time (seconds) for every edge.

        ``extra_per_edge`` optionally appends a feature block (the temporal
        branch of STGCN).  Times are positive via softplus and scaled by the
        edge length so long edges naturally take longer.
        """
        nodes = self.node_embeddings()
        sources = nodes[self._endpoints[:, 0]]
        targets = nodes[self._endpoints[:, 1]]
        pieces = [sources, targets, nn.Tensor(self._edge_one_hots)]
        if extra_per_edge is not None:
            pieces.append(extra_per_edge)
        stacked = nn.Tensor.concatenate(pieces, axis=-1)
        raw = self.edge_head(stacked).reshape(-1)
        # softplus(raw) gives seconds-per-100-metres; multiply by length/100.
        softplus = ((raw.clip(-30.0, 30.0)).exp() + 1.0).log()
        return softplus * nn.Tensor(self._lengths / 100.0)


@register_baseline("GCN")
class GCNTravelTimeModel(SupervisedModel):
    """Sum of GCN-predicted edge travel times (no temporal information)."""

    supports_ranking = False

    def __init__(self, hidden_dim=16, epochs=20, batch_size=16, lr=5e-3, seed=0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._backbone = None

    def fit(self, city, **kwargs):
        self._backbone = _EdgeTimeBackbone(city.network, self.hidden_dim, seed=self.seed)
        return self

    def _extra_for_batch(self, temporal_paths):
        return None

    def fit_supervised(self, examples, task, city=None, max_batches=None, **kwargs):
        if task != "travel_time":
            raise ValueError("GCN/STGCN baselines only support the travel_time task")
        if self._backbone is None:
            if city is None:
                raise ValueError("pass city= the first time fit_supervised is called")
            self.fit(city)

        paths = [e.temporal_path for e in examples]
        targets = np.array([e.travel_time for e in examples], dtype=np.float64)
        scale = float(max(targets.mean(), 1e-6))

        rng = np.random.default_rng(self.seed)
        optimizer = nn.Adam(self._backbone.parameters(), lr=self.lr)

        for _ in range(self.epochs):
            order = rng.permutation(len(paths))
            batches = 0
            for start in range(0, len(order), self.batch_size):
                if max_batches is not None and batches >= max_batches:
                    break
                indices = order[start:start + self.batch_size]
                if len(indices) < 2:
                    continue
                batch_paths = [paths[i] for i in indices]
                batch_targets = nn.Tensor(targets[indices] / scale)

                predictions = self._predict_batch_tensor(batch_paths) * (1.0 / scale)
                loss = nn.functional.mse_loss(predictions, batch_targets)
                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self._backbone.parameters(), 5.0)
                optimizer.step()
                batches += 1
        return self

    def _predict_batch_tensor(self, temporal_paths):
        edge_times = self._backbone.edge_times(self._extra_for_batch(temporal_paths))
        rows = []
        for tp in temporal_paths:
            indices = np.asarray(list(tp.path), dtype=np.int64)
            rows.append(edge_times[indices].sum().reshape(1))
        return nn.Tensor.concatenate(rows, axis=0)

    def predict(self, temporal_paths, batch_size=64):
        if self._backbone is None:
            raise RuntimeError("model has not been trained")
        outputs = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                outputs.append(self._predict_batch_tensor(chunk).data.copy())
        return np.concatenate(outputs) if outputs else np.zeros(0)

    def encode(self, temporal_paths):
        """Per-path mean of endpoint node embeddings (rarely used)."""
        if self._backbone is None:
            raise RuntimeError("model has not been fitted")
        with nn.no_grad():
            nodes = self._backbone.node_embeddings().data
        outputs = np.zeros((len(temporal_paths), nodes.shape[1]))
        for row, tp in enumerate(temporal_paths):
            endpoint_nodes = self._backbone._endpoints[np.asarray(list(tp.path))]
            outputs[row] = nodes[endpoint_nodes.reshape(-1)].mean(axis=0)
        return outputs


@register_baseline("STGCN")
class STGCNTravelTimeModel(GCNTravelTimeModel):
    """GCN backbone plus a temporal branch conditioned on the departure slot."""

    def __init__(self, hidden_dim=16, temporal_dim=8, slots_per_day=48, **kwargs):
        super().__init__(hidden_dim=hidden_dim, **kwargs)
        self.temporal_dim = temporal_dim
        self.slots_per_day = slots_per_day
        self._temporal = None

    def fit(self, city, **kwargs):
        self._backbone = _EdgeTimeBackbone(
            city.network, self.hidden_dim, extra_dim=self.temporal_dim, seed=self.seed,
        )
        config = WSCCLConfig.test_scale().with_overrides(
            temporal_dim=self.temporal_dim, slots_per_day=self.slots_per_day,
        )
        self._temporal = TemporalEmbedding(config)
        return self

    def _extra_for_batch(self, temporal_paths):
        # Every path in the chunk contributes one departure time; edges get
        # the batch-mean temporal embedding (a cheap stand-in for STGCN's
        # temporal convolution over the shared network state).
        temporal = self._temporal([tp.departure_time for tp in temporal_paths]).data
        mean_vector = temporal.mean(axis=0, keepdims=True)
        repeated = np.repeat(mean_vector, self._backbone._endpoints.shape[0], axis=0)
        return nn.Tensor(repeated)
