"""Shared spatial-only sequence encoder used by several baselines.

MB, InfoGraph, PIM and BERT all encode a path as a sequence of *spatial* edge
features (no temporal information) — this module provides that encoder so the
baselines differ only in their training objective, as in the paper.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..core.config import WSCCLConfig
from ..core.encoder import pad_paths
from ..core.spatial import SpatialEmbedding

__all__ = ["SpatialSequenceEncoder"]


class SpatialSequenceEncoder(nn.Module):
    """LSTM over spatial edge embeddings with masked mean pooling.

    Parameters
    ----------
    network:
        Road network the paths live on.
    hidden_dim:
        Encoder output dimensionality.
    config:
        Optional :class:`WSCCLConfig` controlling the spatial embedding sizes
        (a small default is built otherwise).
    topology_features:
        Optional pre-computed node2vec topology features to share.
    """

    def __init__(self, network, hidden_dim=16, config=None, topology_features=None, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config or WSCCLConfig.test_scale().with_overrides(hidden_dim=hidden_dim)
        self.hidden_dim = hidden_dim
        self.spatial = SpatialEmbedding(
            network, self.config, topology_features=topology_features, rng=rng,
        )
        self.lstm = nn.LSTM(self.config.spatial_dim, hidden_dim, rng=rng)

    def forward(self, temporal_paths):
        """Return (path_representations, edge_representations, mask)."""
        edge_ids, mask = pad_paths(temporal_paths)
        spatial = self.spatial(edge_ids)
        outputs, _ = self.lstm(spatial, mask=mask)
        mask_tensor = nn.Tensor(mask[:, :, None])
        counts = nn.Tensor(np.maximum(mask.sum(axis=1, keepdims=True), 1.0))
        pooled = (outputs * mask_tensor).sum(axis=1) / counts
        return pooled, outputs, mask

    def encode(self, temporal_paths, batch_size=64):
        """Frozen numpy representations for a list of paths."""
        chunks = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                pooled, _, _ = self.forward(chunk)
                chunks.append(pooled.data.copy())
        if not chunks:
            return np.zeros((0, self.hidden_dim))
        return np.concatenate(chunks, axis=0)
