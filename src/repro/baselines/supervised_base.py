"""Shared machinery for the supervised sequence baselines.

DeepGTT, HMTRL and PathRank all follow the same supervised pattern: a path
encoder produces a representation, a regression head maps it to the task
label (travel time or ranking score), and everything is trained end-to-end
with MSE on a standardised target.  They differ in their encoder architecture
and auxiliary losses, which subclasses provide.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from .base import SupervisedModel

__all__ = ["SupervisedSequenceModel"]


class SupervisedSequenceModel(SupervisedModel):
    """Base class: encoder + linear head trained on one task's labels.

    Subclasses must set ``self._encoder`` (a module with
    ``forward(paths) -> (pooled Tensor, outputs Tensor, mask)`` and
    ``encode(paths) -> numpy``) inside :meth:`build_encoder`.
    """

    def __init__(self, dim=16, epochs=3, batch_size=16, lr=1e-3, seed=0):
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._encoder = None
        self._head = None
        self._target_mean = 0.0
        self._target_std = 1.0
        self.task = None

    # ------------------------------------------------------------------
    def build_encoder(self, city, **kwargs):
        """Create ``self._encoder`` for the given city dataset."""
        raise NotImplementedError

    def auxiliary_loss(self, pooled, outputs, mask, batch_paths):
        """Optional extra loss term; subclasses may override.  Default: none."""
        return None

    # ------------------------------------------------------------------
    def fit(self, city, **kwargs):
        """Unsupervised ``fit`` only builds the encoder (used before encode)."""
        self.build_encoder(city, **kwargs)
        return self

    def fit_supervised(self, examples, task, city=None, max_batches=None, **kwargs):
        """Train end-to-end on labelled examples of ``task``.

        ``examples`` carry ``temporal_path`` plus ``travel_time`` (task
        'travel_time') or ``score`` (task 'ranking').
        """
        if self._encoder is None:
            if city is None:
                raise ValueError("pass city= the first time fit_supervised is called")
            self.build_encoder(city, **kwargs)
        self.task = task

        paths = [e.temporal_path for e in examples]
        targets = np.array([self._target_of(e, task) for e in examples], dtype=np.float64)
        self._target_mean = float(targets.mean())
        self._target_std = float(max(targets.std(), 1e-6))
        normalised = (targets - self._target_mean) / self._target_std

        rng = np.random.default_rng(self.seed)
        self._head = nn.Linear(self.dim, 1, rng=rng)
        params = list(self._encoder.parameters()) + list(self._head.parameters())
        optimizer = nn.Adam(params, lr=self.lr)

        for _ in range(self.epochs):
            order = rng.permutation(len(paths))
            batches = 0
            for start in range(0, len(order), self.batch_size):
                if max_batches is not None and batches >= max_batches:
                    break
                indices = order[start:start + self.batch_size]
                if len(indices) < 2:
                    continue
                batch_paths = [paths[i] for i in indices]
                batch_targets = nn.Tensor(normalised[indices])

                pooled, outputs, mask = self._encoder(batch_paths)
                predictions = self._head(pooled).reshape(-1)
                loss = nn.functional.mse_loss(predictions, batch_targets)
                extra = self.auxiliary_loss(pooled, outputs, mask, batch_paths)
                if extra is not None:
                    loss = loss + extra

                optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(params, 5.0)
                optimizer.step()
                batches += 1
        return self

    @staticmethod
    def _target_of(example, task):
        if task == "travel_time":
            return example.travel_time
        if task == "ranking":
            return example.score
        raise ValueError(f"unsupported task {task!r}")

    # ------------------------------------------------------------------
    def predict(self, temporal_paths, batch_size=64):
        """Direct predictions of the trained task."""
        if self._encoder is None or self._head is None:
            raise RuntimeError("model has not been trained with fit_supervised")
        outputs = []
        with nn.no_grad():
            for start in range(0, len(temporal_paths), batch_size):
                chunk = temporal_paths[start:start + batch_size]
                if not chunk:
                    continue
                pooled, _, _ = self._encoder(chunk)
                predictions = self._head(pooled).reshape(-1)
                outputs.append(predictions.data.copy())
        flat = np.concatenate(outputs) if outputs else np.zeros(0)
        return flat * self._target_std + self._target_mean

    def encode(self, temporal_paths):
        """Frozen representations from the (supervised) encoder."""
        if self._encoder is None:
            raise RuntimeError("model has not been fitted")
        return self._encoder.encode(temporal_paths)
