"""Memory Bank (MB) baseline — Wu et al., CVPR 2018, adapted to paths.

Instance discrimination: every unlabeled path is its own class.  The encoder
is trained to make a path's representation similar to its stored memory-bank
entry and dissimilar to randomly drawn entries of other paths.  As in the
paper's re-implementation, the encoder is an LSTM over spatial edge features
(no temporal information).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import functional as F
from .base import RepresentationModel, register_baseline
from .sequence_encoder import SpatialSequenceEncoder

__all__ = ["MemoryBankModel"]


@register_baseline("MB")
class MemoryBankModel(RepresentationModel):
    """Instance-discrimination training with a representation memory bank."""

    def __init__(self, dim=16, epochs=2, batch_size=16, negatives=8,
                 lr=1e-3, momentum=0.5, temperature=0.1, seed=0):
        self.dim = dim
        self.epochs = epochs
        self.batch_size = batch_size
        self.negatives = negatives
        self.lr = lr
        self.momentum = momentum
        self.temperature = temperature
        self.seed = seed
        self._encoder = None

    def fit(self, city, topology_features=None, max_batches=None, **kwargs):
        rng = np.random.default_rng(self.seed)
        paths = city.unlabeled.temporal_paths
        encoder = SpatialSequenceEncoder(
            city.network, hidden_dim=self.dim,
            topology_features=topology_features, seed=self.seed,
        )
        optimizer = nn.Adam(encoder.parameters(), lr=self.lr)

        # Memory bank initialised with random unit vectors.
        bank = rng.normal(size=(len(paths), self.dim))
        bank /= np.maximum(np.linalg.norm(bank, axis=1, keepdims=True), 1e-12)

        for _ in range(self.epochs):
            order = rng.permutation(len(paths))
            batches = 0
            for start in range(0, len(order), self.batch_size):
                if max_batches is not None and batches >= max_batches:
                    break
                indices = order[start:start + self.batch_size]
                if len(indices) < 2:
                    continue
                batch_paths = [paths[i] for i in indices]
                pooled, _, _ = encoder(batch_paths)

                negative_indices = rng.choice(len(paths), size=self.negatives, replace=False)
                positives = nn.Tensor(bank[indices])
                negatives = nn.Tensor(bank[negative_indices])

                pos_sims = F.cosine_similarity(pooled, positives) * (1.0 / self.temperature)
                # (B, K) similarities against the shared negative set.
                pooled_norm = F.normalize(pooled, axis=-1)
                negatives_norm = F.normalize(negatives, axis=-1)
                neg_sims = (pooled_norm @ negatives_norm.transpose()) * (1.0 / self.temperature)

                denominator = F.logsumexp(
                    nn.Tensor.concatenate([pos_sims.reshape(-1, 1), neg_sims], axis=1), axis=-1
                )
                loss = (denominator - pos_sims).mean()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                batches += 1

                # Momentum update of the bank entries for this batch.
                with nn.no_grad():
                    fresh = encoder.encode(batch_paths)
                fresh /= np.maximum(np.linalg.norm(fresh, axis=1, keepdims=True), 1e-12)
                bank[indices] = self.momentum * bank[indices] + (1.0 - self.momentum) * fresh
                bank[indices] /= np.maximum(
                    np.linalg.norm(bank[indices], axis=1, keepdims=True), 1e-12
                )

        self._encoder = encoder
        return self

    def encode(self, temporal_paths):
        if self._encoder is None:
            raise RuntimeError("model has not been fitted")
        return self._encoder.encode(temporal_paths)
