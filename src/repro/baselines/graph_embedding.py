"""Graph-representation baselines: Node2vec, DGI and GMI.

All three learn road-network *node* embeddings without temporal information;
an edge representation is the concatenation of its endpoint embeddings, and a
path representation is the mean of its edge representations — exactly how the
paper adapts graph-node methods to paths (§VII-A3).

* :class:`Node2vecPathModel` — random-walk skip-gram embeddings.
* :class:`DGIPathModel` — Deep Graph Infomax: a one-layer graph convolution
  encoder trained to discriminate true (node, graph-summary) pairs from pairs
  built on corrupted (row-shuffled) features.
* :class:`GMIPathModel` — Graphical Mutual Information: the same encoder
  trained to align each node's representation with its own and its
  neighbours' input features (a feature-reconstruction form of local MI).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import Node2Vec, Node2VecConfig
from .base import RepresentationModel, mean_pool_edge_vectors, register_baseline

__all__ = ["Node2vecPathModel", "DGIPathModel", "GMIPathModel"]


def _node_input_features(network):
    """Per-node features: mean one-hot edge features of incident edges."""
    encoder = network.feature_encoder
    sample = encoder.one_hot(network.edge_features(0))
    features = np.zeros((network.num_nodes, len(sample)))
    counts = np.zeros(network.num_nodes)
    for edge in range(network.num_edges):
        one_hot = encoder.one_hot(network.edge_features(edge))
        source, target = network.edge_endpoints(edge)
        features[source] += one_hot
        features[target] += one_hot
        counts[source] += 1
        counts[target] += 1
    counts = np.maximum(counts, 1.0)
    return features / counts[:, None]


def _normalized_adjacency(network):
    """Symmetric normalised adjacency with self-loops (GCN propagation matrix)."""
    size = network.num_nodes
    adjacency = np.eye(size)
    for edge in range(network.num_edges):
        source, target = network.edge_endpoints(edge)
        adjacency[source, target] = 1.0
        adjacency[target, source] = 1.0
    degree = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


def _edge_vectors_from_nodes(network, node_embeddings):
    """Edge representation = concatenation of endpoint node embeddings."""
    dim = node_embeddings.shape[1]
    edges = np.zeros((network.num_edges, 2 * dim))
    for edge in range(network.num_edges):
        source, target = network.edge_endpoints(edge)
        edges[edge, :dim] = node_embeddings[source]
        edges[edge, dim:] = node_embeddings[target]
    return edges


@register_baseline("Node2vec")
class Node2vecPathModel(RepresentationModel):
    """Paths represented by averaging node2vec edge embeddings."""

    def __init__(self, dim=16, seed=0, walks_per_node=3, walk_length=10,
                 impl="vectorized"):
        if dim % 2:
            raise ValueError("dim must be even")
        self.dim = dim
        self.seed = seed
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.impl = impl
        self._edge_vectors = None

    def fit(self, city, **kwargs):
        node2vec = Node2Vec(Node2VecConfig(
            dim=self.dim // 2,
            walks_per_node=self.walks_per_node,
            walk_length=self.walk_length,
            seed=self.seed,
            impl=self.impl,
        ))
        node2vec.fit_road_network(city.network)
        self._edge_vectors = node2vec.edge_topology_embeddings(city.network)
        return self

    def encode(self, temporal_paths):
        if self._edge_vectors is None:
            raise RuntimeError("model has not been fitted")
        return mean_pool_edge_vectors(self._edge_vectors, temporal_paths)


class _GCNEncoder(nn.Module):
    """One-layer graph convolution with PReLU-free tanh nonlinearity."""

    def __init__(self, in_dim, out_dim, rng=None):
        super().__init__()
        self.linear = nn.Linear(in_dim, out_dim, rng=rng)

    def forward(self, adjacency, features):
        return (adjacency @ self.linear(features)).tanh()


@register_baseline("DGI")
class DGIPathModel(RepresentationModel):
    """Deep Graph Infomax over the road network."""

    def __init__(self, dim=16, epochs=30, lr=0.01, seed=0):
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._edge_vectors = None

    def fit(self, city, **kwargs):
        network = city.network
        rng = np.random.default_rng(self.seed)
        features = _node_input_features(network)
        adjacency = nn.Tensor(_normalized_adjacency(network))
        features_tensor = nn.Tensor(features)

        encoder = _GCNEncoder(features.shape[1], self.dim, rng=rng)
        discriminator = nn.Linear(self.dim, self.dim, bias=False, rng=rng)
        params = list(encoder.parameters()) + list(discriminator.parameters())
        optimizer = nn.Adam(params, lr=self.lr)

        for _ in range(self.epochs):
            positive = encoder(adjacency, features_tensor)
            corrupted = nn.Tensor(features[rng.permutation(len(features))])
            negative = encoder(adjacency, corrupted)
            summary = positive.mean(axis=0).sigmoid()          # (dim,)

            projected = discriminator(nn.Tensor(summary.data.reshape(1, -1)))
            pos_scores = (positive * projected).sum(axis=-1)
            neg_scores = (negative * projected).sum(axis=-1)
            scores = nn.Tensor.concatenate([pos_scores, neg_scores], axis=0)
            labels = nn.Tensor(np.concatenate([
                np.ones(len(features)), np.zeros(len(features))
            ]))
            loss = nn.functional.binary_cross_entropy_with_logits(scores, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        with nn.no_grad():
            node_embeddings = encoder(adjacency, features_tensor).data
        self._edge_vectors = _edge_vectors_from_nodes(network, node_embeddings)
        return self

    def encode(self, temporal_paths):
        if self._edge_vectors is None:
            raise RuntimeError("model has not been fitted")
        return mean_pool_edge_vectors(self._edge_vectors, temporal_paths)


@register_baseline("GMI")
class GMIPathModel(RepresentationModel):
    """Graphical Mutual Information maximisation over the road network."""

    def __init__(self, dim=16, epochs=30, lr=0.01, seed=0):
        self.dim = dim
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._edge_vectors = None

    def fit(self, city, **kwargs):
        network = city.network
        rng = np.random.default_rng(self.seed)
        features = _node_input_features(network)
        adjacency_matrix = _normalized_adjacency(network)
        adjacency = nn.Tensor(adjacency_matrix)
        features_tensor = nn.Tensor(features)

        encoder = _GCNEncoder(features.shape[1], self.dim, rng=rng)
        decoder = nn.Linear(self.dim, features.shape[1], rng=rng)
        params = list(encoder.parameters()) + list(decoder.parameters())
        optimizer = nn.Adam(params, lr=self.lr)

        # Neighbour-feature target: the adjacency-smoothed input features.
        neighbour_features = nn.Tensor(adjacency_matrix @ features)

        for _ in range(self.epochs):
            embeddings = encoder(adjacency, features_tensor)
            reconstructed = decoder(embeddings)
            # MI surrogate: reconstruct both own and neighbour features.
            loss = (
                nn.functional.mse_loss(reconstructed, features_tensor)
                + nn.functional.mse_loss(reconstructed, neighbour_features)
            )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        with nn.no_grad():
            node_embeddings = encoder(adjacency, features_tensor).data
        self._edge_vectors = _edge_vectors_from_nodes(network, node_embeddings)
        return self

    def encode(self, temporal_paths):
        if self._edge_vectors is None:
            raise RuntimeError("model has not been fitted")
        return mean_pool_edge_vectors(self._edge_vectors, temporal_paths)
