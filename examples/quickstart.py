"""Quickstart: train WSCCL and inspect temporal path representations.

This script walks through the library's core workflow:

1. build a synthetic city dataset (road network + simulated trips + weak labels),
2. train the WSCCL model on the unlabeled temporal-path corpus,
3. encode temporal paths into TPRs,
4. show that the representation of the *same* path changes with the departure
   time (the temporal sensitivity the paper's Fig. 1 motivates).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import WSCCL, WSCCLConfig
from repro.datasets import DatasetScale, TemporalPath, aalborg
from repro.temporal import DepartureTime


def cosine(a, b):
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))


def main():
    print("== 1. Building the synthetic Aalborg dataset ==")
    city = aalborg(scale=DatasetScale.small())
    stats = city.statistics()
    print(f"   road network: {stats['num_nodes']} nodes, {stats['num_edges']} edges")
    print(f"   unlabeled temporal paths: {stats['unlabeled_paths']}")
    print(f"   weak label distribution: {stats['weak_label_distribution']}")

    print("\n== 2. Training WSCCL (weakly-supervised contrastive curriculum learning) ==")
    config = WSCCLConfig(epochs=2, num_meta_sets=4, num_stages=4)
    model = WSCCL(city.network, config=config)
    model.fit(city.unlabeled, batches_per_epoch=10, expert_batches=5)
    print(f"   trained; per-stage losses: "
          f"{[round(value, 3) for value in model.history.epoch_losses]}")

    print("\n== 3. Encoding temporal paths into TPRs ==")
    paths = city.unlabeled.temporal_paths[:5]
    representations = model.encode(paths)
    print(f"   encoded {len(paths)} paths into a {representations.shape} matrix")

    print("\n== 4. Temporal sensitivity of the representations ==")
    base = city.unlabeled.temporal_paths[0]
    monday_peak = TemporalPath(base.path, DepartureTime.from_hour(0, 8.0))
    monday_peak_view = TemporalPath(base.path, DepartureTime.from_hour(0, 8.4))
    monday_night = TemporalPath(base.path, DepartureTime.from_hour(0, 3.0))
    peak, peak_view, night = model.encode([monday_peak, monday_peak_view, monday_night])
    print(f"   same path, 08:00 vs 08:24  (same weak label) : cosine = {cosine(peak, peak_view):.4f}")
    print(f"   same path, 08:00 vs 03:00  (peak vs off-peak): cosine = {cosine(peak, night):.4f}")
    print("   -> representations of the same path are closer within the same"
          " peak/off-peak regime, which is what the weak labels teach.")


if __name__ == "__main__":
    main()
