"""Path recommendation: predict which candidate route the driver will take.

This is the third downstream task of the paper (Table IV): every trip yields
one positive (the driven path) and several negative candidates; a classifier
over frozen TPRs predicts the driver's choice.  The example compares WSCCL
against the Node2vec baseline, which cannot see the departure time and so
cannot adapt its recommendation to peak-hour conditions.

Run with:  python examples/path_recommendation.py
"""

from __future__ import annotations

from repro.baselines import Node2vecPathModel
from repro.core import WSCCL, WSCCLConfig
from repro.datasets import DatasetScale, chengdu
from repro.downstream import evaluate_recommendation
from repro.evaluation import format_metric_table


def main():
    print("Building the synthetic Chengdu dataset ...")
    city = chengdu(scale=DatasetScale.small())

    print("Training WSCCL ...")
    wsccl = WSCCL(city.network, config=WSCCLConfig(epochs=2))
    wsccl.fit(city.unlabeled, batches_per_epoch=10, expert_batches=5)

    print("Fitting the Node2vec baseline ...")
    node2vec = Node2vecPathModel(dim=32, seed=0).fit(city)

    print("Evaluating path recommendation (GBC on frozen representations) ...\n")
    rows = {}
    for name, model in (("WSCCL", wsccl), ("Node2vec", node2vec)):
        result = evaluate_recommendation(model, city.tasks.recommendation,
                                         n_estimators=40, seed=0)
        rows[name] = result.as_row()

    print(format_metric_table(rows, title="Path recommendation (synthetic Chengdu)"))
    print("\nAcc = overall classification accuracy; HR = hit rate on the chosen paths.")


if __name__ == "__main__":
    main()
