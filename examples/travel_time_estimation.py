"""Travel-time estimation with frozen TPRs (paper §VII, Table III left).

The workload from the paper's introduction: estimate how long a path will
take, given the departure time.  WSCCL's representations are frozen and a
gradient boosting regressor maps them to travel times; the same harness is
applied to a non-temporal baseline (PIM) to show why temporal information
matters.

Run with:  python examples/travel_time_estimation.py
"""

from __future__ import annotations

from repro.baselines import PIMModel
from repro.core import WSCCL, WSCCLConfig
from repro.datasets import DatasetScale, aalborg
from repro.downstream import evaluate_travel_time
from repro.evaluation import format_metric_table


def main():
    print("Building dataset ...")
    city = aalborg(scale=DatasetScale.small())

    print("Training WSCCL on the unlabeled corpus ...")
    wsccl = WSCCL(city.network, config=WSCCLConfig(epochs=2))
    wsccl.fit(city.unlabeled, batches_per_epoch=10, expert_batches=5)

    print("Training the PIM baseline (no temporal information) ...")
    pim = PIMModel(dim=32, epochs=2, seed=0)
    pim.fit(city, max_batches=10)

    print("Fitting gradient boosting on frozen representations and evaluating ...\n")
    rows = {}
    for name, model in (("WSCCL", wsccl), ("PIM", pim)):
        result = evaluate_travel_time(model, city.tasks.travel_time,
                                      n_estimators=40, seed=0)
        rows[name] = result.as_row()

    print(format_metric_table(rows, title="Travel time estimation (synthetic Aalborg)"))
    print("\nLower is better for all three metrics.  WSCCL sees the departure time,")
    print("so it can separate peak-hour trips from free-flow trips over the same path.")


if __name__ == "__main__":
    main()
