"""WSCCL as a pre-training method for supervised PathRank (paper Fig. 7).

The paper's final experiment: when labelled data is scarce, initialise the
supervised PathRank model with the temporal path encoder learned by WSCCL on
the (cheap) unlabeled corpus.  This example trains PathRank from scratch and
from the pre-trained encoder at two labelled-data budgets and prints the
resulting travel-time errors.

Run with:  python examples/pretraining_pathrank.py
"""

from __future__ import annotations

from repro.core import WSCCLConfig
from repro.datasets import DatasetScale
from repro.evaluation import (
    HarnessConfig,
    build_dataset,
    build_supervised_baseline,
    fit_wsccl,
    supervised_travel_time_results,
)
from repro.datasets.splits import train_test_split
from repro.evaluation import format_metric_table


def main():
    config = HarnessConfig(
        scale=DatasetScale.small(),
        wsccl=WSCCLConfig(epochs=2),
        supervised_epochs=3,
        max_batches=15,
        n_estimators=40,
    )
    print("Building dataset ...")
    city = build_dataset("aalborg", config)

    print("Training WSCCL on the unlabeled corpus (the pre-training step) ...")
    wsccl = fit_wsccl(city, config, variant="full")
    pretrained_state = wsccl.encoder_state_dict()

    train, _ = train_test_split(city.tasks.travel_time,
                                test_fraction=config.test_fraction, seed=config.seed)
    budgets = {"40% labels": max(4, int(0.4 * len(train))), "100% labels": len(train)}

    rows = {}
    for budget_name, limit in budgets.items():
        scratch = build_supervised_baseline("PathRank", config)
        scratch_row = supervised_travel_time_results(scratch, city, config, train_limit=limit)

        pretrained = build_supervised_baseline("PathRank", config,
                                               pretrained_state=pretrained_state)
        pretrained_row = supervised_travel_time_results(pretrained, city, config,
                                                        train_limit=limit)
        rows[f"scratch @ {budget_name}"] = scratch_row
        rows[f"pretrained @ {budget_name}"] = pretrained_row

    print()
    print(format_metric_table(rows, title="PathRank travel-time MAE with and without WSCCL pre-training"))
    print("\nThe pre-trained encoder lets PathRank reach comparable accuracy with")
    print("fewer labelled paths, mirroring the paper's Fig. 7.")


if __name__ == "__main__":
    main()
