"""Path ranking: score alternative routes for a trip (paper §VII, Table III right).

For every simulated trip the dataset contains the driven path plus alternative
routes between the same origin and destination.  The task is to rank those
candidates the way the driver implicitly did (driven path first).  This
example trains WSCCL, fits a GBR on its frozen TPRs, and prints the ranking
for a few concrete candidate sets, followed by the aggregate metrics.

Run with:  python examples/path_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro.core import WSCCL, WSCCLConfig
from repro.datasets import DatasetScale, aalborg
from repro.downstream import GradientBoostingRegressor, evaluate_ranking


def main():
    print("Building dataset and training WSCCL ...")
    city = aalborg(scale=DatasetScale.small())
    model = WSCCL(city.network, config=WSCCLConfig(epochs=2))
    model.fit(city.unlabeled, batches_per_epoch=10, expert_batches=5)

    examples = city.tasks.ranking
    representations = model.encode([e.temporal_path for e in examples])
    scores = np.array([e.score for e in examples])
    groups = np.array([e.group for e in examples])

    print("Fitting the ranking-score regressor on frozen TPRs ...")
    regressor = GradientBoostingRegressor(n_estimators=40, seed=0)
    regressor.fit(representations, scores)
    predictions = regressor.predict(representations)

    print("\nExample candidate sets (ground-truth score vs predicted score):")
    shown = 0
    for group in np.unique(groups):
        mask = groups == group
        if mask.sum() < 3 or shown >= 3:
            continue
        shown += 1
        print(f"\n  Trip #{group}:")
        order = np.argsort(-scores[mask])
        group_paths = [examples[i] for i in np.flatnonzero(mask)]
        group_scores = scores[mask]
        group_predictions = predictions[mask]
        for rank, index in enumerate(order, start=1):
            example = group_paths[index]
            print(f"    rank {rank}: {len(example.temporal_path)} edges"
                  f"  true={group_scores[index]:.2f}"
                  f"  predicted={group_predictions[index]:.2f}")

    print("\nHeld-out evaluation (grouped split, as in the paper):")
    result = evaluate_ranking(model, examples, n_estimators=40, seed=0)
    print(f"  MAE = {result.mae:.3f}   Kendall tau = {result.kendall_tau:.3f}"
          f"   Spearman rho = {result.spearman_rho:.3f}")


if __name__ == "__main__":
    main()
